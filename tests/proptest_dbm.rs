//! Property-based tests for the DBM zone algebra.

use dbm::Dbm;
use proptest::prelude::*;

fn random_zone(ops: Vec<(u8, usize, i64)>) -> Dbm {
    let clocks = 3;
    let mut zone = Dbm::zero(clocks);
    zone.up();
    for (kind, clock, value) in ops {
        let clock = clock % clocks + 1;
        let value = value.rem_euclid(50);
        match kind % 2 {
            0 => zone.constrain_upper(clock, value + 1),
            _ => zone.constrain_lower(clock, value),
        }
        if zone.is_empty() {
            return Dbm::zero(clocks);
        }
    }
    zone.canonicalize();
    zone
}

proptest! {
    #[test]
    fn canonicalisation_is_idempotent(ops in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6)) {
        let zone = random_zone(ops);
        let mut twice = zone.clone();
        twice.canonicalize();
        prop_assert_eq!(zone, twice);
    }

    #[test]
    fn inclusion_is_reflexive_and_antisymmetric(
        a in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6),
        b in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6),
    ) {
        let za = random_zone(a);
        let zb = random_zone(b);
        prop_assert!(za.includes(&za));
        if za.includes(&zb) && zb.includes(&za) {
            prop_assert_eq!(za, zb);
        }
    }

    #[test]
    fn intersection_is_included_in_both(
        a in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6),
        b in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6),
    ) {
        let za = random_zone(a);
        let zb = random_zone(b);
        let mut inter = za.clone();
        inter.intersect(&zb);
        if !inter.is_empty() {
            prop_assert!(za.includes(&inter));
            prop_assert!(zb.includes(&inter));
        }
    }

    #[test]
    fn up_preserves_lower_bounds(ops in proptest::collection::vec((any::<u8>(), 0usize..3, 0i64..50), 0..6)) {
        let zone = random_zone(ops);
        let mut delayed = zone.clone();
        delayed.up();
        delayed.canonicalize();
        prop_assert!(delayed.includes(&zone));
        for clock in 1..=zone.clock_count() {
            prop_assert_eq!(delayed.lower_bound(clock), zone.lower_bound(clock));
            prop_assert_eq!(delayed.upper_bound(clock), None);
        }
    }
}
