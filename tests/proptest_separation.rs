//! Property-based tests: the max-separation analysis agrees with the
//! brute-force delay-vertex oracle on random acyclic event structures.

use ces::{brute_force_max_separation, CesBuilder, Occurrence, Separation, SeparationAnalysis};
use proptest::prelude::*;
use tts::{DelayInterval, EventId, Time};

#[derive(Debug, Clone)]
struct RandomDag {
    delays: Vec<(i64, i64)>,
    edges: Vec<(usize, usize)>,
}

fn random_dag() -> impl Strategy<Value = RandomDag> {
    (2usize..7).prop_flat_map(|n| {
        let delays = proptest::collection::vec((0i64..6, 0i64..6), n);
        let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..(n * 2));
        (delays, edges).prop_map(move |(delays, edges)| RandomDag {
            delays: delays.into_iter().map(|(l, e)| (l, l + e)).collect(),
            edges: edges.into_iter().filter(|(a, b)| a < b).collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn separation_matches_brute_force(dag in random_dag()) {
        let mut builder = CesBuilder::new();
        let nodes: Vec<_> = dag
            .delays
            .iter()
            .enumerate()
            .map(|(i, &(l, u))| {
                builder.add_node(
                    Occurrence::first(EventId::from_index(i)),
                    format!("e{i}"),
                    DelayInterval::new(Time::new(l), Time::new(u)).expect("valid"),
                )
            })
            .collect();
        for &(a, b) in &dag.edges {
            builder.add_causal_arc(nodes[a], nodes[b]);
        }
        let ces = builder.build().expect("random DAGs are acyclic by construction");
        let analysis = SeparationAnalysis::new(&ces);
        for &a in &nodes {
            for &b in &nodes {
                if a == b {
                    continue;
                }
                let exact = brute_force_max_separation(&ces, a, b);
                prop_assert_eq!(analysis.max_separation(a, b), Separation::Finite(exact));
            }
        }
    }
}
