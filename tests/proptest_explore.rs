//! Property tests for the shared exploration core: on random small STGs and
//! random small timed systems, the parallel driver (threads = 4) must return
//! reports identical to the sequential driver, and report state lists must be
//! sorted.

use proptest::prelude::*;
use stg::{expand_with_report, ExpandOptions, SignalRole, StgBuilder};
use tts::{DelayInterval, StateId, Time, TimedTransitionSystem, TsBuilder};

fn sorted(ids: &[StateId]) -> bool {
    ids.windows(2).all(|w| w[0] < w[1])
}

/// Builds a random safe-ish STG: `t` transitions labelled as alternating
/// signal edges, connected into a cycle so the net is live, plus random
/// cross arcs that may make it unbounded or inconsistent — both outcomes
/// must simply agree across drivers.
fn random_stg(transitions: usize, extra_arcs: &[(usize, usize)]) -> stg::Stg {
    let count = transitions.max(2);
    let mut b = StgBuilder::new("random");
    let ids: Vec<_> = (0..count)
        .map(|i| {
            let signal = (b'A' + (i / 2 % 8) as u8) as char;
            let polarity = if i % 2 == 0 { '+' } else { '-' };
            b.add_transition(
                format!("{signal}{polarity}"),
                if i % 3 == 0 {
                    SignalRole::Input
                } else {
                    SignalRole::Output
                },
            )
        })
        .collect();
    for (i, &t) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        b.connect(t, next, usize::from(i + 1 == ids.len()) as u32);
    }
    for &(from, to) in extra_arcs {
        let f = ids[from % ids.len()];
        let t = ids[to % ids.len()];
        if f != t {
            b.connect(f, t, 0);
        }
    }
    b.build().unwrap()
}

/// Builds a random timed transition system over a bounded state graph.
fn random_timed(
    states: usize,
    transitions: &[(usize, usize, usize)],
    delays: &[(i64, i64)],
) -> TimedTransitionSystem {
    let count = states.clamp(2, 8);
    let mut b = TsBuilder::new("random-timed");
    let ids: Vec<_> = (0..count).map(|i| b.add_state(format!("s{i}"))).collect();
    // A deterministic backbone keeps most states reachable.
    for (i, &s) in ids.iter().enumerate().skip(1) {
        b.add_transition(ids[i - 1], format!("e{}", (i - 1) % 5), s);
    }
    for &(from, event, to) in transitions {
        b.add_transition(
            ids[from % count],
            format!("e{}", event % 5),
            ids[to % count],
        );
    }
    b.mark_violation(ids[count - 1], "last state is marked");
    b.set_initial(ids[0]);
    let mut timed = TimedTransitionSystem::new(b.build().unwrap());
    for (i, &(lower, width)) in delays.iter().enumerate() {
        let l = lower.rem_euclid(6);
        let w = width.rem_euclid(6);
        let name = format!("e{}", i % 5);
        if timed.underlying().alphabet().lookup(&name).is_some() {
            timed.set_delay_by_name(
                &name,
                DelayInterval::new(Time::new(l), Time::new(l + w)).unwrap(),
            );
        }
    }
    timed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_stg_expansion_matches_sequential(
        transitions in 2usize..10,
        extra_arcs in proptest::collection::vec((0usize..10, 0usize..10), 0..4),
    ) {
        let net = random_stg(transitions, &extra_arcs);
        let limited = ExpandOptions {
            spec: stg::ExploreSpec {
                limit: Some(2_000),
                ..stg::ExploreSpec::default()
            },
            ..ExpandOptions::default()
        };
        let parallel_spec = stg::ExploreSpec {
            threads: 4,
            ..limited.spec.clone()
        };
        let sequential = expand_with_report(&net, limited.clone());
        let parallel = expand_with_report(
            &net,
            ExpandOptions {
                spec: parallel_spec,
                ..limited
            },
        );
        prop_assert_eq!(&sequential, &parallel);
        if let Ok((ts, report)) = sequential {
            prop_assert!(sorted(&report.reachable_states));
            prop_assert!(sorted(&report.deadlock_states));
            prop_assert_eq!(report.reachable_states.len(), ts.state_count());
        }
    }

    #[test]
    fn parallel_zone_exploration_matches_sequential(
        states in 2usize..6,
        transitions in proptest::collection::vec((0usize..6, 0usize..5, 0usize..6), 0..8),
        delays in proptest::collection::vec((0i64..6, 0i64..6), 5),
    ) {
        let timed = random_timed(states, &transitions, &delays);
        for subsumption in [
            dbm::Subsumption::Exact,
            dbm::Subsumption::Inclusion,
            dbm::Subsumption::Alu,
        ] {
            let base = dbm::ZoneExplorationOptions {
                spec: dbm::ExploreSpec {
                    threads: 1,
                    subsumption,
                    limit: Some(600),
                    ..dbm::ExploreSpec::default()
                },
            };
            let sequential = dbm::explore_timed_with(&timed, base.clone());
            let parallel = dbm::explore_timed_with(
                &timed,
                dbm::ZoneExplorationOptions {
                    spec: dbm::ExploreSpec {
                        threads: 4,
                        ..base.spec
                    },
                },
            );
            prop_assert_eq!(&sequential, &parallel);
            if let dbm::ZoneOutcome::Completed(report) = &sequential {
                prop_assert!(sorted(&report.reachable_states));
                prop_assert!(sorted(&report.violating_states));
                prop_assert!(sorted(&report.deadlock_states));
            }
        }
    }

    #[test]
    fn subsumption_preserves_zone_verdicts(
        states in 2usize..6,
        transitions in proptest::collection::vec((0usize..6, 0usize..5, 0usize..6), 0..8),
        delays in proptest::collection::vec((0i64..6, 0i64..6), 5),
    ) {
        let timed = random_timed(states, &transitions, &delays);
        let run = |subsumption| {
            dbm::explore_timed_with(
                &timed,
                dbm::ZoneExplorationOptions {
                    spec: dbm::ExploreSpec {
                        threads: 1,
                        subsumption,
                        limit: Some(1_500),
                        ..dbm::ExploreSpec::default()
                    },
                },
            )
        };
        if let (
            dbm::ZoneOutcome::Completed(alu),
            dbm::ZoneOutcome::Completed(convex),
            dbm::ZoneOutcome::Completed(exact),
        ) = (
            run(dbm::Subsumption::Alu),
            run(dbm::Subsumption::Inclusion),
            run(dbm::Subsumption::Exact),
        ) {
            // Coarser coverage may only shrink the configuration count and
            // must not change any verdict-bearing state set.
            prop_assert!(alu.configurations <= convex.configurations);
            prop_assert!(convex.configurations <= exact.configurations);
            for completed in [&alu, &convex] {
                prop_assert_eq!(&completed.reachable_states, &exact.reachable_states);
                prop_assert_eq!(&completed.violating_states, &exact.violating_states);
                prop_assert_eq!(&completed.deadlock_states, &exact.deadlock_states);
            }
        }
    }

    #[test]
    fn parallel_verification_matches_sequential(
        states in 2usize..6,
        transitions in proptest::collection::vec((0usize..6, 0usize..5, 0usize..6), 0..8),
        delays in proptest::collection::vec((0i64..6, 0i64..6), 5),
    ) {
        let timed = random_timed(states, &transitions, &delays);
        let property = transyt::SafetyProperty::new("marked").forbid_marked_states();
        let sequential = transyt::verify(&timed, &property, &transyt::VerifyOptions::default());
        let parallel = transyt::verify(
            &timed,
            &property,
            &transyt::VerifyOptions {
                spec: transyt::ExploreSpec::threaded(4),
                ..transyt::VerifyOptions::default()
            },
        );
        prop_assert_eq!(sequential, parallel);
    }
}
