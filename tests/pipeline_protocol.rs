//! Integration tests spanning the ipcmos, transyt, stg and tts crates:
//! the assume-guarantee obligations and the handshake protocol (Fig. 6).

#[test]
fn abstractions_satisfy_the_specification() {
    let verdict = ipcmos::experiment_1().expect("experiment builds");
    assert!(verdict.is_verified(), "{verdict}");
}

#[test]
fn fixed_point_obligation_holds() {
    let verdict = ipcmos::experiment_4().expect("experiment builds");
    assert!(verdict.is_verified(), "{verdict}");
}

#[test]
fn handshake_alternation_on_the_internal_interface() {
    // Fig. 6: between stages, ACK+ is interlocked between VALID- and the next
    // VALID-. Check it on the abstract closed system.
    let closed = ipcmos::abstract_pipeline().expect("abstractions build");
    let valid_fall = closed.alphabet().lookup("VALID0-").unwrap();
    let ack_rise = closed.alphabet().lookup("ACK0+").unwrap();
    // In every reachable state, the number of VALID0- and ACK0+ events on any
    // path differs by at most one: check locally that from the initial state
    // the first event is VALID0- and ACK0+ is only enabled after it.
    let s0 = closed.initial_states()[0];
    assert!(closed.is_enabled(s0, valid_fall));
    assert!(!closed.is_enabled(s0, ack_rise));
}

#[test]
fn two_stage_simulation_interlocks_pulses() {
    let pipeline = ipcmos::flat_pipeline(2).expect("pipeline builds");
    let trace = ipcmos::simulate(&pipeline, 100);
    // Pulses alternate per signal and the downstream ack follows the
    // downstream valid.
    let v2 = trace.times_of("VALID2-");
    let a2 = trace.times_of("ACK2+");
    assert!(!v2.is_empty() && !a2.is_empty());
    assert!(a2[0] > v2[0]);
    // The supplier is acknowledged once per item.
    let v0 = trace.times_of("VALID0-");
    let a0 = trace.times_of("ACK0+");
    assert!(a0.len() >= v0.len().saturating_sub(1));
    assert!(a0.len() <= v0.len());
}

#[test]
fn stage_transistor_budget_matches_formula() {
    assert_eq!(ipcmos::transistor_count(1, 1), 32);
    let circuit = ipcmos::stage_circuit(1).expect("stage builds");
    assert!(circuit.modeled_transistor_count() <= ipcmos::transistor_count(1, 1));
}
