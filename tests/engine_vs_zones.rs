//! Cross-validation: on closed models small enough for exact zone-based
//! exploration, the relative-timing engine and the DBM baseline agree on
//! whether violating states are reachable.

use dbm::{explore_timed, explore_timed_with, ExploreSpec, ZoneExplorationOptions, ZoneOutcome};
use transyt::{verify, SafetyProperty, Verdict, VerifyOptions};
use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
}

fn race(fast: DelayInterval, slow: DelayInterval) -> TimedTransitionSystem {
    let mut b = TsBuilder::new("race");
    let s0 = b.add_state("s0");
    let ok = b.add_state("ok");
    let bad = b.add_state("bad");
    let done = b.add_state("done");
    let f = b.add_transition(s0, "fast", ok);
    let s = b.add_transition(s0, "slow", bad);
    b.add_transition_by_id(ok, s, done);
    b.add_transition_by_id(bad, f, done);
    b.mark_violation(bad, "slow before fast");
    b.set_initial(s0);
    let mut timed = TimedTransitionSystem::new(b.build().unwrap());
    timed.set_delay_by_name("fast", fast);
    timed.set_delay_by_name("slow", slow);
    timed
}

#[test]
fn engine_and_zones_agree_on_separated_delays() {
    let timed = race(d(1, 2), d(5, 9));
    let zone_safe = explore_timed(&timed)
        .report()
        .unwrap()
        .violating_states
        .is_empty();
    let verdict = verify(
        &timed,
        &SafetyProperty::new("order").forbid_marked_states(),
        &VerifyOptions::default(),
    );
    assert!(zone_safe);
    assert!(verdict.is_verified());
}

#[test]
fn engine_and_zones_agree_on_overlapping_delays() {
    let timed = race(d(1, 6), d(2, 9));
    let zone_safe = explore_timed(&timed)
        .report()
        .unwrap()
        .violating_states
        .is_empty();
    let verdict = verify(
        &timed,
        &SafetyProperty::new("order").forbid_marked_states(),
        &VerifyOptions::default(),
    );
    assert!(!zone_safe);
    assert!(matches!(verdict, Verdict::Failed { .. }));
}

#[test]
fn one_stage_pipeline_zone_exploration_needs_the_lu_abstraction() {
    // The *exact* zone-based exploration of the transistor-level stage
    // between its environments blows past a 3,000-configuration budget
    // (the full space is 61,386 configurations) — this is precisely the
    // paper's motivation for relative timing and abstraction. Convex-zone
    // subsumption is pinned so the run shows the pre-aLU baseline;
    // `alu_subsumption_tames_the_unextrapolated_pipeline` below shows the
    // same budget is beaten by the aLU relation alone. With the default
    // LU-bounds extrapolation + active-clock reduction the same model
    // completes well under that budget with the same discrete verdict: no
    // violating state (the timed semantics does reach one genuinely
    // deadlocked discrete state).
    let pipeline = ipcmos::flat_pipeline(1).expect("pipeline builds");
    let exact = explore_timed_with(
        &pipeline,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                limit: Some(3_000),
                extrapolation: dbm::Extrapolation::None,
                subsumption: dbm::Subsumption::Inclusion,
                ..ExploreSpec::default()
            },
        },
    );
    assert!(
        matches!(exact, ZoneOutcome::LimitExceeded { explored, .. } if explored > 3_000),
        "exact exploration should exceed the budget, got {exact:?}"
    );

    let abstracted = explore_timed_with(
        &pipeline,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                limit: Some(3_000),
                ..ExploreSpec::default()
            },
        },
    );
    match abstracted {
        ZoneOutcome::Completed(report) => {
            assert!(report.violating_states.is_empty());
            assert_eq!(report.deadlock_states.len(), 1);
            assert!(report.extrapolated_zones > 0);
        }
        other => panic!("abstracted exploration should complete, got {other:?}"),
    }
}

#[test]
fn alu_subsumption_tames_the_unextrapolated_pipeline() {
    // The companion of the test above: with extrapolation switched OFF
    // entirely, the aLU coverage relation alone collapses the 61,386
    // exact configurations (convex subsumption still exceeds 3,000) to
    // under 1,000 — and the discrete verdict is unchanged. A run like
    // this is also where the `alu_subsumed` counter genuinely fires:
    // stored zones are never widened, so some pop-time skips are
    // explained by no convexly-larger stored zone.
    let pipeline = ipcmos::flat_pipeline(1).expect("pipeline builds");
    let outcome = explore_timed_with(
        &pipeline,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                limit: Some(3_000),
                extrapolation: dbm::Extrapolation::None,
                subsumption: dbm::Subsumption::Alu,
                ..ExploreSpec::default()
            },
        },
    );
    match outcome {
        ZoneOutcome::Completed(report) => {
            assert!(report.violating_states.is_empty());
            assert_eq!(report.deadlock_states.len(), 1);
            assert_eq!(report.extrapolated_zones, 0, "no extrapolation requested");
            assert!(
                report.configurations < 1_000,
                "aLU should collapse the space, got {} configurations",
                report.configurations
            );
            assert!(
                report.alu_subsumed > 0,
                "some skips must be attributable to aLU beyond convex inclusion"
            );
            assert!(report.alu_subsumed <= report.subsumed_configurations);
        }
        other => panic!("aLU exploration should complete, got {other:?}"),
    }
}

/// Satellite of the aLU-subsumption PR: a witness trace found under the
/// coarse aLU coverage replays step-by-step through the *exact* discrete
/// semantics, and its violating end state is confirmed by the exact-dedup
/// zone exploration. aLU prunes the search, not the evidence.
#[test]
fn alu_witness_trace_replays_through_exact_semantics() {
    use transyt_session::{
        replay_rendered, Completion, Outcome, RunControl, Session, Subsumption, TaskSpec,
        ZoneWitness,
    };

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/models/race_overlap.tts"
    ))
    .expect("shipped model readable");
    let session = Session::new();
    let (cached, _) = session.add_model(&text).expect("shipped model parses");

    let spec = TaskSpec::zones(&cached.hash)
        .subsumption(Subsumption::Alu)
        .with_trace(true);
    let Completion::Finished(result) = session.run_task(&spec, RunControl::default()) else {
        panic!("a one-shot run never detaches");
    };
    let outcome = result.outcome.as_ref().expect("zones run succeeds");
    let Outcome::Zones(zones) = outcome else {
        panic!("zones task yields a zones outcome");
    };
    let Some(ZoneWitness::Found { trace, .. }) = &zones.witness else {
        panic!("race_overlap has a violating state; aLU must still find it");
    };

    // Replay the rendered trace through the exact discrete system.
    let timed = transyt_session::format::Model::parse(&text)
        .expect("model parses")
        .timed_system()
        .expect("model instantiates");
    let end = replay_rendered(trace, timed.underlying())
        .expect("aLU witness must replay through the exact semantics");
    assert_eq!(end, trace.end, "replay must land on the reported end state");

    // And exact-dedup exploration confirms the end state really violates.
    let exact = explore_timed_with(
        &timed,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                subsumption: dbm::Subsumption::Exact,
                extrapolation: dbm::Extrapolation::None,
                ..ExploreSpec::default()
            },
        },
    );
    let ZoneOutcome::Completed(report) = exact else {
        panic!("exact exploration of the race completes");
    };
    let violating: Vec<&str> = report
        .violating_states
        .iter()
        .map(|&s| timed.underlying().state_name(s))
        .collect();
    assert!(
        violating.contains(&trace.end.as_str()),
        "aLU witness end state {} must be among the exact violating states {violating:?}",
        trace.end
    );
}

/// A witness found under per-state local LU bounds replays through the
/// exact discrete semantics, and its rendered trace is byte-identical to
/// the one found under the global constants — the bound choice must not
/// change which witness the deterministic search reports.
#[test]
fn local_bounds_witness_trace_replays_through_exact_semantics() {
    use transyt_session::{
        replay_rendered, Bounds, Completion, Outcome, RunControl, Session, Subsumption, TaskSpec,
        ZoneWitness,
    };

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/models/race_overlap.tts"
    ))
    .expect("shipped model readable");
    let session = Session::new();
    let (cached, _) = session.add_model(&text).expect("shipped model parses");

    let witness_under = |bounds| {
        let spec = TaskSpec::zones(&cached.hash)
            .subsumption(Subsumption::Alu)
            .bounds(bounds)
            .with_trace(true);
        let Completion::Finished(result) = session.run_task(&spec, RunControl::default()) else {
            panic!("a one-shot run never detaches");
        };
        let outcome = result.outcome.as_ref().expect("zones run succeeds").clone();
        let Outcome::Zones(zones) = outcome else {
            panic!("zones task yields a zones outcome");
        };
        let Some(ZoneWitness::Found { trace, .. }) = zones.witness else {
            panic!("race_overlap has a violating state; it must be found under {bounds:?}");
        };
        trace
    };

    let local = witness_under(Bounds::Local);
    let global = witness_under(Bounds::Global);
    assert_eq!(local, global, "bound choice changed the reported witness");

    let timed = transyt_session::format::Model::parse(&text)
        .expect("model parses")
        .timed_system()
        .expect("model instantiates");
    let end = replay_rendered(&local, timed.underlying())
        .expect("local-bounds witness must replay through the exact semantics");
    assert_eq!(end, local.end, "replay must land on the reported end state");
}
