//! Cross-validation: on closed models small enough for exact zone-based
//! exploration, the relative-timing engine and the DBM baseline agree on
//! whether violating states are reachable.

use dbm::{explore_timed, explore_timed_with, ExploreSpec, ZoneExplorationOptions, ZoneOutcome};
use transyt::{verify, SafetyProperty, Verdict, VerifyOptions};
use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
}

fn race(fast: DelayInterval, slow: DelayInterval) -> TimedTransitionSystem {
    let mut b = TsBuilder::new("race");
    let s0 = b.add_state("s0");
    let ok = b.add_state("ok");
    let bad = b.add_state("bad");
    let done = b.add_state("done");
    let f = b.add_transition(s0, "fast", ok);
    let s = b.add_transition(s0, "slow", bad);
    b.add_transition_by_id(ok, s, done);
    b.add_transition_by_id(bad, f, done);
    b.mark_violation(bad, "slow before fast");
    b.set_initial(s0);
    let mut timed = TimedTransitionSystem::new(b.build().unwrap());
    timed.set_delay_by_name("fast", fast);
    timed.set_delay_by_name("slow", slow);
    timed
}

#[test]
fn engine_and_zones_agree_on_separated_delays() {
    let timed = race(d(1, 2), d(5, 9));
    let zone_safe = explore_timed(&timed)
        .report()
        .unwrap()
        .violating_states
        .is_empty();
    let verdict = verify(
        &timed,
        &SafetyProperty::new("order").forbid_marked_states(),
        &VerifyOptions::default(),
    );
    assert!(zone_safe);
    assert!(verdict.is_verified());
}

#[test]
fn engine_and_zones_agree_on_overlapping_delays() {
    let timed = race(d(1, 6), d(2, 9));
    let zone_safe = explore_timed(&timed)
        .report()
        .unwrap()
        .violating_states
        .is_empty();
    let verdict = verify(
        &timed,
        &SafetyProperty::new("order").forbid_marked_states(),
        &VerifyOptions::default(),
    );
    assert!(!zone_safe);
    assert!(matches!(verdict, Verdict::Failed { .. }));
}

#[test]
fn one_stage_pipeline_zone_exploration_needs_the_lu_abstraction() {
    // The *exact* zone-based exploration of the transistor-level stage
    // between its environments blows past a 3,000-configuration budget
    // (the full space is 61,386 configurations) — this is precisely the
    // paper's motivation for relative timing and abstraction. With the
    // default LU-bounds extrapolation + active-clock reduction the same
    // model completes well under that budget with the same discrete
    // verdict: no violating state (the timed semantics does reach one
    // genuinely deadlocked discrete state).
    let pipeline = ipcmos::flat_pipeline(1).expect("pipeline builds");
    let exact = explore_timed_with(
        &pipeline,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                limit: Some(3_000),
                extrapolation: dbm::Extrapolation::None,
                ..ExploreSpec::default()
            },
        },
    );
    assert!(
        matches!(exact, ZoneOutcome::LimitExceeded { explored, .. } if explored > 3_000),
        "exact exploration should exceed the budget, got {exact:?}"
    );

    let abstracted = explore_timed_with(
        &pipeline,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                limit: Some(3_000),
                ..ExploreSpec::default()
            },
        },
    );
    match abstracted {
        ZoneOutcome::Completed(report) => {
            assert!(report.violating_states.is_empty());
            assert_eq!(report.deadlock_states.len(), 1);
            assert!(report.extrapolated_zones > 0);
        }
        other => panic!("abstracted exploration should complete, got {other:?}"),
    }
}
