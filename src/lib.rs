//! Umbrella crate for the IPCMOS verification case-study reproduction
//! (Peña, Cortadella, Pastor, Smirnov — DATE 2002).
//!
//! The workspace is organised bottom-up; this crate simply re-exports the
//! member crates so examples and integration tests can use a single
//! dependency:
//!
//! * [`tts`] — transition systems, timed transition systems, composition.
//! * [`ces`] — causal event structures, max-separation analysis,
//!   relative-timing constraints.
//! * [`dbm`] — difference bound matrices and zone-based timed reachability
//!   (the conventional baseline).
//! * [`stg`] — signal transition graphs.
//! * [`cmos_circuit`] — transistor-level netlists and elaboration.
//! * [`transyt`] — the relative-timing verification engine, containment
//!   checking and assume-guarantee bookkeeping.
//! * [`ipcmos`] — the IPCMOS stage, environments, abstractions, experiments
//!   and pulse-level simulator.
//! * [`transyt_session`] — the embeddable orchestration API: sessions,
//!   task specs/keys, deduplicated runs, progress events and the canonical
//!   renderings (see `docs/API.md`).

pub use ces;
pub use cmos_circuit;
pub use dbm;
pub use ipcmos;
pub use stg;
pub use transyt;
pub use transyt_session;
pub use tts;
