//! Runs the full assume-guarantee proof of the IPCMOS pipeline (Table 1 of
//! the paper) and prints the resulting report.
//!
//! Run with `cargo run --release --example verify_pipeline`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = ipcmos::table_1()?;
    print!("{report}");
    if report.all_verified() {
        println!("\nIPCMOS pipelines of any length satisfy the specification under the");
        println!("back-annotated relative-timing constraints.");
    }
    Ok(())
}
