//! Reproduces the two-stage pipeline waveform of Fig. 7 with the pulse-level
//! simulator.
//!
//! Run with `cargo run --release --example waveform`.

use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = ipcmos::flat_pipeline(2)?;
    let trace = ipcmos::simulate(&pipeline, 80);
    let initial = HashMap::from([
        ("VALID0".to_owned(), true),
        ("ACK0".to_owned(), false),
        ("CLKE_1".to_owned(), true),
        ("VALID1".to_owned(), true),
        ("ACK1".to_owned(), false),
        ("CLKE_2".to_owned(), true),
        ("VALID2".to_owned(), true),
        ("ACK2".to_owned(), false),
    ]);
    println!("two data items propagating through a two-stage IPCMOS pipeline (cf. Fig. 7):\n");
    print!(
        "{}",
        trace.waveform(
            &["VALID0", "ACK0", "CLKE_1", "VALID1", "ACK1", "CLKE_2", "VALID2", "ACK2"],
            &initial
        )
    );
    println!("\nfirst firing times:");
    for signal in ["VALID0-", "ACK0+", "VALID1-", "ACK1+", "VALID2-", "ACK2+"] {
        if let Some(t) = trace.times_of(signal).first() {
            println!("  {signal:<9} @ {t}");
        }
    }
    Ok(())
}
