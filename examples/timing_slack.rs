//! Back-annotation demo (Fig. 13): verify the transistor-level stage between
//! its pulse-driven environments and print the relative-timing constraints
//! (and their slacks) that the proof relies on.
//!
//! Run with `cargo run --release --example timing_slack`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let verdict = ipcmos::experiment_5()?;
    println!("{verdict}");
    println!("\nsufficient relative-timing constraints (cf. Fig. 13 of the paper):");
    for constraint in &verdict.report().constraints {
        println!("  {constraint}");
    }
    Ok(())
}
