//! The introductory example of Fig. 1/2 of the paper: the property "g always
//! fires before d" fails in the untimed state space and is proved by two
//! rounds of relative-timing refinement.
//!
//! Run with `cargo run --example intro_example`.

use transyt::{verify, SafetyProperty, VerifyOptions};

fn main() {
    let timed = bench_models::intro_example();
    let untimed_violations = timed.underlying().marked_reachable_states().len();
    println!(
        "untimed state space: {} states, {} of them violate the property",
        timed.underlying().state_count(),
        untimed_violations
    );
    let verdict = verify(
        &timed,
        &SafetyProperty::new("g fires before d").forbid_marked_states(),
        &VerifyOptions::default(),
    );
    println!("relative-timing verification: {verdict}");
    println!("{}", verdict.report().constraint_listing());
    let ground_truth = dbm::explore_timed(&timed);
    if let Some(report) = ground_truth.report() {
        println!(
            "zone-based ground truth: {} timed-reachable states, {} violations",
            report.reachable_states.len(),
            report.violating_states.len()
        );
    }
}

// The example model lives in the bench support crate; rebuild it here so the
// example stays a self-contained binary of the root package.
mod bench_models {
    use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

    pub fn intro_example() -> TimedTransitionSystem {
        let d = |l, u| DelayInterval::new(Time::new(l), Time::new(u)).expect("delay");
        let mut builder = TsBuilder::new("fig1-intro");
        let mut states = std::collections::HashMap::new();
        let mut add = |builder: &mut TsBuilder, key: (bool, bool, bool, bool, bool)| {
            *states.entry(key).or_insert_with(|| {
                builder.add_state(format!(
                    "a{}b{}c{}g{}d{}",
                    key.0 as u8, key.1 as u8, key.2 as u8, key.3 as u8, key.4 as u8
                ))
            })
        };
        let all: Vec<(bool, bool, bool, bool, bool)> = (0..32)
            .map(|i| (i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0, i & 16 != 0))
            .collect();
        for &key in &all {
            let (a, b, c, g, dd) = key;
            if (c && !a) || (dd && !c) {
                continue;
            }
            let from = add(&mut builder, key);
            if !a {
                let to = add(&mut builder, (true, b, c, g, dd));
                builder.add_transition(from, "a", to);
            }
            if !b {
                let to = add(&mut builder, (a, true, c, g, dd));
                builder.add_transition(from, "b", to);
            }
            if a && !c {
                let to = add(&mut builder, (a, b, true, g, dd));
                builder.add_transition(from, "c", to);
            }
            if !g {
                let to = add(&mut builder, (a, b, c, true, dd));
                builder.add_transition(from, "g", to);
            }
            if c && !dd {
                let to = add(&mut builder, (a, b, c, g, true));
                builder.add_transition(from, "d", to);
                if !g {
                    builder.mark_violation(to, "d fired before g");
                }
            }
        }
        let initial = states[&(false, false, false, false, false)];
        builder.set_initial(initial);
        let mut timed = TimedTransitionSystem::new(builder.build().expect("well formed"));
        timed.set_delay_by_name("a", d(2, 4));
        timed.set_delay_by_name("b", d(2, 4));
        timed.set_delay_by_name("c", d(5, 6));
        timed.set_delay_by_name("g", d(1, 1));
        timed
    }
}
