//! Quickstart: verify a small timed circuit fragment with the relative-timing
//! engine and print the back-annotated constraints.
//!
//! Run with `cargo run --example quickstart`.

use transyt::{verify, SafetyProperty, VerifyOptions};
use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Y-node race of the IPCMOS strobe switch, reduced to its essence:
    // Z+ (fast) and ACK+ (slow) respond to the same request; the short
    // circuit happens if ACK+ overtakes Z+.
    let mut b = TsBuilder::new("strobe-switch-race");
    let s0 = b.add_state("request");
    let ok = b.add_state("isolated");
    let bad = b.add_state("short-circuit");
    let done = b.add_state("done");
    let z = b.add_transition(s0, "Z+", ok);
    let ack = b.add_transition(s0, "ACK+", bad);
    b.add_transition_by_id(ok, ack, done);
    b.add_transition_by_id(bad, z, done);
    b.mark_violation(bad, "pull-up and pull-down of Y conduct simultaneously");
    b.set_initial(s0);

    let mut timed = TimedTransitionSystem::new(b.build()?);
    timed.set_delay_by_name("Z+", DelayInterval::new(Time::new(1), Time::new(2))?);
    timed.set_delay_by_name("ACK+", DelayInterval::new(Time::new(8), Time::new(11))?);

    let property = SafetyProperty::new("no short circuit at Y").forbid_marked_states();
    let verdict = verify(&timed, &property, &VerifyOptions::default());
    println!("{verdict}");
    println!("sufficient relative-timing constraints:");
    println!("{}", verdict.report().constraint_listing());
    Ok(())
}
