//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the small surface our bench targets use: `Criterion`,
//! `Bencher`, `BenchmarkGroup`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros. Measurements are wall-clock means over
//! `sample_size` iterations — good enough for coarse regression tracking,
//! trivially replaceable by the real crate once the registry is reachable.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time a single closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Per-benchmark measurement state handed to the closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each invocation.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples as u64;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<55} (no samples)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!("{id:<55} time: {per_iter} ns/iter ({} iters)", self.iters);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one parameterised case of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Benchmark one named case of the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Finish the group (a no-op in this subset; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter value alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name and a parameter value.
    pub fn new<S: Into<String>, D: Display>(function: S, parameter: D) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
