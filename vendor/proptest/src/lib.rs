//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate implements the surface our property tests use: the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros, integer-range / tuple /
//! `collection::vec` / [`arbitrary::any`] strategies, `prop_map` /
//! `prop_flat_map` combinators and [`test_runner::ProptestConfig`]. Generation
//! is a deterministic xorshift stream (reproducible runs) seeded from the
//! `PROPTEST_RNG_SEED` environment variable when set (decimal or `0x`-hex
//! `u64`, mirroring the real crate's knob) and from a fixed built-in
//! constant otherwise; every test logs the seed it ran under so CI can
//! assert two runs drew the same cases. Shrinking is not implemented — a
//! failing case panics with the case number and seed so it can be replayed.
//! Swap in the real crate once the registry is reachable.

pub mod test_runner {
    //! Test-case driving: configuration, RNG and failure type.

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property assertion, carried back to the runner.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* generator feeding every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed the stream; a zero seed is remapped to a fixed constant.
        pub fn new(seed: u64) -> Self {
            TestRng(if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            })
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// The seed built into the [`crate::proptest!`] macro when
    /// `PROPTEST_RNG_SEED` is unset.
    pub const DEFAULT_RNG_SEED: u64 = 0x5eed_0f0f_cafe_f00d;

    /// The seed the current process draws its cases from: the value of the
    /// `PROPTEST_RNG_SEED` environment variable (decimal, or hex with a
    /// `0x` prefix) when set and parseable, [`DEFAULT_RNG_SEED`] otherwise.
    /// A malformed value panics rather than silently drifting onto the
    /// default stream.
    pub fn rng_seed() -> u64 {
        match std::env::var("PROPTEST_RNG_SEED") {
            Ok(text) => {
                let parsed = match text.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse(),
                };
                parsed.unwrap_or_else(|_| panic!("PROPTEST_RNG_SEED must be a u64, got `{text}`"))
            }
            Err(_) => DEFAULT_RNG_SEED,
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the map / flat-map combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),* $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(
                            self.start < self.end,
                            "empty range strategy {}..{}",
                            self.start,
                            self.end
                        );
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (u128::from(rng.next_u64()) % span) as i128;
                        (self.start as i128 + offset) as $ty
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),* $(,)?) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.next_u64() as $ty
                    }
                }
            )*
        };
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `A`.
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`Vec` only, which is all our tests use).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`](fn@vec): an exact size or a half-open
    /// range, mirroring the real proptest's `SizeRange` conversions.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy generating vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                self.size.clone().generate(rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::rng_seed();
                ::std::eprintln!(
                    "proptest seed: {} (test {}; set PROPTEST_RNG_SEED to reproduce)",
                    seed,
                    ::std::stringify!($name),
                );
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed under seed {}: {}",
                            case + 1,
                            config.cases,
                            seed,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ::std::default::Default::default();
            $($rest)*
        );
    };
}

/// Assert a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val != *right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            left_val,
                            right_val
                        ),
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left != right`\n  both: `{:?}`",
                            left_val
                        ),
                    ));
                }
            }
        }
    };
}
