#!/usr/bin/env bash
# Perf gate: assert the pinned scaling ceilings of ci/scaling-baseline.json.
#
# Zone-exploration configuration counts are deterministic (the driver's
# merge is canonical at every thread count), so these are exact gates, not
# noisy wall-clock thresholds: if a count rises past its ceiling, an
# abstraction or coverage relation regressed. The gates:
#
#   * `transyt zones` (defaults: aLU subsumption, LU-active extrapolation)
#     on the shipped 1-stage and 2-stage pipelines stays within the pinned
#     configuration ceilings;
#   * the scaling_report flat 1-stage series `zones-lu-active` and
#     `zones-alu` stay within theirs (pass a pre-computed BENCH_scaling.json
#     with --scaling-json to avoid re-running the ~1 min report);
#   * the 3-stage pipeline COMPLETES under `--subsumption alu` within the
#     1,000,000-configuration budget — the headline aLU acceptance gate
#     (skip with --skip-3stage for a quick local run);
#   * the 4-stage pipeline — too large for full zone closure in CI — runs a
#     BUDGETED determinism gate: `--subsumption alu --limit 50000` must
#     abort at exactly the pinned configuration count and produce a
#     byte-identical JSON document at --threads 1 and --threads 4
#     (skip with --skip-4stage).
#
# Usage: scripts/check-scaling.sh [--binary PATH] [--baseline PATH]
#                                 [--scaling-json PATH] [--skip-3stage]
#                                 [--skip-4stage]

set -euo pipefail

cd "$(dirname "$0")/.."

BINARY=target/release/transyt
BASELINE=ci/scaling-baseline.json
SCALING_JSON=""
RUN_3STAGE=1
RUN_4STAGE=1

while [ $# -gt 0 ]; do
  case "$1" in
    --binary) BINARY=$2; shift 2 ;;
    --baseline) BASELINE=$2; shift 2 ;;
    --scaling-json) SCALING_JSON=$2; shift 2 ;;
    --skip-3stage) RUN_3STAGE=0; shift ;;
    --skip-4stage) RUN_4STAGE=0; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

[ -x "$BINARY" ] || { echo "transyt binary not found at $BINARY (build with: cargo build --release -p transyt-cli)" >&2; exit 2; }
[ -f "$BASELINE" ] || { echo "baseline file not found at $BASELINE" >&2; exit 2; }

ceiling() { # ceiling <section> <key>
  python3 -c "import json,sys; print(json.load(open('$BASELINE'))['$1']['$2']['max_configurations'])"
}

json_field() { # json_field <file> <field>
  python3 -c "import json,sys; print(json.load(open('$1'))['$2'])"
}

fail=0
gate() { # gate <label> <measured> <ceiling>
  if [ "$2" -le "$3" ]; then
    echo "perf-gate OK:   $1 = $2 (ceiling $3)"
  else
    echo "perf-gate FAIL: $1 = $2 exceeds ceiling $3" >&2
    fail=1
  fi
}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

for model in ipcmos_1stage ipcmos_2stage; do
  "$BINARY" zones "models/$model.stg" --json "$workdir/$model.json" > /dev/null
  [ "$(json_field "$workdir/$model.json" completed)" = "True" ] \
    || { echo "perf-gate FAIL: $model did not complete under the default limit" >&2; fail=1; continue; }
  gate "zones $model (defaults)" \
    "$(json_field "$workdir/$model.json" configurations)" \
    "$(ceiling zones "$model")"
done

if [ -z "$SCALING_JSON" ]; then
  SCALING_JSON=$workdir/BENCH_scaling.json
  echo "running scaling_report (pass --scaling-json to reuse an existing report)..."
  cargo run --release -p bench --bin scaling_report --quiet -- \
    1 --threads 4 --limit 100000 --json "$SCALING_JSON" > /dev/null
fi
for series in zones-lu-active zones-alu; do
  measured=$(python3 -c "
import json
report = json.load(open('$SCALING_JSON'))
[series] = [s for s in report['series'] if s['name'] == '$series']
point = series['points'][0]
assert point['completed'], '$series did not complete'
print(point['configurations'])
")
  gate "scaling_report $series (flat 1-stage)" "$measured" "$(ceiling scaling_report "$series")"
done

if [ "$RUN_3STAGE" = 1 ]; then
  budget=$(python3 -c "import json; print(json.load(open('$BASELINE'))['alu_gate']['max_configurations'])")
  "$BINARY" zones models/ipcmos_3stage.stg --subsumption alu --limit "$budget" \
    --json "$workdir/ipcmos_3stage.json" > /dev/null
  if [ "$(json_field "$workdir/ipcmos_3stage.json" completed)" = "True" ]; then
    gate "zones ipcmos_3stage (--subsumption alu)" \
      "$(json_field "$workdir/ipcmos_3stage.json" configurations)" "$budget"
  else
    echo "perf-gate FAIL: ipcmos_3stage did not complete under aLU within $budget configurations" >&2
    fail=1
  fi
else
  echo "perf-gate SKIP: ipcmos_3stage aLU completion gate (--skip-3stage)"
fi

if [ "$RUN_4STAGE" = 1 ]; then
  limit=$(python3 -c "import json; print(json.load(open('$BASELINE'))['four_stage_gate']['limit'])")
  expected=$(python3 -c "import json; print(json.load(open('$BASELINE'))['four_stage_gate']['expected_configurations'])")
  for threads in 1 4; do
    "$BINARY" zones models/ipcmos_4stage.stg --subsumption alu \
      --limit "$limit" --threads "$threads" \
      --json "$workdir/ipcmos_4stage_t$threads.json" > /dev/null
  done
  if ! cmp -s "$workdir/ipcmos_4stage_t1.json" "$workdir/ipcmos_4stage_t4.json"; then
    echo "perf-gate FAIL: ipcmos_4stage budgeted documents differ between --threads 1 and --threads 4" >&2
    fail=1
  elif [ "$(json_field "$workdir/ipcmos_4stage_t1.json" completed)" = "True" ]; then
    # The budget is sized to be exceeded today; completing within it would
    # be an improvement worth pinning, not a regression.
    echo "perf-gate OK:   ipcmos_4stage COMPLETED within the $limit budget — tighten the four_stage_gate baseline"
  else
    measured=$(json_field "$workdir/ipcmos_4stage_t1.json" configurations)
    if [ "$measured" = "$expected" ]; then
      echo "perf-gate OK:   ipcmos_4stage budgeted run aborts deterministically at $measured configurations, byte-identical across thread counts"
    else
      echo "perf-gate FAIL: ipcmos_4stage budgeted run stopped at $measured configurations (pinned $expected)" >&2
      fail=1
    fi
  fi
else
  echo "perf-gate SKIP: ipcmos_4stage budgeted determinism gate (--skip-4stage)"
fi

exit "$fail"
