#!/usr/bin/env bash
# Determinism gate for the property-test suites: the randomized zone and
# exploration proptests must draw their cases from one pinned RNG seed and
# must draw the SAME cases regardless of test-harness threading.
#
# The vendored proptest crate seeds every `proptest!` block from the
# `PROPTEST_RNG_SEED` environment variable (logging the seed it used), so
# this script runs the suites twice — default threading, then
# `--test-threads 1` — and fails if any logged seed differs from the pinned
# one: a drift means a test stopped honouring the seed and its cases are no
# longer reproducible from the CI log.
#
# Usage: scripts/check-proptest-determinism.sh [SEED]

set -euo pipefail

cd "$(dirname "$0")/.."

# Any fixed u64 works; this one is logged so a failure line in CI can be
# replayed locally with the same PROPTEST_RNG_SEED.
export PROPTEST_RNG_SEED=${1:-2002060342}
echo "pinned PROPTEST_RNG_SEED=$PROPTEST_RNG_SEED"

SUITES=(-p transyt-cli --test proptest_zones -p ipcmos-repro --test proptest_explore)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run() { # run <logfile> [extra harness args...]
  local log=$1
  shift
  cargo test --release "${SUITES[@]}" -- --nocapture "$@" 2>&1 | tee "$log" \
    | grep -E "test |proptest seed:" || true
  grep -q "test result: ok" "$log" || { echo "proptest suite failed; see above" >&2; exit 1; }
  if grep -q "test result: FAILED" "$log"; then
    echo "proptest suite failed; see above" >&2
    exit 1
  fi
}

echo "=== pass 1: default harness threading ==="
run "$workdir/parallel.log"
echo "=== pass 2: --test-threads 1 ==="
run "$workdir/serial.log" --test-threads 1

check_seeds() { # check_seeds <logfile>
  local seeds
  seeds=$(grep -o "proptest seed: [0-9]*" "$1" | awk '{print $3}' | sort -u)
  if [ -z "$seeds" ]; then
    echo "no 'proptest seed:' lines in $1 — the vendored proptest stopped logging seeds" >&2
    return 1
  fi
  if [ "$seeds" != "$PROPTEST_RNG_SEED" ]; then
    echo "seed drift in $1: logged seed(s) [$seeds] != pinned $PROPTEST_RNG_SEED" >&2
    return 1
  fi
}

check_seeds "$workdir/parallel.log"
check_seeds "$workdir/serial.log"

count_parallel=$(grep -o "proptest seed:" "$workdir/parallel.log" | wc -l)
count_serial=$(grep -o "proptest seed:" "$workdir/serial.log" | wc -l)
if [ "$count_parallel" != "$count_serial" ]; then
  echo "test-count drift: $count_parallel proptest blocks ran in parallel vs $count_serial serial" >&2
  exit 1
fi

echo "determinism gate OK: $count_parallel proptest blocks, every seed = $PROPTEST_RNG_SEED under both threadings"
