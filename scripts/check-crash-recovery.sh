#!/usr/bin/env bash
# Resilience gate: a real `transyt serve --data-dir` process is SIGKILLed
# mid-queue and restarted over the same data dir. The gates:
#
#   * the pre-crash completed job's document is served after the restart
#     byte-identical to the pre-crash bytes;
#   * every interrupted job (running or queued at the kill) is re-enqueued
#     and re-run to completion;
#   * resubmitting each job after the restart yields a document
#     byte-identical to the one-shot CLI's `--json` output, with ZERO new
#     runs (`runs_executed` in /healthz stays flat — everything is answered
#     from the content-addressed store or the memo);
#   * `transyt store ls` reads the crashed dir offline.
#
# Artifacts (server logs, store listings, document diffs) land in the
# report dir for CI upload.
#
# Usage: scripts/check-crash-recovery.sh [--binary PATH] [--report-dir DIR]

set -euo pipefail

cd "$(dirname "$0")/.."

BINARY=target/release/transyt
REPORT_DIR=target/resilience-reports

while [ $# -gt 0 ]; do
  case "$1" in
    --binary) BINARY=$2; shift 2 ;;
    --report-dir) REPORT_DIR=$2; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

[ -x "$BINARY" ] || { echo "transyt binary not found at $BINARY (build with: cargo build --release -p transyt-cli)" >&2; exit 2; }

mkdir -p "$REPORT_DIR"
DATA_DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DATA_DIR"
}
trap cleanup EXIT

ADDR=""
start_server() { # start_server <logfile>
  "$BINARY" serve --addr 127.0.0.1:0 --workers 1 --data-dir "$DATA_DIR" \
    > "$1" 2>&1 &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^transyt server listening on \([^ ]*\).*/\1/p' "$1")
    [ -n "$ADDR" ] && return 0
    sleep 0.1
  done
  echo "server never printed its listening address (log: $1)" >&2
  cat "$1" >&2
  exit 1
}

http_get() { # http_get <path>
  python3 -c "
import sys, urllib.request
print(urllib.request.urlopen(f'http://{sys.argv[1]}{sys.argv[2]}').read().decode(), end='')
" "$ADDR" "$1"
}

job_field() { # job_field <job-id> <field>  (string fields)
  http_get "/jobs/$1" | python3 -c "import json,sys; print(json.load(sys.stdin)['$2'])"
}

healthz_stat() { # healthz_stat <field>
  http_get /healthz | python3 -c "import json,sys; print(json.load(sys.stdin)['stats']['$1'])"
}

submit_job() { # submit_job <file> [extra submit flags...] -> prints nothing
  local file=$1; shift
  "$BINARY" submit "$file" --server "$ADDR" "$@" > /dev/null
}

fail=0
gate() { # gate <ok?> <label>
  if [ "$1" = 0 ]; then
    echo "resilience OK:   $2"
  else
    echo "resilience FAIL: $2" >&2
    fail=1
  fi
}

VERIFY_MODELS="intro_fig1.tts ipcmos_1stage.stg c_element.stg race_overlap.tts ring_pipeline.stg"

# ---- Phase 1: single worker, durable dir, a mixed queue. ----
start_server "$REPORT_DIR/serve-1.log"
echo "phase 1: server $SERVER_PID on $ADDR, data dir $DATA_DIR"

# Job 0 completes before the crash; capture its served bytes as the oracle.
submit_job models/intro_fig1.tts --wait --json "$REPORT_DIR/pre-crash-intro_fig1.json"

# Job 1 hogs the single worker (the 2-stage zone exploration runs for a
# while); jobs 2..5 pile up queued behind it.
submit_job models/ipcmos_2stage.stg --command zones --limit 3000
submit_job models/ipcmos_1stage.stg
submit_job models/c_element.stg
submit_job models/race_overlap.tts
submit_job models/ring_pipeline.stg

for _ in $(seq 1 200); do
  [ "$(job_field 1 status)" = running ] && break
  sleep 0.05
done
RUNNING=$(job_field 1 status)
QUEUED=$(http_get /jobs | python3 -c "
import json, sys
print(sum(1 for j in json.load(sys.stdin)['jobs'] if j['status'] == 'queued'))")
echo "at kill time: job 1 is $RUNNING, $QUEUED jobs queued"
[ "$RUNNING" = running ] || { echo "job 1 not running at kill time" >&2; exit 1; }
[ "$QUEUED" -ge 2 ] || { echo "fewer than 2 jobs queued at kill time" >&2; exit 1; }

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "SIGKILLed the server mid-queue"

# The crashed dir is inspectable offline.
"$BINARY" store ls --data-dir "$DATA_DIR" > "$REPORT_DIR/store-ls-post-crash.txt"
grep -q '#0 done verify' "$REPORT_DIR/store-ls-post-crash.txt" \
  || { echo "store ls does not list the completed job" >&2; exit 1; }

# ---- Phase 2: restart over the same dir; everything recovers. ----
start_server "$REPORT_DIR/serve-2.log"
echo "phase 2: server $SERVER_PID on $ADDR"

# Wait for every recovered job to settle.
for _ in $(seq 1 2400); do
  SETTLED=$(http_get /jobs | python3 -c "
import json, sys
jobs = json.load(sys.stdin)['jobs']
terminal = {'done', 'failed', 'cancelled', 'timed_out'}
print(1 if len(jobs) == 6 and all(j['status'] in terminal for j in jobs) else 0)")
  [ "$SETTLED" = 1 ] && break
  sleep 0.25
done
[ "$SETTLED" = 1 ] || { echo "recovered jobs never settled" >&2; http_get /jobs >&2; exit 1; }
NOT_DONE=$(http_get /jobs | python3 -c "
import json, sys
print(sum(1 for j in json.load(sys.stdin)['jobs'] if j['status'] != 'done'))")
gate "$([ "$NOT_DONE" = 0 ]; echo $?)" "all 6 recovered jobs re-ran to done"

# The pre-crash completed document is served byte-identical from the store.
http_get /jobs/0/result > "$REPORT_DIR/post-crash-intro_fig1.json"
if cmp -s "$REPORT_DIR/pre-crash-intro_fig1.json" "$REPORT_DIR/post-crash-intro_fig1.json"; then
  gate 0 "pre-crash completed document survived byte-identical"
else
  diff "$REPORT_DIR/pre-crash-intro_fig1.json" "$REPORT_DIR/post-crash-intro_fig1.json" \
    > "$REPORT_DIR/diff-intro_fig1-recovery.txt" || true
  gate 1 "pre-crash completed document changed across the crash"
fi

RUNS_AFTER_REPLAY=$(healthz_stat runs_executed)
http_get /healthz > "$REPORT_DIR/healthz-post-recovery.json"

# Resubmit everything: answered from the store/memo, byte-identical to the
# one-shot CLI, with zero new runs.
for model in $VERIFY_MODELS; do
  name=${model%.*}
  "$BINARY" verify "models/$model" --json "$REPORT_DIR/oneshot-$name.json" > /dev/null
  submit_job "models/$model" --wait --json "$REPORT_DIR/resubmit-$name.json"
  if cmp -s "$REPORT_DIR/oneshot-$name.json" "$REPORT_DIR/resubmit-$name.json"; then
    gate 0 "resubmitted $model matches the one-shot CLI byte-for-byte"
  else
    diff "$REPORT_DIR/oneshot-$name.json" "$REPORT_DIR/resubmit-$name.json" \
      > "$REPORT_DIR/diff-$name.txt" || true
    gate 1 "resubmitted $model differs from the one-shot CLI"
  fi
done
"$BINARY" zones models/ipcmos_2stage.stg --limit 3000 \
  --json "$REPORT_DIR/oneshot-zones-2stage.json" > /dev/null
submit_job models/ipcmos_2stage.stg --command zones --limit 3000 \
  --wait --json "$REPORT_DIR/resubmit-zones-2stage.json"
if cmp -s "$REPORT_DIR/oneshot-zones-2stage.json" "$REPORT_DIR/resubmit-zones-2stage.json"; then
  gate 0 "resubmitted zones job matches the one-shot CLI byte-for-byte"
else
  diff "$REPORT_DIR/oneshot-zones-2stage.json" "$REPORT_DIR/resubmit-zones-2stage.json" \
    > "$REPORT_DIR/diff-zones-2stage.txt" || true
  gate 1 "resubmitted zones job differs from the one-shot CLI"
fi

RUNS_AFTER_RESUBMIT=$(healthz_stat runs_executed)
gate "$([ "$RUNS_AFTER_REPLAY" = "$RUNS_AFTER_RESUBMIT" ]; echo $?)" \
  "resubmissions executed zero new runs ($RUNS_AFTER_REPLAY before, $RUNS_AFTER_RESUBMIT after)"
STORE_HITS=$(healthz_stat store_hits)
gate "$([ "$STORE_HITS" -ge 1 ]; echo $?)" \
  "at least one resubmission was answered from the on-disk store ($STORE_HITS store hits)"

# Artifacts: the final dir layout and listing.
"$BINARY" store ls --data-dir "$DATA_DIR" > "$REPORT_DIR/store-ls-final.txt"
(cd "$DATA_DIR" && find . -type f -exec ls -l {} + | sort -k 9) \
  > "$REPORT_DIR/data-dir-listing.txt"
http_get /healthz > "$REPORT_DIR/healthz-final.json"

python3 -c "
import sys, urllib.request
req = urllib.request.Request(f'http://{sys.argv[1]}/shutdown', method='POST')
urllib.request.urlopen(req).read()
" "$ADDR"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

exit "$fail"
