#!/usr/bin/env bash
# Regenerates the committed golden documents in crates/cli/tests/golden/
# from the current canonical rendering (the exact bytes `--json` writes and
# the server serves). Run this after an *intentional* document-shape change,
# review the diff, and re-run `cargo test -p transyt-cli --test golden` —
# the `every_committed_golden_matches_current_rendering` test fails when a
# golden drifts or an orphan file lands in the directory.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p transyt-cli
BIN=target/release/transyt
GOLD=crates/cli/tests/golden

for m in c_element.stg intro_fig1.tts ipcmos_1stage.stg ipcmos_2stage.stg \
         ipcmos_3stage.stg race_overlap.tts ring_pipeline.stg; do
    "$BIN" verify "models/$m" --trace --json "$GOLD/verify_${m//./_}.json" >/dev/null
done
"$BIN" zones models/ipcmos_1stage.stg --json "$GOLD/zones_ipcmos_1stage_stg.json" >/dev/null
"$BIN" zones models/race_overlap.tts --trace --json "$GOLD/zones_race_overlap_tts.json" >/dev/null
"$BIN" reach models/c_element.stg --to C+ --json "$GOLD/reach_c_element_stg.json" >/dev/null
"$BIN" reach models/ring_pipeline.stg --json "$GOLD/reach_ring_pipeline_stg.json" >/dev/null

echo "regenerated $(ls "$GOLD" | wc -l) goldens in $GOLD"
