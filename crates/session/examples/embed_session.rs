//! Embedding `transyt-session`: load a textual model, run a traced
//! verification with progress events, and write the canonical JSON document
//! — the same bytes `transyt verify FILE --trace --json` writes and
//! `transyt serve` serves (the CI `api` job diffs all three).
//!
//! Usage: `embed_session MODEL_FILE [OUT_JSON]`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use transyt_session::{
    render, Completion, Outcome, ProgressEvent, ProgressSink, RunControl, Session, TaskSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let file = args
        .next()
        .ok_or("usage: embed_session MODEL_FILE [OUT_JSON]")?;
    let out = args.next();

    // 1. Intern the model once; tasks name it by content hash.
    let session = Session::new();
    let text = std::fs::read_to_string(&file)?;
    let (model, cached) = session.add_model(&text)?;
    eprintln!(
        "model `{}` ({}, hash {}, cached: {cached})",
        model.name, model.kind, model.hash
    );

    // 2. A typed task spec; its key is the canonical identity of the run.
    let spec = TaskSpec::verify(&model.hash).with_trace(true);
    eprintln!("task key: {} ({})", spec.key(), spec.key().canonical());

    // 3. Run with a progress sink counting exploration passes.
    let passes = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&passes);
    let control = RunControl {
        progress: ProgressSink::new(move |event| {
            if let ProgressEvent::Refinement { .. } = event {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }),
        ..RunControl::default()
    };
    let Completion::Finished(result) = session.run_task(&spec, control) else {
        unreachable!("nothing cancels this run");
    };
    let outcome = result.outcome.as_ref().map_err(|e| e.to_string())?;

    // 4. The outcome is structured data...
    if let Outcome::Verify(verify) = outcome {
        eprintln!(
            "verdict: {} after {} refinement(s), {} exploration pass(es) observed",
            if verify.verdict.is_verified() {
                "verified"
            } else {
                "not verified"
            },
            verify.verdict.report().refinements,
            passes.load(Ordering::Relaxed),
        );
    }

    // 5. ...and identical resubmissions are served by the same run.
    let Completion::Finished(again) = session.run_task(&spec, RunControl::default()) else {
        unreachable!("nothing cancels this run");
    };
    assert!(Arc::ptr_eq(&result, &again), "duplicate shares the result");
    let stats = session.stats();
    assert_eq!(stats.runs_executed, 1);
    eprintln!(
        "dedup: {} run executed, {} memo hit(s)",
        stats.runs_executed, stats.memo_hits
    );

    // 6. The canonical renderings — byte-identical to the CLI and server.
    match out {
        Some(path) => {
            std::fs::write(&path, render::render_document(&render::document(outcome)))?;
            eprintln!("wrote {path}");
        }
        None => print!("{}", render::text(outcome)),
    }
    Ok(())
}
