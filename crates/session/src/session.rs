//! The [`Session`]: interned models, deduplicated task runs, deadlines and
//! progress fan-out.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use explore::{CancelToken, ProgressEvent, ProgressSink};

use crate::format::{Model, ModelError, ModelSource};
use crate::outcome::{BudgetExceededOutcome, Outcome, RestoredOutcome, TimedOutOutcome};
use crate::persist::StoreHook;
use crate::render;
use crate::task::{TaskKey, TaskSpec};

/// Content hash of a model text: 64-bit FNV-1a, printed as 16 hex digits.
/// Not cryptographic — it keys a cache of files the operator controls.
pub fn content_hash(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// A model interned in a [`Session`]: the raw text, validation metadata and
/// the parsed form, addressed by the FNV-1a hash of the text so re-uploads
/// are free and tasks can name models without re-sending them.
#[derive(Debug, Clone)]
pub struct CachedModel {
    /// Content hash (16 hex digits).
    pub hash: String,
    /// The model's declared name.
    pub name: String,
    /// The model kind: `"stg"` or `"tts"`.
    pub kind: String,
    /// The raw model text as interned.
    pub text: String,
    /// The parsed model (parsed once, shared by every run against it).
    pub model: Arc<Model>,
}

/// Why a task could not produce an [`Outcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The model text could not be parsed or instantiated.
    Model(ModelError),
    /// The spec is inconsistent with the model or the command (a usage
    /// error, not a tool failure).
    Spec(String),
    /// The run itself failed (expansion limits, internal errors).
    Run(String),
    /// The run's cancel token fired before it produced any result (the
    /// cancellable explorations return partial *outcomes*; this variant is
    /// for paths — e.g. `reach` expansion — whose cancellation is an
    /// error).
    Cancelled,
    /// The spec names a content hash this session has not interned.
    UnknownModel(String),
    /// The run panicked (the panic is contained; the session stays usable).
    Panicked,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Model(e) => write!(f, "model error: {e}"),
            SessionError::Spec(msg) => write!(f, "usage error: {msg}"),
            SessionError::Run(msg) => write!(f, "{msg}"),
            SessionError::Cancelled => write!(f, "run cancelled"),
            SessionError::UnknownModel(hash) => write!(f, "unknown model hash `{hash}`"),
            SessionError::Panicked => write!(f, "job panicked"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ModelError> for SessionError {
    fn from(e: ModelError) -> Self {
        SessionError::Model(e)
    }
}

/// A finished task: the structured outcome plus the two canonical renderings
/// (rendered once per underlying run and shared — duplicate submissions hold
/// references to the *same* result).
#[derive(Debug)]
pub struct TaskResult {
    /// The structured outcome, or why the run failed.
    pub outcome: Result<Outcome, SessionError>,
    /// The canonical human-readable text ([`render::text`]).
    pub text: String,
    /// The canonical JSON document bytes ([`render::document`] through
    /// [`render::render_document`]), empty when the run failed.
    pub document: String,
}

/// How one call to [`Session::run_task`] finished.
#[derive(Debug)]
pub enum Completion {
    /// The run finished (executed here, attached to an in-flight duplicate,
    /// or served from the memo); the result is shared between all of them.
    Finished(Arc<TaskResult>),
    /// This caller was *attached* to an in-flight duplicate run and its own
    /// [`RunControl::cancel`] token fired while waiting: the caller detached
    /// and the underlying run keeps going for the others.
    Detached,
}

/// Per-call knobs of [`Session::run_task`]: this caller's cancel token and
/// progress sink. The defaults are inert.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cancels this caller's interest in the task. For the caller that ends
    /// up *executing* the run this is the run's cancel token; for callers
    /// attached to an in-flight duplicate it detaches them (the run
    /// continues for the executor).
    pub cancel: CancelToken,
    /// Receives this caller's progress events. Attached callers start
    /// receiving events from the moment they attach.
    pub progress: ProgressSink,
}

/// Counters of a session's deduplication behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Runs actually executed.
    pub runs_executed: u64,
    /// Calls attached to an in-flight identical run.
    pub runs_attached: u64,
    /// Calls served from the completed-run memo without any run.
    pub memo_hits: u64,
    /// Calls served from the persistent store ([`StoreHook`]) without any
    /// run — duplicate submissions deduplicated across process restarts.
    pub store_hits: u64,
}

struct RunShared {
    cancel: CancelToken,
    sinks: Arc<Mutex<Vec<ProgressSink>>>,
    done: Mutex<Option<Arc<TaskResult>>>,
    finished: Condvar,
}

struct Inner {
    models: Vec<CachedModel>,
    inflight: HashMap<TaskKey, Arc<RunShared>>,
    memo: VecDeque<(TaskKey, Arc<TaskResult>)>,
    stats: SessionStats,
    store: Option<Arc<dyn StoreHook>>,
}

/// An embedding-friendly handle on the verification stack: a `Session` owns
/// parsed models (interned by content hash) and runs [`TaskSpec`]s against
/// them, deduplicating identical submissions into one underlying run.
///
/// * [`add_model`](Session::add_model) / [`insert_model`](Session::insert_model)
///   intern a model once; every task names it by hash.
/// * [`run`](Session::run) is the simple blocking entry point;
///   [`run_task`](Session::run_task) adds cancellation and progress events;
///   [`spawn`](Session::spawn) runs in the background.
/// * Two calls whose specs share a [`TaskKey`] are served by a single run:
///   the second **attaches** to the first (sharing its progress stream and,
///   on completion, the very same [`TaskResult`]), or hits the bounded memo
///   of recently completed runs. Partial results (cancelled or timed-out
///   runs) are never memoized.
///
/// # Examples
///
/// ```
/// use transyt_session::{render, Outcome, Session, TaskSpec};
///
/// let session = Session::new();
/// let (cached, _fresh) = session.add_model(
///     "tts race\n\
///      state s0 s0\n\
///      state s1 bad\n\
///      state s2 ok\n\
///      state s3 done\n\
///      initial s0\n\
///      violation s1 \"slow overtook fast\"\n\
///      trans s0 fast s2\n\
///      trans s0 slow s1\n\
///      trans s2 slow s3\n\
///      trans s1 fast s3\n\
///      delay fast [1,2]\n\
///      delay slow [5,9]\n\
///      property forbid-marked\n",
/// ).unwrap();
/// let spec = TaskSpec::verify(&cached.hash).with_trace(true);
/// let outcome = session.run(&spec).unwrap();
/// let Outcome::Verify(verify) = &outcome else { panic!("verify outcome") };
/// assert!(verify.verdict.is_verified());
/// // The canonical renderings are what the CLI prints / serves.
/// assert!(render::text(&outcome).contains("VERIFIED"));
/// assert!(render::render_document(&render::document(&outcome))
///     .contains("\"verdict\":\"verified\""));
/// ```
pub struct Session {
    inner: Mutex<Inner>,
    memo_capacity: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session with the default completed-run memo (64 results).
    pub fn new() -> Session {
        Session::with_memo_capacity(64)
    }

    /// An empty session whose completed-run memo keeps at most
    /// `memo_capacity` results (`0` disables result reuse entirely; only
    /// concurrent duplicates are then deduplicated).
    pub fn with_memo_capacity(memo_capacity: usize) -> Session {
        Session {
            inner: Mutex::new(Inner {
                models: Vec::new(),
                inflight: HashMap::new(),
                memo: VecDeque::new(),
                stats: SessionStats::default(),
                store: None,
            }),
            memo_capacity,
        }
    }

    /// Installs the persistence hook (see [`StoreHook`]): freshly interned
    /// models and cacheable finished results are pushed into it, and task
    /// submissions consult it — after the in-memory memo misses — before a
    /// run is scheduled, so duplicates dedupe across process restarts.
    pub fn set_store_hook(&self, hook: Arc<dyn StoreHook>) {
        self.lock().store = Some(hook);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("session state poisoned")
    }

    /// Parses and interns a model text. Returns the cache entry and `true`
    /// when the text was already interned.
    ///
    /// # Errors
    ///
    /// The parse error for unparseable texts; nothing is interned.
    pub fn add_model(&self, text: &str) -> Result<(CachedModel, bool), ModelError> {
        let hash = content_hash(text);
        if let Some(existing) = self.model(&hash) {
            return Ok((existing, true));
        }
        let model = Model::parse(text)?;
        Ok(self.intern(hash, text.to_owned(), model))
    }

    /// Interns an already-parsed model under the hash of its canonical text
    /// (the one-shot CLI path, and embedders that build models in code).
    pub fn insert_model(&self, model: Model) -> CachedModel {
        let text = model.to_text();
        let hash = content_hash(&text);
        self.intern(hash, text, model).0
    }

    /// Double-checked interning under the session lock. Returns the entry
    /// and `true` when the hash was already interned (possibly by another
    /// thread racing this call).
    fn intern(&self, hash: String, text: String, model: Model) -> (CachedModel, bool) {
        let entry = CachedModel {
            hash: hash.clone(),
            name: model.name.clone(),
            kind: kind_of(&model).to_owned(),
            text,
            model: Arc::new(model),
        };
        let mut inner = self.lock();
        if let Some(existing) = inner.models.iter().find(|m| m.hash == hash) {
            return (existing.clone(), true);
        }
        inner.models.push(entry.clone());
        let hook = inner.store.as_ref().map(Arc::clone);
        drop(inner);
        if let Some(hook) = hook {
            hook.save_model(&entry.hash, &entry.text);
        }
        (entry, false)
    }

    /// The interned models, oldest first.
    pub fn models(&self) -> Vec<CachedModel> {
        self.lock().models.clone()
    }

    /// Looks an interned model up by content hash.
    pub fn model(&self, hash: &str) -> Option<CachedModel> {
        self.lock().models.iter().find(|m| m.hash == hash).cloned()
    }

    /// The session's deduplication counters.
    pub fn stats(&self) -> SessionStats {
        self.lock().stats
    }

    /// Runs a task to completion on the calling thread and returns its
    /// structured outcome. Identical concurrent or recent submissions share
    /// one underlying run (see [`run_task`](Session::run_task) for the
    /// sharing semantics and for cancellation / progress events).
    ///
    /// # Errors
    ///
    /// [`SessionError`] as recorded in the shared [`TaskResult`].
    pub fn run(&self, spec: &TaskSpec) -> Result<Outcome, SessionError> {
        match self.run_task(spec, RunControl::default()) {
            Completion::Finished(result) => result.outcome.clone(),
            Completion::Detached => {
                unreachable!("the inert default cancel token never detaches a caller")
            }
        }
    }

    /// Runs a task with explicit cancellation and progress control,
    /// deduplicating by [`TaskKey`]:
    ///
    /// * If an identical run is **in flight**, this call attaches to it:
    ///   `control.progress` joins the run's fan-out and the call blocks
    ///   until the shared result exists. Firing `control.cancel` while
    ///   attached *detaches* this caller ([`Completion::Detached`]) without
    ///   stopping the run.
    /// * If an identical run **recently completed**, the memoized
    ///   [`TaskResult`] is returned immediately.
    /// * Otherwise this call **executes** the run on the calling thread;
    ///   `control.cancel` is then the run's own token and cancelling it
    ///   stops the exploration (every attached caller sees the partial
    ///   result). A [`TaskSpec::deadline`] arms a watchdog that fires the
    ///   token and wraps the result in [`Outcome::TimedOut`].
    ///
    /// Errors (unknown hash, usage errors, panics) are delivered through the
    /// shared [`TaskResult::outcome`], so duplicates of a failing run share
    /// the failure too.
    pub fn run_task(&self, spec: &TaskSpec, control: RunControl) -> Completion {
        let key = spec.key();
        let shared = {
            let mut inner = self.lock();
            if let Some(position) = inner.memo.iter().position(|(k, _)| *k == key) {
                inner.stats.memo_hits += 1;
                // Refresh the LRU position.
                let entry = inner.memo.remove(position).expect("position in range");
                let result = Arc::clone(&entry.1);
                inner.memo.push_back(entry);
                return Completion::Finished(result);
            }
            if let Some(shared) = inner.inflight.get(&key).map(Arc::clone) {
                inner.stats.runs_attached += 1;
                if !control.progress.is_inert() {
                    shared
                        .sinks
                        .lock()
                        .expect("progress sinks poisoned")
                        .push(control.progress.clone());
                }
                drop(inner);
                return self.wait_attached(&shared, &control.cancel);
            }
            // Memo and inflight both missed: ask the persistent store before
            // committing to a run. The lookup deliberately happens under the
            // session lock — it is one small file read, and racing lookups
            // of the same key would otherwise both miss and run twice.
            if let Some(hook) = inner.store.as_ref().map(Arc::clone) {
                if let Some(stored) = hook.load_result(&key) {
                    inner.stats.store_hits += 1;
                    let model = inner
                        .models
                        .iter()
                        .find(|m| m.hash == spec.model)
                        .map(|m| m.name.clone())
                        .unwrap_or_else(|| spec.model.clone());
                    let result = Arc::new(TaskResult {
                        outcome: Ok(Outcome::Restored(RestoredOutcome {
                            model,
                            command: spec.command,
                        })),
                        text: stored.text,
                        document: stored.document,
                    });
                    if self.memo_capacity > 0 {
                        if inner.memo.len() >= self.memo_capacity {
                            inner.memo.pop_front();
                        }
                        inner.memo.push_back((key, Arc::clone(&result)));
                    }
                    return Completion::Finished(result);
                }
            }
            inner.stats.runs_executed += 1;
            // A deadline or a resource budget needs a token that can
            // actually fire (the watchdog fires it on expiry, the driver on
            // a budget breach): the inert default is upgraded to a live one
            // (nothing is lost — an inert token could never have cancelled
            // the run anyway).
            let needs_live_token =
                spec.deadline.is_some() || spec.effective_budgets() != (None, None);
            let run_cancel = if needs_live_token && control.cancel.is_inert() {
                CancelToken::new()
            } else {
                control.cancel.clone()
            };
            let shared = Arc::new(RunShared {
                cancel: run_cancel,
                sinks: Arc::new(Mutex::new(if control.progress.is_inert() {
                    Vec::new()
                } else {
                    vec![control.progress.clone()]
                })),
                done: Mutex::new(None),
                finished: Condvar::new(),
            });
            inner.inflight.insert(key.clone(), Arc::clone(&shared));
            shared
        };

        // Execute outside the session lock. The fan-out sink forwards every
        // event to the sinks registered at that moment, so late attachers
        // start receiving events mid-run.
        let fan_out = {
            let sinks = Arc::clone(&shared.sinks);
            ProgressSink::new(move |event: &ProgressEvent| {
                for sink in sinks.lock().expect("progress sinks poisoned").iter() {
                    sink.emit(event);
                }
            })
        };
        let outcome = self.execute_guarded(spec, &shared.cancel, &fan_out);
        // Rendering runs over model-derived data too: guard it like the run
        // itself, so a panic still publishes a result and attached
        // duplicates never hang on an inflight entry that would otherwise
        // leak.
        let result = match catch_unwind(AssertUnwindSafe(|| {
            let text = outcome.as_ref().map(render::text).unwrap_or_default();
            let document = outcome
                .as_ref()
                .map(|outcome| render::render_document(&render::document(outcome)))
                .unwrap_or_default();
            (text, document)
        })) {
            Ok((text, document)) => Arc::new(TaskResult {
                text,
                document,
                outcome,
            }),
            Err(_) => Arc::new(TaskResult {
                text: String::new(),
                document: String::new(),
                outcome: Err(SessionError::Panicked),
            }),
        };

        let mut inner = self.lock();
        inner.inflight.remove(&key);
        let cacheable = matches!(&result.outcome, Ok(outcome) if !outcome.was_cancelled());
        let persist = if cacheable {
            inner.store.as_ref().map(Arc::clone)
        } else {
            None
        };
        if cacheable && self.memo_capacity > 0 {
            if inner.memo.len() >= self.memo_capacity {
                inner.memo.pop_front();
            }
            inner.memo.push_back((key.clone(), Arc::clone(&result)));
        }
        drop(inner);
        // Persist before publishing: by the time any caller observes the
        // result, the stored copy exists (a journaling embedder can record
        // "done" knowing the result file is already on disk).
        if let Some(hook) = persist {
            hook.save_result(spec, &key, &result);
        }
        *shared.done.lock().expect("run result poisoned") = Some(Arc::clone(&result));
        shared.finished.notify_all();
        Completion::Finished(result)
    }

    /// Runs a task on a new thread; the returned [`TaskHandle`] can cancel
    /// it and join for the result.
    pub fn spawn(self: &Arc<Self>, spec: &TaskSpec, control: RunControl) -> TaskHandle {
        let key = spec.key();
        let cancel = control.cancel.clone();
        let session = Arc::clone(self);
        let spec = spec.clone();
        let thread = thread::spawn(move || session.run_task(&spec, control));
        TaskHandle {
            key,
            cancel,
            thread,
        }
    }

    fn wait_attached(&self, shared: &RunShared, cancel: &CancelToken) -> Completion {
        let mut done = shared.done.lock().expect("run result poisoned");
        loop {
            if let Some(result) = done.as_ref() {
                return Completion::Finished(Arc::clone(result));
            }
            if cancel.is_cancelled() && cancel != &shared.cancel {
                // This caller loses interest; the run continues for the
                // executor (and any other attached duplicates).
                return Completion::Detached;
            }
            let (guard, _timeout) = shared
                .finished
                .wait_timeout(done, Duration::from_millis(25))
                .expect("run result poisoned");
            done = guard;
        }
    }

    /// Executes with panic isolation and the optional deadline watchdog.
    fn execute_guarded(
        &self,
        spec: &TaskSpec,
        cancel: &CancelToken,
        progress: &ProgressSink,
    ) -> Result<Outcome, SessionError> {
        let Some(cached) = self.model(&spec.model) else {
            return Err(SessionError::UnknownModel(spec.model.clone()));
        };
        let budget = spec.budget_meter();
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                crate::run::execute(&cached.model, spec, cancel, progress, &budget)
            }))
            .unwrap_or(Err(SessionError::Panicked))
        };
        // Calls the budget meter actually interrupted become
        // `BudgetExceeded`; a run that finished before the breach was
        // observed keeps its full result. The breach is recorded by the
        // explore driver at a deterministic configuration count, so this
        // classification is thread-count-invariant.
        let classify_budget = |outcome: Result<Outcome, SessionError>| {
            let Some(breach) = budget.breach() else {
                return outcome;
            };
            let exceeded = |partial: Option<Box<Outcome>>| {
                Ok(Outcome::BudgetExceeded(BudgetExceededOutcome {
                    model: cached.name.clone(),
                    command: spec.command,
                    breach,
                    partial,
                }))
            };
            match outcome {
                Ok(outcome) if outcome.was_cancelled() => exceeded(Some(Box::new(outcome))),
                Err(SessionError::Cancelled) => exceeded(None),
                other => other,
            }
        };

        let Some(deadline) = spec.deadline else {
            return classify_budget(run());
        };

        // Watchdog: a scoped thread that sleeps until the deadline (or until
        // the run finishes) and then fires the run's cancel token. The run's
        // explorations observe the token at their next batch boundary and
        // return partial outcomes, which are wrapped as `TimedOut` below.
        let gate: Mutex<bool> = Mutex::new(false);
        let finished = Condvar::new();
        let expired = std::sync::atomic::AtomicBool::new(false);
        let outcome = thread::scope(|scope| {
            scope.spawn(|| {
                let mut done = gate.lock().expect("deadline gate poisoned");
                let mut remaining = deadline;
                loop {
                    if *done {
                        return;
                    }
                    let start = std::time::Instant::now();
                    let (guard, timeout) = finished
                        .wait_timeout(done, remaining)
                        .expect("deadline gate poisoned");
                    done = guard;
                    if *done {
                        return;
                    }
                    if timeout.timed_out() {
                        expired.store(true, std::sync::atomic::Ordering::SeqCst);
                        cancel.cancel();
                        return;
                    }
                    // Spurious wakeup: keep waiting out the remainder.
                    remaining = remaining.saturating_sub(start.elapsed());
                }
            });
            let outcome = run();
            *gate.lock().expect("deadline gate poisoned") = true;
            finished.notify_all();
            outcome
        });

        // A recorded breach takes precedence over the deadline: the driver
        // aborted at the budget boundary (deterministically), even if the
        // watchdog happened to expire in the same instant.
        if budget.breach().is_some() {
            return classify_budget(outcome);
        }
        if !expired.load(std::sync::atomic::Ordering::SeqCst) {
            return outcome;
        }
        // Only calls the deadline actually interrupted become `TimedOut`; a
        // run that completed in the same instant keeps its full result.
        let timed_out = |partial: Option<Box<Outcome>>| {
            Ok(Outcome::TimedOut(TimedOutOutcome {
                model: cached.name.clone(),
                command: spec.command,
                deadline,
                partial,
            }))
        };
        match outcome {
            Ok(outcome) if outcome.was_cancelled() => timed_out(Some(Box::new(outcome))),
            Err(SessionError::Cancelled) => timed_out(None),
            other => other,
        }
    }
}

/// Handle on a task started with [`Session::spawn`].
pub struct TaskHandle {
    key: TaskKey,
    cancel: CancelToken,
    thread: thread::JoinHandle<Completion>,
}

impl TaskHandle {
    /// The task's canonical key.
    pub fn key(&self) -> &TaskKey {
        &self.key
    }

    /// Fires the task's cancel token (see [`Session::run_task`] for what
    /// that means for executing vs. attached tasks).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Waits for the task and returns its completion.
    pub fn join(self) -> Completion {
        self.thread.join().expect("session task panicked")
    }
}

fn kind_of(model: &Model) -> &'static str {
    match model.source {
        ModelSource::Stg(_) => "stg",
        ModelSource::Tts(_) => "tts",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore::Extrapolation;

    const RACE: &str = "tts race\n\
         state s0 s0\n\
         state s1 bad\n\
         state s2 ok\n\
         state s3 done\n\
         initial s0\n\
         violation s1 \"slow overtook fast\"\n\
         trans s0 fast s2\n\
         trans s0 slow s1\n\
         trans s2 slow s3\n\
         trans s1 fast s3\n\
         delay fast [1,2]\n\
         delay slow [5,9]\n\
         property forbid-marked\n";

    #[test]
    fn submissions_differing_only_in_an_ignored_option_share_one_run() {
        let session = Session::new();
        let (cached, _) = session.add_model(RACE).unwrap();

        // `verify` ignores the zone abstraction mode, so the two specs
        // normalize to the same key and the second call is a memo hit.
        let a = TaskSpec::verify(&cached.hash);
        let b = TaskSpec::verify(&cached.hash).extrapolation(Extrapolation::None);
        assert_eq!(a.key(), b.key());
        let first = session.run(&a).unwrap();
        let second = session.run(&b).unwrap();
        assert_eq!(
            session.stats(),
            SessionStats {
                runs_executed: 1,
                runs_attached: 0,
                memo_hits: 1,
                store_hits: 0,
            }
        );
        assert_eq!(
            crate::render::document(&first),
            crate::render::document(&second)
        );

        // For `zones` the mode is load-bearing: distinct keys, distinct runs.
        let a = TaskSpec::zones(&cached.hash);
        let b = TaskSpec::zones(&cached.hash).extrapolation(Extrapolation::None);
        assert_ne!(a.key(), b.key());
        session.run(&a).unwrap();
        session.run(&b).unwrap();
        assert_eq!(session.stats().runs_executed, 3);
    }

    /// In-memory [`StoreHook`]: what a persistent store looks like to the
    /// session, minus the disk.
    #[derive(Default)]
    struct MapStore {
        results: Mutex<HashMap<String, crate::persist::StoredResult>>,
        models: Mutex<Vec<String>>,
        saves: std::sync::atomic::AtomicUsize,
    }

    impl crate::persist::StoreHook for MapStore {
        fn load_result(&self, key: &TaskKey) -> Option<crate::persist::StoredResult> {
            self.results.lock().unwrap().get(key.canonical()).cloned()
        }

        fn save_result(&self, _spec: &TaskSpec, key: &TaskKey, result: &TaskResult) {
            self.saves.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.results.lock().unwrap().insert(
                key.canonical().to_owned(),
                crate::persist::StoredResult {
                    text: result.text.clone(),
                    document: result.document.clone(),
                },
            );
        }

        fn save_model(&self, hash: &str, _text: &str) {
            self.models.lock().unwrap().push(hash.to_owned());
        }
    }

    #[test]
    fn store_hook_sees_models_and_results_and_answers_duplicates() {
        let store = Arc::new(MapStore::default());
        let session = Session::new();
        session.set_store_hook(Arc::clone(&store) as Arc<dyn crate::persist::StoreHook>);
        let (cached, _) = session.add_model(RACE).unwrap();
        assert_eq!(*store.models.lock().unwrap(), vec![cached.hash.clone()]);
        // Re-interning the same text is not a fresh intern: no second save.
        session.add_model(RACE).unwrap();
        assert_eq!(store.models.lock().unwrap().len(), 1);

        let spec = TaskSpec::verify(&cached.hash).with_trace(true);
        let first = match session.run_task(&spec, RunControl::default()) {
            Completion::Finished(result) => result,
            Completion::Detached => unreachable!(),
        };
        assert_eq!(store.saves.load(std::sync::atomic::Ordering::SeqCst), 1);
        // A duplicate in the same session hits the memo, not the store.
        session.run(&spec).unwrap();
        assert_eq!(session.stats().memo_hits, 1);
        assert_eq!(session.stats().store_hits, 0);

        // A fresh session with the same store: the duplicate is answered
        // from the store, byte-identical, with zero runs executed.
        let restarted = Session::new();
        restarted.set_store_hook(Arc::clone(&store) as Arc<dyn crate::persist::StoreHook>);
        restarted.add_model(RACE).unwrap();
        let replayed = match restarted.run_task(&spec, RunControl::default()) {
            Completion::Finished(result) => result,
            Completion::Detached => unreachable!(),
        };
        assert_eq!(restarted.stats().runs_executed, 0);
        assert_eq!(restarted.stats().store_hits, 1);
        assert_eq!(replayed.text, first.text);
        assert_eq!(replayed.document, first.document);
        let Ok(Outcome::Restored(restored)) = &replayed.outcome else {
            panic!("expected a restored outcome, got {:?}", replayed.outcome);
        };
        assert_eq!(restored.model, "race");
        // ... and the store hit is memoized: the next duplicate never
        // touches the store again.
        restarted.run(&spec).unwrap();
        assert_eq!(restarted.stats().memo_hits, 1);
        assert_eq!(restarted.stats().store_hits, 1);
    }

    #[test]
    fn partial_results_are_never_persisted() {
        let store = Arc::new(MapStore::default());
        let session = Session::new();
        session.set_store_hook(Arc::clone(&store) as Arc<dyn crate::persist::StoreHook>);
        // A model whose zone graph cannot complete within the deadline (the
        // tiny RACE model can finish before the fired token is even
        // observed, which would make this test race its own cancellation).
        let (cached, _) = session
            .add_model(include_str!("../../../models/ipcmos_2stage.stg"))
            .unwrap();
        // A pre-fired cancel token makes the run come back cancelled
        // (timed out here, via a microscopic deadline): not cacheable, not
        // persisted.
        let spec = TaskSpec::zones(&cached.hash).deadline(Duration::from_nanos(1));
        let control = RunControl::default();
        control.cancel.cancel();
        let _ = session.run_task(&spec, control);
        assert_eq!(store.saves.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert!(store.results.lock().unwrap().is_empty());
    }
}
