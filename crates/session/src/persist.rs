//! The persistence seam of a [`Session`](crate::Session): an embedder-owned
//! hook that sees every freshly interned model and every cacheable finished
//! result, and is consulted — after the in-memory memo misses — before a
//! task is executed.
//!
//! The session does not know about files; `transyt-store` implements this
//! trait over its content-addressed data dir, which is what makes duplicate
//! submissions dedupe **across server restarts**: the on-disk results are
//! keyed by the same normalized [`TaskKey`] as the memo.

use crate::session::TaskResult;
use crate::task::{TaskKey, TaskSpec};

/// A result loaded back from a [`StoreHook`]: the two canonical renderings,
/// byte-identical to the [`TaskResult`](crate::TaskResult) fields they were
/// saved from. The structured [`Outcome`](crate::Outcome) is not persisted;
/// a store hit surfaces as [`Outcome::Restored`](crate::Outcome::Restored)
/// carrying these bytes verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredResult {
    /// The canonical human-readable text.
    pub text: String,
    /// The canonical JSON document bytes.
    pub document: String,
}

/// Callbacks a [`Session`](crate::Session) makes into a persistent store
/// (installed with [`Session::set_store_hook`](crate::Session::set_store_hook)).
///
/// Contract:
///
/// * `load_result` must only return results previously handed to
///   `save_result` for the **same** key — the session trusts the bytes and
///   serves them as a completed task.
/// * `save_result` is invoked for cacheable results only (completed runs;
///   never cancelled or timed-out partials, which are also never memoized).
/// * Implementations must not call back into the session: the session lock
///   is held around `load_result` (see
///   [`Session::run_task`](crate::Session::run_task)), and `save_result` /
///   `save_model` run on the executing thread's hot path.
/// * Failures must be swallowed (log and return): persistence is best
///   effort and must never fail a verification run.
pub trait StoreHook: Send + Sync {
    /// Looks up a previously saved result for `key`. Called after the
    /// in-memory memo misses and before a run is scheduled.
    fn load_result(&self, key: &TaskKey) -> Option<StoredResult>;

    /// Persists a cacheable finished result under its key.
    fn save_result(&self, spec: &TaskSpec, key: &TaskKey, result: &TaskResult);

    /// Persists a freshly interned model text under its content hash.
    fn save_model(&self, hash: &str, text: &str);
}
