//! The canonical renderings of an [`Outcome`]: the human-readable text the
//! CLI prints and the machine-readable JSON document it writes for `--json`
//! (and the verification server serves).
//!
//! Both front ends go through these functions — and through
//! [`render_document`] for the final bytes — so a document fetched from a
//! server job is **byte-identical** to the file the CLI writes for the same
//! model and options (the property the golden tests and the CI `server` and
//! `api` jobs diff for).

use bench::json::Value;
use dbm::ZoneOutcome;
use stg::ReachReport;
use transyt::Verdict;
use tts::Bound;

use crate::outcome::{Outcome, RenderedTrace, ZoneWitness};

/// Renders a document exactly as the CLI writes it to a `--json` file (and
/// as the server serves it): compact JSON plus one trailing newline.
pub fn render_document(doc: &Value) -> String {
    doc.render() + "\n"
}

/// The document of a rendered timed trace (`"trace"` field of verify / zones
/// documents).
pub fn trace_document(trace: &RenderedTrace) -> Value {
    let steps: Vec<Value> = trace
        .steps
        .iter()
        .map(|step| {
            let mut doc = Value::object()
                .field("event", step.event.as_str())
                .field("state", step.state.as_str());
            if let Some(window) = step.window {
                doc = doc
                    .field("earliest", window.earliest.as_i64().max(0) as usize)
                    .field(
                        "latest",
                        match window.latest {
                            Bound::Finite(t) => Value::UInt(t.as_i64().max(0) as u128),
                            Bound::Infinite => Value::Str("inf".to_owned()),
                        },
                    );
            }
            doc
        })
        .collect();
    Value::object()
        .field("kind", trace.kind)
        .field("start", trace.start.as_str())
        .field("end", trace.end.as_str())
        .field("steps", steps)
}

/// The document of a `transyt verify` run.
pub fn verify_document(model: &str, verdict: &Verdict, trace: Option<&RenderedTrace>) -> Value {
    let report = verdict.report();
    let constraints: Vec<Value> = report
        .constraints
        .iter()
        .map(|c| Value::Str(c.to_string()))
        .collect();
    let mut doc = Value::object()
        .field(
            "verdict",
            match verdict {
                Verdict::Verified(_) => "verified",
                Verdict::Failed { .. } => "failed",
                Verdict::Inconclusive { .. } => "inconclusive",
            },
        )
        .field("refinements", report.refinements)
        .field("explored_states", report.explored_states)
        .field("constraints", constraints)
        .field("model", model);
    if let Some(trace) = trace {
        doc = doc.field("trace", trace_document(trace));
    }
    doc
}

/// Outcome of the goal search of a `transyt reach` run, for
/// [`reach_document`].
pub enum ReachGoal {
    /// No `--to` / `--trace` goal was given.
    None,
    /// A witness path was found; the fired labels in order.
    Found(Vec<String>),
    /// No reachable marking satisfies the goal.
    NotFound,
}

/// The document of a `transyt reach` run.
pub fn reach_document(model: &str, report: &ReachReport, states: usize, goal: &ReachGoal) -> Value {
    let doc = Value::object()
        .field("model", model)
        .field("markings", report.markings)
        .field("firings", report.firings)
        .field("deadlock_markings", report.deadlock_states.len())
        .field("states", states);
    match goal {
        ReachGoal::None => doc,
        ReachGoal::Found(labels) => {
            let steps: Vec<Value> = labels.iter().map(|l| Value::Str(l.clone())).collect();
            doc.field("path_found", true).field("path", steps)
        }
        ReachGoal::NotFound => doc
            .field("path_found", false)
            .field("path", Value::Array(Vec::new())),
    }
}

/// The document of a `transyt zones` run.
pub fn zones_document(model: &str, outcome: &ZoneOutcome, trace: Option<&RenderedTrace>) -> Value {
    let mut doc = Value::object().field("model", model);
    doc = match outcome {
        ZoneOutcome::Completed(report) => doc
            .field("configurations", report.configurations)
            .field("subsumed", report.subsumed_configurations)
            .field("alu_subsumed", report.alu_subsumed)
            .field("reachable_states", report.reachable_states.len())
            .field("violating_states", report.violating_states.len())
            .field("deadlock_states", report.deadlock_states.len())
            .field("extrapolated_zones", report.extrapolated_zones)
            .field("projected_clocks", report.projected_clocks)
            .field("local_bound_states", report.local_bound_states)
            .field("tightened_clock_bounds", report.tightened_clock_bounds)
            .field(
                "arena",
                Value::object()
                    .field("allocated", report.arena.allocated)
                    .field("reused", report.arena.reused)
                    .field("recycled", report.arena.recycled),
            )
            .field("completed", true),
        ZoneOutcome::LimitExceeded { explored, subsumed } => doc
            .field("configurations", *explored)
            .field("subsumed", *subsumed)
            .field("completed", false),
        ZoneOutcome::Cancelled { explored, subsumed } => doc
            .field("configurations", *explored)
            .field("subsumed", *subsumed)
            .field("completed", false)
            .field("cancelled", true),
    };
    if let Some(trace) = trace {
        doc = doc.field("trace", trace_document(trace));
    }
    doc
}

/// The JSON document of an [`Outcome`] — exactly the document the respective
/// CLI subcommand builds for `--json`.
pub fn document(outcome: &Outcome) -> Value {
    match outcome {
        Outcome::Verify(v) => verify_document(&v.model, &v.verdict, v.trace.as_ref()),
        Outcome::Reach(r) => {
            let goal = match &r.goal {
                None => ReachGoal::None,
                Some(goal) => match &goal.path {
                    Some(path) => ReachGoal::Found(path.labels.clone()),
                    None => ReachGoal::NotFound,
                },
            };
            reach_document(&r.model, &r.report, r.states, &goal)
        }
        Outcome::Zones(z) => {
            let trace = match &z.witness {
                Some(ZoneWitness::Found { trace, .. }) => Some(trace),
                _ => None,
            };
            zones_document(&z.model, &z.outcome, trace)
        }
        Outcome::TimedOut(t) => {
            let mut doc = Value::object()
                .field("model", t.model.as_str())
                .field("command", t.command.name())
                .field("timed_out", true)
                .field("deadline_ms", t.deadline.as_millis());
            if let Some(partial) = &t.partial {
                doc = doc.field("partial", document(partial));
            }
            doc
        }
        Outcome::BudgetExceeded(b) => {
            let mut doc = Value::object()
                .field("model", b.model.as_str())
                .field("command", b.command.name())
                .field("budget_exceeded", true)
                .field("resource", b.breach.resource.name())
                .field("used", b.breach.used)
                .field("budget", b.breach.limit);
            if let Some(partial) = &b.partial {
                doc = doc.field("partial", document(partial));
            }
            doc
        }
        // A restored result's real document is the stored bytes carried in
        // its `TaskResult`; this fallback rendering only exists so the
        // `Outcome` stays total over `render`.
        Outcome::Restored(r) => Value::object()
            .field("model", r.model.as_str())
            .field("command", r.command.name())
            .field("restored", true),
    }
}

fn summarise_zone_outcome(outcome: &ZoneOutcome, text: &mut String) {
    match outcome {
        ZoneOutcome::Completed(report) => {
            text.push_str(&format!(
                "timed state space: {} configurations ({} subsumed, {} beyond convex \
                 inclusion), {} reachable states, {} violating, {} deadlocked\n",
                report.configurations,
                report.subsumed_configurations,
                report.alu_subsumed,
                report.reachable_states.len(),
                report.violating_states.len(),
                report.deadlock_states.len()
            ));
            text.push_str(&format!(
                "zone abstraction: {} zones extrapolated, {} clocks projected, \
                 arena {} allocated / {} reused\n",
                report.extrapolated_zones,
                report.projected_clocks,
                report.arena.allocated,
                report.arena.reused
            ));
            text.push_str(&format!(
                "local bounds: {} states tightened, {} clock bounds below global\n",
                report.local_bound_states, report.tightened_clock_bounds
            ));
        }
        ZoneOutcome::LimitExceeded { explored, subsumed } => {
            text.push_str(&format!(
                "aborted: configuration limit exceeded after {explored} configurations \
                 ({subsumed} subsumed)\n"
            ));
        }
        ZoneOutcome::Cancelled { explored, subsumed } => {
            text.push_str(&format!(
                "cancelled after {explored} configurations ({subsumed} subsumed)\n"
            ));
        }
    }
}

/// The human-readable text of an [`Outcome`] — exactly what the respective
/// CLI subcommand prints to stdout.
pub fn text(outcome: &Outcome) -> String {
    let mut text = String::new();
    match outcome {
        Outcome::Verify(v) => {
            text.push_str(&format!("model: {} ({})\n", v.model, v.system));
            if v.no_property {
                text.push_str(
                    "note: the model declares no `property` directive; nothing to check\n",
                );
            }
            text.push_str(&format!("{}\n", v.verdict));
            text.push_str("relative-timing constraints:\n");
            text.push_str(&format!("{}\n", v.verdict.report().constraint_listing()));
            if let Some(rendered) = &v.trace {
                rendered.render(&mut text);
                if let Some(waveform) = rendered.waveform() {
                    text.push_str("waveform (earliest firing times):\n");
                    text.push_str(&waveform);
                }
            }
        }
        Outcome::Reach(r) => {
            text.push_str(&format!(
                "model: {} ({} places, {} transitions)\n",
                r.model, r.places, r.transitions
            ));
            text.push_str(&format!(
                "reachability graph: {} markings, {} firings, {} deadlock marking(s)\n",
                r.report.markings,
                r.report.firings,
                r.report.deadlock_states.len()
            ));
            if let Some(goal) = &r.goal {
                match &goal.path {
                    Some(path) => {
                        text.push_str(&format!("path to {}:\n", goal.description));
                        text.push_str(&format!("  {}\n", path.start));
                        for (label, marking) in &path.steps {
                            text.push_str(&format!("    --{label}--> {marking}\n"));
                        }
                        text.push_str(&format!("  end marking: {}\n", path.end));
                    }
                    None => {
                        text.push_str(&format!(
                            "no reachable marking matches: {}\n",
                            goal.description
                        ));
                    }
                }
            }
        }
        Outcome::Zones(z) => {
            text.push_str(&format!("model: {} ({})\n", z.model, z.system));
            summarise_zone_outcome(&z.outcome, &mut text);
            let goal_name = z.goal_name.unwrap_or("violating state");
            match &z.witness {
                None => {}
                Some(ZoneWitness::Found { trace, entries }) => {
                    text.push_str(&format!("symbolic timed trace to the first {goal_name}:\n"));
                    text.push_str(&format!("  {}\n", trace.start));
                    for (step, entry) in trace.steps.iter().zip(entries) {
                        let window_text =
                            step.window.map(|w| format!(" @ {w}")).unwrap_or_default();
                        text.push_str(&format!(
                            "    --{}{window_text}--> {}  (clock of {} on entry: {entry})\n",
                            step.event, step.state, step.event,
                        ));
                    }
                    text.push_str(&format!("  end state: {}\n", trace.end));
                    if let Some(waveform) = trace.waveform() {
                        text.push_str("waveform (earliest firing times):\n");
                        text.push_str(&waveform);
                    }
                }
                Some(ZoneWitness::Unreachable) => {
                    text.push_str(&format!("no {goal_name} is timed-reachable\n"));
                }
                Some(ZoneWitness::LimitExceeded { explored }) => {
                    text.push_str(&format!(
                        "witness search aborted after {explored} configurations\n"
                    ));
                }
                Some(ZoneWitness::Cancelled { explored }) => {
                    text.push_str(&format!(
                        "witness search cancelled after {explored} configurations\n"
                    ));
                }
            }
        }
        Outcome::TimedOut(t) => {
            text.push_str(&format!(
                "TIMED OUT: `{}` on `{}` exceeded its deadline of {:?}\n",
                t.command, t.model, t.deadline
            ));
            if let Some(partial) = &t.partial {
                text.push_str("partial results at the deadline:\n");
                text.push_str(&self::text(partial));
            }
        }
        Outcome::BudgetExceeded(b) => {
            text.push_str(&format!(
                "BUDGET EXCEEDED: `{}` on `{}` used {} {} against a budget of {}\n",
                b.command, b.model, b.breach.used, b.breach.resource, b.breach.limit
            ));
            if let Some(partial) = &b.partial {
                text.push_str("partial results at the budget breach:\n");
                text.push_str(&self::text(partial));
            }
        }
        // As with `document`: the stored text in the `TaskResult` is the
        // real rendering; this arm keeps `text` total.
        Outcome::Restored(r) => {
            text.push_str(&format!(
                "restored stored result of `{}` on `{}`\n",
                r.command, r.model
            ));
        }
    }
    text
}
