//! Structured task results: what a [`Session`](crate::Session) run returns.
//!
//! An [`Outcome`] carries the verification verdict, the exploration report
//! and the replayable trace as *data* — not pre-rendered strings — so
//! embedders can inspect them programmatically. The canonical text and JSON
//! renderings (what the CLI prints and the server serves, byte-identical
//! between the two) live in [`render`](crate::render).

use std::time::Duration;

use dbm::{path_firing_windows, FiringWindow, ZoneOutcome};
use ipcmos::{SimEvent, SimTrace};
use stg::ReachReport;
use transyt::Verdict;
use tts::{Bound, EventId, SignalEdge, StateId, Time, TimedTransitionSystem, TransitionSystem};

use crate::task::TaskCommand;

/// One step of a rendered timed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Name of the fired event.
    pub event: String,
    /// Name of the reached state.
    pub state: String,
    /// Absolute firing window (exact for witnesses, path-relative bounds for
    /// counterexamples), if timing information is available.
    pub window: Option<FiringWindow>,
}

/// A rendered timed trace: what `--trace` prints, in structured form so
/// tests can replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedTrace {
    /// `"counterexample"` (verification failed), `"witness"` (verified), or
    /// `"example-run"` (verdict inconclusive — the run proves nothing).
    pub kind: &'static str,
    /// Name of the start state.
    pub start: String,
    /// The steps, in firing order.
    pub steps: Vec<TraceStep>,
    /// Name of the end state (the violating state for counterexamples).
    pub end: String,
}

impl RenderedTrace {
    pub(crate) fn render(&self, out: &mut String) {
        out.push_str(&format!("{} trace:\n", self.kind));
        if self.kind == "example-run" {
            out.push_str(
                "  (verdict inconclusive — this run exercises the model but proves nothing)\n",
            );
        }
        out.push_str(&format!("  {}\n", self.start));
        for step in &self.steps {
            let window = step.window.map(|w| format!(" @ {w}")).unwrap_or_default();
            out.push_str(&format!("    --{}{window}--> {}\n", step.event, step.state));
        }
        out.push_str(&format!("  end state: {}\n", self.end));
    }

    /// Renders an ASCII waveform of the trace's signal edges (reusing the
    /// Fig. 7 renderer), or `None` when fewer than two steps carry a signal
    /// edge and a firing time.
    pub fn waveform(&self) -> Option<String> {
        let mut signals: Vec<String> = Vec::new();
        let mut events = Vec::new();
        for step in &self.steps {
            let Some(edge) = SignalEdge::parse(&step.event) else {
                continue;
            };
            let Some(window) = step.window else { continue };
            if !signals.iter().any(|s| s == edge.signal()) {
                signals.push(edge.signal().to_owned());
            }
            events.push(SimEvent {
                time: window.earliest,
                event: step.event.clone(),
            });
        }
        if events.len() < 2 {
            return None;
        }
        let trace = SimTrace::from_events(events);
        let names: Vec<&str> = signals.iter().map(String::as_str).collect();
        Some(trace.waveform(&names, &Default::default()))
    }
}

/// A deterministic as-soon-as-possible run of the timed system: every
/// enabled event is scheduled at its lower delay bound, the earliest
/// scheduled event fires (ties broken by event id), and the run stops after
/// `max_events` firings or at a deadlock. The witness `verify --trace`
/// prints for systems that pass verification.
pub fn asap_run(timed: &TimedTransitionSystem, max_events: usize) -> Vec<(EventId, StateId, Time)> {
    let ts = timed.underlying();
    let mut state = ts.initial_states()[0];
    let mut now = Time::ZERO;
    let mut enabled_since: Vec<(EventId, Time)> =
        ts.enabled(state).into_iter().map(|e| (e, now)).collect();
    let mut steps = Vec::new();
    for _ in 0..max_events {
        let Some((fire_time, event)) = enabled_since
            .iter()
            .map(|&(event, since)| (since + timed.delay(event).lower(), event))
            .min()
        else {
            break;
        };
        now = now.max(fire_time);
        let Some(&target) = ts.successors(state, event).first() else {
            break;
        };
        steps.push((event, target, now));
        let previously_enabled = ts.enabled(state);
        state = target;
        let now_enabled = ts.enabled(state);
        enabled_since.retain(|&(e, _)| now_enabled.contains(&e));
        for &e in &now_enabled {
            let fresh = e == event || !previously_enabled.contains(&e);
            if fresh {
                enabled_since.retain(|&(other, _)| other != e);
                enabled_since.push((e, now));
            } else if !enabled_since.iter().any(|&(other, _)| other == e) {
                enabled_since.push((e, now));
            }
        }
        enabled_since.sort_by_key(|&(e, _)| e);
    }
    steps
}

/// The trace `verify --trace` prints: the engine's counterexample when
/// verification failed (annotated with firing windows by replaying the path
/// through the zone semantics), a deterministic ASAP witness run when it
/// succeeded, and an `example-run` (explicitly *not* a witness — nothing was
/// proved) when the verdict is inconclusive.
pub fn trace_of_verdict(verdict: &Verdict, timed: &TimedTransitionSystem) -> RenderedTrace {
    let ts = timed.underlying();
    match verdict {
        Verdict::Failed { counterexample, .. } => {
            let trace = &counterexample.trace;
            let windows = path_firing_windows(timed, trace.start(), trace.steps());
            let steps = trace
                .steps()
                .iter()
                .enumerate()
                .map(|(i, &(event, target))| TraceStep {
                    event: ts.alphabet().name(event).to_owned(),
                    state: ts.state_name(target).to_owned(),
                    window: windows.as_ref().map(|w| w[i]),
                })
                .collect();
            RenderedTrace {
                kind: "counterexample",
                start: ts.state_name(trace.start()).to_owned(),
                steps,
                end: ts.state_name(trace.end_state()).to_owned(),
            }
        }
        _ => {
            let run = asap_run(timed, 40);
            let start = ts.initial_states()[0];
            let end = run.last().map_or(start, |&(_, state, _)| state);
            let steps = run
                .into_iter()
                .map(|(event, state, time)| TraceStep {
                    event: ts.alphabet().name(event).to_owned(),
                    state: ts.state_name(state).to_owned(),
                    window: Some(FiringWindow {
                        earliest: time,
                        latest: Bound::Finite(time),
                    }),
                })
                .collect();
            RenderedTrace {
                // An inconclusive verdict proved nothing: label the run so
                // neither a reader nor a JSON consumer mistakes it for a
                // certificate.
                kind: if matches!(verdict, Verdict::Verified(_)) {
                    "witness"
                } else {
                    "example-run"
                },
                start: ts.state_name(start).to_owned(),
                steps,
                end: ts.state_name(end).to_owned(),
            }
        }
    }
}

/// Checks that `ts` (the expanded model) and the verification verdict of a
/// rendered trace agree — used by the integration tests to replay what the
/// CLI printed, step by step, to the reported end state.
pub fn replay_rendered(trace: &RenderedTrace, ts: &TransitionSystem) -> Option<String> {
    // Resolve by names: walk the steps, requiring a transition with the
    // step's event name into a state with the step's state name.
    let mut current = ts.states().find(|&s| ts.state_name(s) == trace.start)?;
    for step in &trace.steps {
        let next = ts
            .transitions_from(current)
            .iter()
            .find(|&&(event, target)| {
                ts.alphabet().name(event) == step.event && ts.state_name(target) == step.state
            })
            .map(|&(_, target)| target)?;
        current = next;
    }
    let end = ts.state_name(current).to_owned();
    if end == trace.end {
        Some(end)
    } else {
        None
    }
}

/// Result of a `verify` task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The model's declared name.
    pub model: String,
    /// One-line summary of the underlying transition system (its `Display`).
    pub system: String,
    /// `true` when the model declares no `property` directive (there was
    /// nothing to check).
    pub no_property: bool,
    /// The engine's verdict, including the report and any counterexample.
    pub verdict: Verdict,
    /// The rendered trace, when the spec asked for one.
    pub trace: Option<RenderedTrace>,
}

/// A witness firing sequence of a `reach` goal search, rendered with marking
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachPath {
    /// Name of the start marking.
    pub start: String,
    /// `(transition label, reached marking name)` steps, in firing order.
    pub steps: Vec<(String, String)>,
    /// Name of the final marking.
    pub end: String,
    /// The fired transition labels, in order (what the JSON document lists).
    pub labels: Vec<String>,
}

/// The goal search of a `reach` task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachGoalOutcome {
    /// Human-readable description of the goal (e.g. ``first marking enabling
    /// `C+` ``).
    pub description: String,
    /// The witness path, or `None` when no reachable marking matches.
    pub path: Option<ReachPath>,
}

/// Result of a `reach` task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachOutcome {
    /// The model's declared name.
    pub model: String,
    /// Number of places of the net.
    pub places: usize,
    /// Number of transitions of the net.
    pub transitions: usize,
    /// The expansion report.
    pub report: ReachReport,
    /// Number of states of the expanded transition system.
    pub states: usize,
    /// The goal search, when the spec named one (`--to` or `--trace`).
    pub goal: Option<ReachGoalOutcome>,
}

/// The witness search of a `zones --trace` task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneWitness {
    /// A symbolic timed trace to the first goal state was found. `entries`
    /// aligns with `trace.steps`: the fired event's clock range on entry to
    /// the step's zone, pre-formatted (e.g. `[0, 4]` or `[2, inf)`).
    Found {
        /// The witness trace.
        trace: RenderedTrace,
        /// Clock-on-entry annotations, one per step.
        entries: Vec<String>,
    },
    /// The whole timed space was explored; no goal state is reachable.
    Unreachable,
    /// The witness search hit the configuration limit first.
    LimitExceeded {
        /// Configurations explored when the search aborted.
        explored: usize,
    },
    /// The witness search was cancelled.
    Cancelled {
        /// Configurations explored when the search stopped.
        explored: usize,
    },
}

/// Result of a `zones` task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZonesOutcome {
    /// The model's declared name.
    pub model: String,
    /// One-line summary of the underlying transition system (its `Display`).
    pub system: String,
    /// The exploration outcome (completed report, limit, or cancellation).
    pub outcome: ZoneOutcome,
    /// What the witness goal was: `"violating state"` when the model marks
    /// violations, `"deadlock state"` otherwise. Set iff a trace was asked
    /// for.
    pub goal_name: Option<&'static str>,
    /// The witness search result, when the spec asked for a trace.
    pub witness: Option<ZoneWitness>,
}

/// A task stopped by its [`TaskSpec::deadline`](crate::TaskSpec::deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOutOutcome {
    /// The model's declared name.
    pub model: String,
    /// The command that timed out.
    pub command: TaskCommand,
    /// The deadline that expired.
    pub deadline: Duration,
    /// The partial outcome the cancelled run still produced (e.g. a `zones`
    /// report with the configurations explored so far), when it produced
    /// one.
    pub partial: Option<Box<Outcome>>,
}

/// A task stopped by one of its resource budgets
/// ([`TaskSpec::max_configs`](crate::TaskSpec::max_configs) /
/// [`TaskSpec::max_zone_bytes`](crate::TaskSpec::max_zone_bytes)).
///
/// Unlike a timeout, a budget abort is *deterministic*: the driver notices
/// the breach at a fixed point of its single-threaded merge, so the partial
/// outcome — configuration counts included — is identical for every thread
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceededOutcome {
    /// The model's declared name.
    pub model: String,
    /// The command whose budget was exhausted.
    pub command: TaskCommand,
    /// The breach the meter recorded: which resource, usage, ceiling.
    pub breach: explore::BudgetBreach,
    /// The partial outcome the cancelled run still produced (e.g. a `zones`
    /// report with the configurations explored so far), when it produced
    /// one.
    pub partial: Option<Box<Outcome>>,
}

/// A completed task served from a persistent store
/// ([`StoreHook`](crate::StoreHook)) instead of a run. The structured
/// outcome is not persisted — only the canonical renderings are — so a
/// store hit carries its saved `text` / `document` bytes verbatim in the
/// surrounding [`TaskResult`](crate::TaskResult) and this marker in place
/// of the structured data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredOutcome {
    /// The model name (the interned name, or the content hash when the
    /// model itself is no longer loaded).
    pub model: String,
    /// The command the stored result answers.
    pub command: TaskCommand,
}

/// What one [`Session`](crate::Session) task produced: structured data, not
/// strings. Render with [`render::text`](crate::render::text) and
/// [`render::document`](crate::render::document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A `verify` result.
    Verify(VerifyOutcome),
    /// A `reach` result.
    Reach(ReachOutcome),
    /// A `zones` result.
    Zones(ZonesOutcome),
    /// The task's deadline expired before the run finished.
    TimedOut(TimedOutOutcome),
    /// A resource budget of the task was exhausted before the run finished.
    BudgetExceeded(BudgetExceededOutcome),
    /// A completed result restored from a persistent store; the canonical
    /// renderings live in the surrounding
    /// [`TaskResult`](crate::TaskResult).
    Restored(RestoredOutcome),
}

impl Outcome {
    /// The model name the outcome describes.
    pub fn model(&self) -> &str {
        match self {
            Outcome::Verify(v) => &v.model,
            Outcome::Reach(r) => &r.model,
            Outcome::Zones(z) => &z.model,
            Outcome::TimedOut(t) => &t.model,
            Outcome::BudgetExceeded(b) => &b.model,
            Outcome::Restored(r) => &r.model,
        }
    }

    /// Returns `true` when the run was stopped by a fired cancel token (the
    /// result is a partial document, not a verdict). Used to decide whether
    /// an outcome may be memoized, and by the deadline monitor to tell a
    /// timed-out run from one that completed in the same instant.
    pub fn was_cancelled(&self) -> bool {
        match self {
            Outcome::Verify(v) => matches!(
                &v.verdict,
                Verdict::Inconclusive { reason, .. } if reason == "verification cancelled"
            ),
            Outcome::Reach(_) => false,
            Outcome::Zones(z) => {
                matches!(z.outcome, ZoneOutcome::Cancelled { .. })
                    || matches!(z.witness, Some(ZoneWitness::Cancelled { .. }))
            }
            Outcome::TimedOut(_) => true,
            Outcome::BudgetExceeded(_) => true,
            // A store only ever holds completed runs.
            Outcome::Restored(_) => false,
        }
    }
}
