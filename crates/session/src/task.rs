//! Typed task specifications and their canonical keys.
//!
//! A [`TaskSpec`] describes one run of the tool — which command, against
//! which interned model, with which options — and a [`TaskKey`] is its
//! canonical fingerprint: the model's content hash plus the *normalized*
//! options (per-command default limits resolved, options the command ignores
//! erased). Two specs with the same key are guaranteed to produce the same
//! result document, which is what lets a [`Session`](crate::Session)
//! deduplicate identical submissions into one underlying run.

use std::fmt;
use std::time::Duration;

use explore::{
    Bounds, BudgetMeter, CancelToken, ExploreSpec, Extrapolation, ProgressSink, Subsumption,
};

/// The commands a [`Session`](crate::Session) can run. (`table1` and
/// `export` are CLI conveniences built on other crates, not session tasks.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskCommand {
    /// The relative-timing verification engine (`transyt verify`).
    Verify,
    /// Untimed STG reachability (`transyt reach`).
    Reach,
    /// The conventional zone-graph exploration (`transyt zones`).
    Zones,
}

impl TaskCommand {
    /// The command's wire name: `verify`, `reach` or `zones`.
    pub fn name(self) -> &'static str {
        match self {
            TaskCommand::Verify => "verify",
            TaskCommand::Reach => "reach",
            TaskCommand::Zones => "zones",
        }
    }

    /// Parses a wire name back into a command.
    pub fn parse(name: &str) -> Option<TaskCommand> {
        match name {
            "verify" => Some(TaskCommand::Verify),
            "reach" => Some(TaskCommand::Reach),
            "zones" => Some(TaskCommand::Zones),
            _ => None,
        }
    }
}

impl fmt::Display for TaskCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The default `--limit` of `transyt reach` (markings).
pub const REACH_DEFAULT_LIMIT: usize = 100_000;

/// The default `--limit` of `transyt zones` (configurations). Deliberately
/// lower than the library default: the zone graph blows up with pipeline
/// depth (the paper's motivation), and an interactive tool should abort
/// early; raise it with `--limit`.
pub const ZONES_DEFAULT_LIMIT: usize = 50_000;

/// One task: a command, the content hash of the model to run it against, and
/// the options. Construct with the builder methods, or lower textual
/// parameters (CLI flags, server query strings) through [`TaskSpec::parse`]
/// so both front ends share one set of names, defaults and validity checks.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use transyt_session::{Subsumption, TaskSpec};
///
/// let spec = TaskSpec::zones("0011223344556677")
///     .threads(4)
///     .subsumption(Subsumption::Exact)
///     .with_trace(true)
///     .limit(80_000)
///     .deadline(Duration::from_secs(30));
/// assert_eq!(spec.key().canonical(),
///     "model=0011223344556677 command=zones threads=4 subsumption=exact \
///      extrapolation=lu-active bounds=local trace=yes limit=80000 to=- \
///      deadline=30000ms max-configs=- max-zone-bytes=-");
///
/// // Identical submissions — however they were spelled — share a key (the
/// // legacy `off` spelling normalizes to `exact`).
/// let parsed = TaskSpec::parse("zones", &[
///     ("threads".into(), "4".into()),
///     ("subsumption".into(), "off".into()),
///     ("trace".into(), "true".into()),
///     ("limit".into(), "80000".into()),
///     ("timeout".into(), "30".into()),
/// ]).unwrap().for_model("0011223344556677");
/// assert_eq!(parsed.key(), spec.key());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Content hash of the interned model to run against.
    pub model: String,
    /// The command to run.
    pub command: TaskCommand,
    /// Worker threads for every exploration (default 1; any value produces
    /// identical output).
    pub threads: usize,
    /// Zone subsumption policy (`zones` only; default
    /// [`Subsumption::Alu`]).
    pub subsumption: Subsumption,
    /// Zone abstraction mode (`zones` only; default
    /// [`Extrapolation::LuActive`]).
    pub extrapolation: Extrapolation,
    /// LU bound vectors feeding the zone abstraction (`zones` only; default
    /// [`Bounds::Local`]).
    pub bounds: Bounds,
    /// Produce a witness / counterexample trace.
    pub trace: bool,
    /// Exploration size limit (default per command).
    pub limit: Option<usize>,
    /// Target label for `reach --to LABEL`.
    pub to_label: Option<String>,
    /// Wall-clock deadline: when it expires the run's cancel token fires and
    /// the outcome is [`Outcome::TimedOut`](crate::Outcome::TimedOut).
    pub deadline: Option<Duration>,
    /// Configuration budget (`reach` and `zones`): the exploration is
    /// cancelled deterministically once it expands more configurations than
    /// this, and the outcome is
    /// [`Outcome::BudgetExceeded`](crate::Outcome::BudgetExceeded).
    pub max_configs: Option<usize>,
    /// Zone-memory budget in bytes (`zones` only): the exploration is
    /// cancelled deterministically once the interner has committed more
    /// distinct-zone bytes than this.
    pub max_zone_bytes: Option<usize>,
}

/// A malformed or inconsistent task parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl TaskSpec {
    /// A spec with the command's defaults (the unspecified-flag defaults of
    /// the CLI and the omitted-parameter defaults of the server alike).
    pub fn new(command: TaskCommand, model_hash: impl Into<String>) -> TaskSpec {
        TaskSpec {
            model: model_hash.into(),
            command,
            threads: 1,
            subsumption: Subsumption::default(),
            extrapolation: Extrapolation::default(),
            bounds: Bounds::default(),
            trace: false,
            limit: None,
            to_label: None,
            deadline: None,
            max_configs: None,
            max_zone_bytes: None,
        }
    }

    /// A `verify` spec with default options.
    pub fn verify(model_hash: impl Into<String>) -> TaskSpec {
        TaskSpec::new(TaskCommand::Verify, model_hash)
    }

    /// A `reach` spec with default options.
    pub fn reach(model_hash: impl Into<String>) -> TaskSpec {
        TaskSpec::new(TaskCommand::Reach, model_hash)
    }

    /// A `zones` spec with default options.
    pub fn zones(model_hash: impl Into<String>) -> TaskSpec {
        TaskSpec::new(TaskCommand::Zones, model_hash)
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> TaskSpec {
        self.threads = threads;
        self
    }

    /// Selects the zone subsumption policy.
    #[must_use]
    pub fn subsumption(mut self, policy: Subsumption) -> TaskSpec {
        self.subsumption = policy;
        self
    }

    /// Selects the zone abstraction mode.
    #[must_use]
    pub fn extrapolation(mut self, mode: Extrapolation) -> TaskSpec {
        self.extrapolation = mode;
        self
    }

    /// Selects the LU bound vectors of the zone abstraction.
    #[must_use]
    pub fn bounds(mut self, bounds: Bounds) -> TaskSpec {
        self.bounds = bounds;
        self
    }

    /// Requests a witness / counterexample trace.
    #[must_use]
    pub fn with_trace(mut self, on: bool) -> TaskSpec {
        self.trace = on;
        self
    }

    /// Sets the exploration size limit.
    #[must_use]
    pub fn limit(mut self, limit: usize) -> TaskSpec {
        self.limit = Some(limit);
        self
    }

    /// Sets the `reach` goal label.
    #[must_use]
    pub fn to(mut self, label: impl Into<String>) -> TaskSpec {
        self.to_label = Some(label.into());
        self
    }

    /// Arms a wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> TaskSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the configuration budget.
    #[must_use]
    pub fn max_configs(mut self, budget: usize) -> TaskSpec {
        self.max_configs = Some(budget);
        self
    }

    /// Sets the zone-memory budget in bytes.
    #[must_use]
    pub fn max_zone_bytes(mut self, budget: usize) -> TaskSpec {
        self.max_zone_bytes = Some(budget);
        self
    }

    /// Rebinds the spec to another interned model.
    #[must_use]
    pub fn for_model(mut self, model_hash: impl Into<String>) -> TaskSpec {
        self.model = model_hash.into();
        self
    }

    /// The parameter names `command` accepts — the single source of truth
    /// behind the CLI's per-subcommand allowed flag lists and the server's
    /// query-string validation.
    pub fn allowed_params(command: TaskCommand) -> &'static [&'static str] {
        match command {
            TaskCommand::Verify => &["threads", "trace", "timeout"],
            TaskCommand::Reach => &["threads", "trace", "to", "limit", "timeout", "max-configs"],
            TaskCommand::Zones => &[
                "threads",
                "subsumption",
                "extrapolation",
                "bounds",
                "trace",
                "limit",
                "timeout",
                "max-configs",
                "max-zone-bytes",
            ],
        }
    }

    /// Lowers textual `(name, value)` parameters into a spec: the one place
    /// where option names, defaults and per-command validity are defined.
    /// The CLI lowers its flags (stripped of `--`) through this and the
    /// server its query-string parameters, so the two can never drift.
    ///
    /// The model hash is not a parameter; bind it with
    /// [`for_model`](Self::for_model).
    ///
    /// # Errors
    ///
    /// [`SpecError`] for unknown commands, parameters the command does not
    /// accept, and malformed values.
    pub fn parse(command: &str, params: &[(String, String)]) -> Result<TaskSpec, SpecError> {
        let command = TaskCommand::parse(command).ok_or_else(|| {
            SpecError(format!(
                "unknown command `{command}` (use verify, reach or zones)"
            ))
        })?;
        let allowed = TaskSpec::allowed_params(command);
        let mut spec = TaskSpec::new(command, String::new());
        for (name, value) in params {
            if !allowed.contains(&name.as_str()) {
                return Err(SpecError(format!(
                    "`{command}` does not accept `{name}` (allowed: {})",
                    allowed.join(", ")
                )));
            }
            match name.as_str() {
                "threads" => {
                    spec.threads = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad `threads` value `{value}`")))?;
                }
                "subsumption" => {
                    spec.subsumption = Subsumption::parse(value).ok_or_else(|| {
                        SpecError(format!(
                            "bad `subsumption` value `{value}` (use exact|inclusion|alu)"
                        ))
                    })?;
                }
                "extrapolation" => {
                    spec.extrapolation = Extrapolation::parse(value).ok_or_else(|| {
                        SpecError(format!(
                            "bad `extrapolation` value `{value}` (use none|lu|lu-active)"
                        ))
                    })?;
                }
                "bounds" => {
                    spec.bounds = Bounds::parse(value).ok_or_else(|| {
                        SpecError(format!("bad `bounds` value `{value}` (use global|local)"))
                    })?;
                }
                "trace" => {
                    spec.trace = match value.as_str() {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(SpecError(format!(
                                "bad `trace` value `{other}` (use true|false)"
                            )))
                        }
                    };
                }
                "limit" => {
                    spec.limit = Some(
                        value
                            .parse()
                            .map_err(|_| SpecError(format!("bad `limit` value `{value}`")))?,
                    );
                }
                "to" => spec.to_label = Some(value.clone()),
                "max-configs" => {
                    spec.max_configs =
                        Some(value.parse().ok().filter(|&b| b > 0).ok_or_else(|| {
                            SpecError(format!("bad `max-configs` value `{value}`"))
                        })?);
                }
                "max-zone-bytes" => {
                    spec.max_zone_bytes =
                        Some(value.parse().ok().filter(|&b| b > 0).ok_or_else(|| {
                            SpecError(format!("bad `max-zone-bytes` value `{value}`"))
                        })?);
                }
                "timeout" => {
                    let seconds: u64 = value
                        .parse()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or_else(|| SpecError(format!("bad `timeout` value `{value}`")))?;
                    spec.deadline = Some(Duration::from_secs(seconds));
                }
                _ => unreachable!("parameter validated against the allowed list"),
            }
        }
        Ok(spec)
    }

    /// Raises the spec back into the textual `(name, value)` parameters that
    /// [`parse`](Self::parse) lowers — the journaling / wire form. For a
    /// spec that came through `parse`, `parse(command.name(), &to_params())`
    /// rebinds to an equal spec (sub-second deadlines are the one lossy
    /// corner: `timeout` is whole seconds on the wire, so a deadline built
    /// in code is rounded down, minimum 1s).
    pub fn to_params(&self) -> Vec<(String, String)> {
        let allowed = TaskSpec::allowed_params(self.command);
        let mut params = vec![("threads".to_owned(), self.threads.to_string())];
        if allowed.contains(&"subsumption") {
            params.push(("subsumption".to_owned(), self.subsumption.name().to_owned()));
        }
        if allowed.contains(&"extrapolation") {
            params.push((
                "extrapolation".to_owned(),
                self.extrapolation.name().to_owned(),
            ));
        }
        if allowed.contains(&"bounds") {
            params.push(("bounds".to_owned(), self.bounds.name().to_owned()));
        }
        if self.trace {
            params.push(("trace".to_owned(), "true".to_owned()));
        }
        if let (true, Some(limit)) = (allowed.contains(&"limit"), self.limit) {
            params.push(("limit".to_owned(), limit.to_string()));
        }
        if let (true, Some(label)) = (allowed.contains(&"to"), &self.to_label) {
            params.push(("to".to_owned(), label.clone()));
        }
        if let Some(deadline) = self.deadline {
            params.push(("timeout".to_owned(), deadline.as_secs().max(1).to_string()));
        }
        if let (true, Some(budget)) = (allowed.contains(&"max-configs"), self.max_configs) {
            params.push(("max-configs".to_owned(), budget.to_string()));
        }
        if let (true, Some(budget)) = (allowed.contains(&"max-zone-bytes"), self.max_zone_bytes) {
            params.push(("max-zone-bytes".to_owned(), budget.to_string()));
        }
        params
    }

    /// The exploration size limit the run will actually use: the explicit
    /// limit, or the command's default.
    pub fn effective_limit(&self) -> Option<usize> {
        match self.command {
            TaskCommand::Verify => None,
            TaskCommand::Reach => Some(self.limit.unwrap_or(REACH_DEFAULT_LIMIT)),
            TaskCommand::Zones => Some(self.limit.unwrap_or(ZONES_DEFAULT_LIMIT)),
        }
    }

    /// The resource budgets the run will actually enforce, as
    /// `(max_configs, max_zone_bytes)`: budgets the command ignores are
    /// erased (`max_configs` outside `reach`/`zones`, `max_zone_bytes`
    /// outside `zones`), mirroring [`allowed_params`](Self::allowed_params).
    pub fn effective_budgets(&self) -> (Option<usize>, Option<usize>) {
        let allowed = TaskSpec::allowed_params(self.command);
        (
            self.max_configs
                .filter(|_| allowed.contains(&"max-configs")),
            self.max_zone_bytes
                .filter(|_| allowed.contains(&"max-zone-bytes")),
        )
    }

    /// A live [`BudgetMeter`] armed with the spec's
    /// [`effective_budgets`](Self::effective_budgets) — inert when the spec
    /// sets none. The executing session keeps a clone to classify a
    /// cancelled run as a budget abort.
    pub fn budget_meter(&self) -> BudgetMeter {
        let (max_configs, max_zone_bytes) = self.effective_budgets();
        BudgetMeter::new(max_configs, max_zone_bytes)
    }

    /// Lowers the spec into the [`ExploreSpec`] every exploration-backed
    /// command consumes — the single point where session options become
    /// engine options. The limit is the command's
    /// [`effective_limit`](Self::effective_limit); the run's cancel token,
    /// progress sink and budget meter are supplied by the executing session
    /// (the meter via [`budget_meter`](Self::budget_meter), so the session
    /// can observe a recorded breach afterwards).
    pub fn explore_spec(
        &self,
        cancel: CancelToken,
        progress: ProgressSink,
        budget: BudgetMeter,
    ) -> ExploreSpec {
        ExploreSpec {
            threads: self.threads,
            subsumption: self.subsumption,
            limit: self.effective_limit(),
            extrapolation: self.extrapolation,
            bounds: self.bounds,
            cancel,
            progress,
            budget,
        }
    }

    /// The canonical key of this task: model hash + normalized options.
    /// Options the command ignores are erased and default limits resolved,
    /// so two submissions that would produce the same document — however
    /// they were spelled — share a key.
    pub fn key(&self) -> TaskKey {
        let subsumption = match self.command {
            TaskCommand::Zones => self.subsumption.name(),
            _ => "-",
        };
        let extrapolation = match self.command {
            TaskCommand::Zones => self.extrapolation.name(),
            _ => "-",
        };
        let bounds = match self.command {
            TaskCommand::Zones => self.bounds.name(),
            _ => "-",
        };
        let limit = match self.effective_limit() {
            Some(limit) => limit.to_string(),
            None => "-".to_owned(),
        };
        let to = match (self.command, &self.to_label) {
            (TaskCommand::Reach, Some(label)) => label.as_str(),
            _ => "-",
        };
        let deadline = match self.deadline {
            Some(deadline) => format!("{}ms", deadline.as_millis()),
            None => "none".to_owned(),
        };
        let erased = |budget: Option<usize>| match budget {
            Some(budget) => budget.to_string(),
            None => "-".to_owned(),
        };
        let (max_configs, max_zone_bytes) = self.effective_budgets();
        let max_configs = erased(max_configs);
        let max_zone_bytes = erased(max_zone_bytes);
        TaskKey {
            canonical: format!(
                "model={} command={} threads={} subsumption={subsumption} \
                 extrapolation={extrapolation} bounds={bounds} trace={} limit={limit} \
                 to={to} deadline={deadline} max-configs={max_configs} \
                 max-zone-bytes={max_zone_bytes}",
                self.model,
                self.command,
                self.threads,
                if self.trace { "yes" } else { "no" },
            ),
        }
    }
}

/// The canonical identity of a task: equal keys mean "the same run" — the
/// handle the [`Session`](crate::Session) deduplicates on, the server
/// batches on and caches by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskKey {
    canonical: String,
}

impl TaskKey {
    /// The canonical, human-readable form (model hash + normalized options).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// A compact 16-hex-digit FNV-1a fingerprint of the canonical form, for
    /// logs and job listings.
    pub fn fingerprint(&self) -> String {
        crate::session::content_hash(&self.canonical)
    }
}

/// `Display` prints the fingerprint (the canonical form is available through
/// [`TaskKey::canonical`]).
impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_normalize_into_the_key() {
        // An explicit default limit and the implicit default share a key.
        let explicit = TaskSpec::zones("abc").limit(ZONES_DEFAULT_LIMIT);
        let implicit = TaskSpec::zones("abc");
        assert_eq!(explicit.key(), implicit.key());
        assert_ne!(explicit.key(), TaskSpec::zones("abc").limit(10).key());

        // Options the command ignores are erased: subsumption is
        // meaningless outside `zones`.
        let a = TaskSpec::verify("abc").subsumption(Subsumption::Exact);
        let b = TaskSpec::verify("abc");
        assert_eq!(a.key(), b.key());
        let a = TaskSpec::zones("abc").subsumption(Subsumption::Exact);
        let b = TaskSpec::zones("abc");
        assert_ne!(a.key(), b.key());
        // Every policy is its own run for `zones` — alu and inclusion
        // explore different configuration sets even though verdicts agree.
        let alu = TaskSpec::zones("abc").subsumption(Subsumption::Alu);
        let inclusion = TaskSpec::zones("abc").subsumption(Subsumption::Inclusion);
        assert_ne!(alu.key(), inclusion.key());
        // ... while verify jobs differing only in subsumption share one.
        let a = TaskSpec::verify("abc").subsumption(Subsumption::Alu);
        let b = TaskSpec::verify("abc").subsumption(Subsumption::Inclusion);
        assert_eq!(a.key(), b.key());

        // Same for the abstraction mode: meaningful for `zones` only.
        let a = TaskSpec::verify("abc").extrapolation(Extrapolation::None);
        let b = TaskSpec::verify("abc");
        assert_eq!(a.key(), b.key());
        let a = TaskSpec::zones("abc").extrapolation(Extrapolation::None);
        let b = TaskSpec::zones("abc");
        assert_ne!(a.key(), b.key());

        // Same for the bounds choice: meaningful for `zones` only.
        let a = TaskSpec::verify("abc").bounds(Bounds::Global);
        let b = TaskSpec::verify("abc");
        assert_eq!(a.key(), b.key());
        let a = TaskSpec::zones("abc").bounds(Bounds::Global);
        let b = TaskSpec::zones("abc");
        assert_ne!(a.key(), b.key());

        // Different models never collide.
        assert_ne!(TaskSpec::verify("abc").key(), TaskSpec::verify("abd").key());
        assert_eq!(TaskSpec::verify("abc").key().fingerprint().len(), 16);
    }

    #[test]
    fn budgets_are_erased_where_the_command_ignores_them() {
        // `verify` accepts no budgets: a stray builder call never splits the
        // key (mirroring subsumption erasure above).
        let a = TaskSpec::verify("abc").max_configs(10).max_zone_bytes(10);
        let b = TaskSpec::verify("abc");
        assert_eq!(a.key(), b.key());
        assert!(a.budget_meter().is_inert());
        // `reach` takes max-configs but not max-zone-bytes.
        let a = TaskSpec::reach("abc").max_zone_bytes(10);
        let b = TaskSpec::reach("abc");
        assert_eq!(a.key(), b.key());
        assert_ne!(
            TaskSpec::reach("abc").max_configs(10).key(),
            TaskSpec::reach("abc").key()
        );
        // `zones` takes both, and each budget is its own run.
        assert_ne!(
            TaskSpec::zones("abc").max_configs(10).key(),
            TaskSpec::zones("abc").key()
        );
        assert_ne!(
            TaskSpec::zones("abc").max_zone_bytes(10).key(),
            TaskSpec::zones("abc").max_zone_bytes(11).key()
        );
        assert!(!TaskSpec::zones("abc")
            .max_configs(10)
            .budget_meter()
            .is_inert());
    }

    #[test]
    fn to_params_round_trips_through_parse() {
        let specs = [
            TaskSpec::verify("aa"),
            TaskSpec::verify("aa").threads(3).with_trace(true),
            TaskSpec::verify("aa").deadline(Duration::from_secs(7)),
            TaskSpec::reach("aa").to("C+").limit(42).max_configs(5_000),
            TaskSpec::zones("aa")
                .subsumption(Subsumption::Exact)
                .extrapolation(Extrapolation::None)
                .bounds(Bounds::Global)
                .limit(9)
                .with_trace(true)
                .deadline(Duration::from_secs(30))
                .max_configs(5_000)
                .max_zone_bytes(1 << 20),
        ];
        for spec in specs {
            let reparsed = TaskSpec::parse(spec.command.name(), &spec.to_params())
                .unwrap()
                .for_model(&spec.model);
            assert_eq!(reparsed, spec);
        }
        // The lossy corner: sub-second deadlines round to whole seconds on
        // the wire (never to zero, which `parse` rejects).
        let sub_second = TaskSpec::verify("aa").deadline(Duration::from_millis(250));
        let reparsed = TaskSpec::parse("verify", &sub_second.to_params())
            .unwrap()
            .for_model("aa");
        assert_eq!(reparsed.deadline, Some(Duration::from_secs(1)));
    }

    #[test]
    fn parse_checks_names_values_and_commands() {
        let pair = |name: &str, value: &str| (name.to_owned(), value.to_owned());
        assert!(TaskSpec::parse("table1", &[]).is_err());
        assert!(TaskSpec::parse("verify", &[pair("subsumption", "on")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("threads", "x")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("trace", "maybe")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("extrapolation", "fancy")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("subsumption", "fancy")]).is_err());
        let spec = TaskSpec::parse("zones", &[pair("subsumption", "inclusion")]).unwrap();
        assert_eq!(spec.subsumption, Subsumption::Inclusion);
        // The legacy boolean spellings map onto the policies they meant.
        let spec = TaskSpec::parse("zones", &[pair("subsumption", "on")]).unwrap();
        assert_eq!(spec.subsumption, Subsumption::Inclusion);
        let spec = TaskSpec::parse("zones", &[pair("subsumption", "off")]).unwrap();
        assert_eq!(spec.subsumption, Subsumption::Exact);
        assert!(TaskSpec::parse("verify", &[pair("extrapolation", "lu")]).is_err());
        let spec = TaskSpec::parse("zones", &[pair("extrapolation", "none")]).unwrap();
        assert_eq!(spec.extrapolation, Extrapolation::None);
        assert!(TaskSpec::parse("zones", &[pair("bounds", "fancy")]).is_err());
        assert!(TaskSpec::parse("verify", &[pair("bounds", "global")]).is_err());
        let spec = TaskSpec::parse("zones", &[pair("bounds", "global")]).unwrap();
        assert_eq!(spec.bounds, Bounds::Global);
        let spec = TaskSpec::parse("zones", &[]).unwrap();
        assert_eq!(spec.bounds, Bounds::Local);
        assert!(TaskSpec::parse("verify", &[pair("timeout", "0")]).is_err());
        // Budgets: per-command validity and value checks.
        assert!(TaskSpec::parse("verify", &[pair("max-configs", "5")]).is_err());
        assert!(TaskSpec::parse("reach", &[pair("max-zone-bytes", "5")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("max-configs", "0")]).is_err());
        assert!(TaskSpec::parse("zones", &[pair("max-zone-bytes", "x")]).is_err());
        let spec = TaskSpec::parse(
            "zones",
            &[
                pair("max-configs", "5000"),
                pair("max-zone-bytes", "1048576"),
            ],
        )
        .unwrap();
        assert_eq!(spec.max_configs, Some(5_000));
        assert_eq!(spec.max_zone_bytes, Some(1 << 20));

        let spec = TaskSpec::parse(
            "reach",
            &[pair("to", "C+"), pair("limit", "7"), pair("timeout", "5")],
        )
        .unwrap()
        .for_model("ffff");
        assert_eq!(spec.command, TaskCommand::Reach);
        assert_eq!(spec.to_label.as_deref(), Some("C+"));
        assert_eq!(spec.effective_limit(), Some(7));
        assert_eq!(spec.deadline, Some(Duration::from_secs(5)));
        assert_eq!(spec.model, "ffff");
    }
}
