//! Task execution: lowering a [`TaskSpec`] onto the verification stack and
//! collecting the result into an [`Outcome`].
//!
//! This is the code that used to live inside `transyt_cli::commands` —
//! pulled below the rendering layer so the CLI, the server and embedders all
//! run through exactly one implementation (and therefore produce
//! byte-identical documents).

use dbm::{
    find_witness, FiringWindow, WitnessGoal, WitnessOutcome, ZoneExplorationOptions, ZoneOutcome,
};
use explore::{BudgetMeter, CancelToken, ProgressSink};
use stg::{ExpandOptions, Marking, Stg};
use transyt::VerifyOptions;

use crate::format::{Model, ModelSource};
use crate::outcome::{
    trace_of_verdict, Outcome, ReachGoalOutcome, ReachOutcome, ReachPath, RenderedTrace, TraceStep,
    VerifyOutcome, ZoneWitness, ZonesOutcome,
};
use crate::session::SessionError;
use crate::task::{TaskCommand, TaskSpec};

/// Runs `spec` against the parsed model (the model must be the one the
/// spec's hash names; the session guarantees that).
pub(crate) fn execute(
    model: &Model,
    spec: &TaskSpec,
    cancel: &CancelToken,
    progress: &ProgressSink,
    budget: &BudgetMeter,
) -> Result<Outcome, SessionError> {
    match spec.command {
        TaskCommand::Verify => run_verify(model, spec, cancel, progress, budget),
        TaskCommand::Reach => run_reach(model, spec, cancel, progress, budget),
        TaskCommand::Zones => run_zones(model, spec, cancel, progress, budget),
    }
}

fn run_verify(
    model: &Model,
    spec: &TaskSpec,
    cancel: &CancelToken,
    progress: &ProgressSink,
    budget: &BudgetMeter,
) -> Result<Outcome, SessionError> {
    let timed = model.timed_system()?;
    let property = model.property();
    let verify_options = VerifyOptions {
        spec: spec.explore_spec(cancel.clone(), progress.clone(), budget.clone()),
        ..VerifyOptions::default()
    };
    let verdict = transyt::verify(&timed, &property, &verify_options);
    let trace = spec.trace.then(|| trace_of_verdict(&verdict, &timed));
    Ok(Outcome::Verify(VerifyOutcome {
        model: model.name.clone(),
        system: timed.underlying().to_string(),
        no_property: model.property.is_empty(),
        verdict,
        trace,
    }))
}

fn marking_name(net: &Stg, marking: &Marking) -> String {
    let tokens: Vec<String> = marking
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t > 0)
        .map(|(i, &t)| {
            let name = net.place_name(stg::PlaceId::from_index(i));
            if t == 1 {
                name.to_owned()
            } else {
                format!("{name}*{t}")
            }
        })
        .collect();
    format!("{{{}}}", tokens.join(", "))
}

fn run_reach(
    model: &Model,
    spec: &TaskSpec,
    cancel: &CancelToken,
    progress: &ProgressSink,
    budget: &BudgetMeter,
) -> Result<Outcome, SessionError> {
    let ModelSource::Stg(net) = &model.source else {
        return Err(SessionError::Spec(
            "`reach` needs an .stg model (a .tts file already is a state graph)".to_owned(),
        ));
    };
    let expand_options = ExpandOptions {
        spec: spec.explore_spec(cancel.clone(), progress.clone(), budget.clone()),
        ..ExpandOptions::default()
    };
    let cancelled_or = |context: String| {
        move |e: stg::ExpandError| match e {
            stg::ExpandError::Cancelled => SessionError::Cancelled,
            e => SessionError::Run(format!("{context}: {e}")),
        }
    };
    let (ts, report) = stg::expand_with_report(net, expand_options.clone())
        .map_err(cancelled_or(format!("expanding `{}`", model.name)))?;
    let states = ts.state_count();

    let goal_description;
    let path = if let Some(label) = &spec.to_label {
        if spec.trace {
            return Err(SessionError::Spec(
                "--to already prints a witness path; drop either --to or --trace".to_owned(),
            ));
        }
        if !net.transitions().any(|t| net.label(t) == label) {
            return Err(SessionError::Spec(format!(
                "--to names unknown label `{label}`"
            )));
        }
        goal_description = format!("first marking enabling `{label}`");
        stg::find_marking_path(net, expand_options, |marking| {
            net.enabled(marking).iter().any(|&t| net.label(t) == label)
        })
    } else if spec.trace {
        goal_description = "first deadlock marking".to_owned();
        stg::find_marking_path(net, expand_options, |marking| {
            net.enabled(marking).is_empty()
        })
    } else {
        return Ok(Outcome::Reach(ReachOutcome {
            model: model.name.clone(),
            places: net.place_count(),
            transitions: net.transition_count(),
            report,
            states,
            goal: None,
        }));
    }
    .map_err(cancelled_or(format!("goal search in `{}`", model.name)))?;

    let goal = ReachGoalOutcome {
        description: goal_description,
        path: path.map(|path| ReachPath {
            start: marking_name(net, &path.start),
            steps: path
                .steps
                .iter()
                .map(|(t, marking)| (net.label(*t).to_owned(), marking_name(net, marking)))
                .collect(),
            end: marking_name(net, path.end()),
            labels: path.labels(net).into_iter().map(str::to_owned).collect(),
        }),
    };
    Ok(Outcome::Reach(ReachOutcome {
        model: model.name.clone(),
        places: net.place_count(),
        transitions: net.transition_count(),
        report,
        states,
        goal: Some(goal),
    }))
}

fn run_zones(
    model: &Model,
    spec: &TaskSpec,
    cancel: &CancelToken,
    progress: &ProgressSink,
    budget: &BudgetMeter,
) -> Result<Outcome, SessionError> {
    let timed = model.timed_system()?;
    let zone_options = ZoneExplorationOptions {
        spec: spec.explore_spec(cancel.clone(), progress.clone(), budget.clone()),
    };
    let ts = timed.underlying();
    let model_name = model.name.clone();
    let system = ts.to_string();

    if !spec.trace {
        let outcome = dbm::explore_timed_with(&timed, zone_options);
        return Ok(Outcome::Zones(ZonesOutcome {
            model: model_name,
            system,
            outcome,
            goal_name: None,
            witness: None,
        }));
    }

    // With --trace the witness search runs first: when the goal is
    // unreachable it has already explored the whole space and carries the
    // exact report, so the summary comes for free; only a found witness
    // (which halts the search early) needs the separate full exploration.
    let goal = if ts.has_marked_states() {
        WitnessGoal::Violation
    } else {
        WitnessGoal::Deadlock
    };
    let goal_name = match goal {
        WitnessGoal::Violation => "violating state",
        WitnessGoal::Deadlock => "deadlock state",
    };
    let (outcome, witness) = match find_witness(&timed, zone_options.clone(), goal) {
        WitnessOutcome::Found(trace) => {
            let outcome = dbm::explore_timed_with(&timed, zone_options);
            let windows = trace.firing_windows(&timed).unwrap_or_default();
            let (start, _) = trace.start();
            let mut steps = Vec::new();
            let mut entries = Vec::new();
            for (i, (event, state, zone)) in trace.steps().iter().enumerate() {
                let window: Option<FiringWindow> = windows.get(i).copied();
                let clock = event.index() + 1;
                let entry_lower = zone.lower_bound(clock);
                let entry_upper = zone.upper_bound(clock);
                entries.push(match entry_upper {
                    Some(u) => format!("[{entry_lower}, {u}]"),
                    None => format!("[{entry_lower}, inf)"),
                });
                steps.push(TraceStep {
                    event: ts.alphabet().name(*event).to_owned(),
                    state: ts.state_name(*state).to_owned(),
                    window,
                });
            }
            let rendered = RenderedTrace {
                kind: "witness",
                start: ts.state_name(start).to_owned(),
                steps,
                end: ts.state_name(trace.end_state()).to_owned(),
            };
            (
                outcome,
                ZoneWitness::Found {
                    trace: rendered,
                    entries,
                },
            )
        }
        WitnessOutcome::Unreachable(report) => {
            (ZoneOutcome::Completed(report), ZoneWitness::Unreachable)
        }
        WitnessOutcome::LimitExceeded { explored, subsumed } => (
            ZoneOutcome::LimitExceeded { explored, subsumed },
            ZoneWitness::LimitExceeded { explored },
        ),
        WitnessOutcome::Cancelled { explored, subsumed } => (
            ZoneOutcome::Cancelled { explored, subsumed },
            ZoneWitness::Cancelled { explored },
        ),
    };
    Ok(Outcome::Zones(ZonesOutcome {
        model: model_name,
        system,
        outcome,
        goal_name: Some(goal_name),
        witness: Some(witness),
    }))
}
