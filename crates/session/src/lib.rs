//! `transyt-session` — the embeddable library API of the TRANSYT
//! reproduction: [`Session`] / [`TaskSpec`] / [`Outcome`].
//!
//! The paper's flow — expand, verify, extract a counterexample structure,
//! refine, re-verify — used to be reachable only through the CLI's
//! command functions (string options in, pre-rendered text out). This crate
//! is the stable programmatic surface underneath both front ends:
//!
//! * [`format`](mod@format) — the `.stg` / `.tts` textual model formats
//!   (parser and canonical printer; grammar in `docs/FILE_FORMATS.md`).
//! * [`Session`] — owns parsed models, interned by content hash
//!   ([`Session::add_model`]); runs [`TaskSpec`]s against them.
//! * [`TaskSpec`] — a typed task description (`verify` / `reach` / `zones`
//!   × threads / subsumption / trace / limit / deadline) with one textual
//!   lowering ([`TaskSpec::parse`]) shared by the CLI's flags and the
//!   server's query strings, and a canonical [`TaskKey`] — the fingerprint
//!   of model hash + normalized options that identical submissions share.
//! * **Deduplicated batching** — [`Session::run_task`] serves submissions
//!   with equal keys from a single underlying run: concurrent duplicates
//!   *attach* to the in-flight run (sharing its progress stream and its
//!   [`TaskResult`]), recent duplicates hit a bounded memo.
//! * [`Outcome`] — structured results (verdict, reports, replayable
//!   traces), with the canonical text / JSON renderings in
//!   [`render`] — byte-identical to the one-shot CLI's output and to what
//!   `transyt serve` serves.
//! * [`ProgressEvent`]s — configurations explored, levels, refinement
//!   iterations, cancellation — stream through a [`ProgressSink`] callback
//!   threaded down into the exploration driver's deterministic merge.
//! * Deadlines — [`TaskSpec::deadline`] arms a watchdog that trips the
//!   run's [`CancelToken`] and surfaces the partial result as
//!   [`Outcome::TimedOut`].
//! * Resource budgets — [`TaskSpec::max_configs`] / `max_zone_bytes` arm a
//!   [`BudgetMeter`] checked inside the exploration driver's merge loop; a
//!   breach aborts at a deterministic, thread-count-invariant configuration
//!   count and surfaces as [`Outcome::BudgetExceeded`].
//!
//! See `docs/API.md` for a guided tour and `examples/embed_session.rs` for
//! a complete embedding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
mod outcome;
mod persist;
pub mod render;
mod run;
mod session;
mod task;

pub use explore::{
    Bounds, BudgetBreach, BudgetMeter, BudgetResource, CancelToken, ExploreSpec, Extrapolation,
    ProgressEvent, ProgressSink, Subsumption,
};
pub use outcome::{
    asap_run, replay_rendered, trace_of_verdict, BudgetExceededOutcome, Outcome, ReachGoalOutcome,
    ReachOutcome, ReachPath, RenderedTrace, RestoredOutcome, TimedOutOutcome, TraceStep,
    VerifyOutcome, ZoneWitness, ZonesOutcome,
};
pub use persist::{StoreHook, StoredResult};
pub use session::{
    content_hash, CachedModel, Completion, RunControl, Session, SessionError, SessionStats,
    TaskHandle, TaskResult,
};
pub use task::{
    SpecError, TaskCommand, TaskKey, TaskSpec, REACH_DEFAULT_LIMIT, ZONES_DEFAULT_LIMIT,
};
