//! The `.stg` / `.tts` textual model formats: parser and canonical printer.
//!
//! Both formats are line-oriented: `#` starts a comment, blank lines are
//! ignored, and every other line is a directive made of whitespace-separated
//! tokens (double-quoted, backslash-escaped strings for names that contain
//! whitespace). The grammar is specified in `docs/FILE_FORMATS.md`; in
//! short, an `.stg` file declares a signal transition graph (transitions,
//! places, arcs) and a `.tts` file an explicit timed transition system
//! (states, transitions, roles), and both carry `delay` and `property`
//! directives that turn the model into a verification problem.
//!
//! Printing is *canonical*: identifiers are renumbered `t0, t1, …` /
//! `p0, p1, …` / `s0, s1, …` in declaration order, so
//! `parse(print(m)) == m` and `print(parse(text))` is a normal form — the
//! property the round-trip tests in `tests/proptest_format.rs` check.

use std::fmt;

use stg::{SignalRole, Stg, StgBuilder};
use transyt::SafetyProperty;
use tts::{
    Bound, DelayInterval, EventRole, Time, TimedTransitionSystem, TransitionSystem, TsBuilder,
};

/// A parsed model file: the system description plus the delay annotations
/// and the safety property to verify.
#[derive(Debug, Clone)]
pub struct Model {
    /// The model's name (from the `stg` / `tts` header line).
    pub name: String,
    /// The system itself.
    pub source: ModelSource,
    /// Delay intervals per event label, in declaration order.
    pub delays: Vec<(String, DelayInterval)>,
    /// The property directives.
    pub property: PropertySpec,
}

/// The system described by a model file.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// A signal transition graph (`.stg`): expanded to its reachability
    /// graph before verification.
    Stg(Stg),
    /// An explicit transition system (`.tts`).
    Tts(TransitionSystem),
}

/// The `property` directives of a model file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertySpec {
    /// `property deadlock-free` — no reachable state may deadlock.
    pub deadlock_free: bool,
    /// `property forbid-marked` — no state carrying a violation mark may be
    /// reachable.
    pub forbid_marked: bool,
    /// `property persistent <label>…` — the named events must be persistent.
    pub persistent: Vec<String>,
}

impl PropertySpec {
    /// Returns `true` if no property directive was given.
    pub fn is_empty(&self) -> bool {
        !self.deadlock_free && !self.forbid_marked && self.persistent.is_empty()
    }
}

/// Error produced while parsing or instantiating a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// 1-based line the error was detected on (0 when it concerns the file
    /// as a whole, e.g. a missing header).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ModelError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ModelError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ModelError {}

/// Splits one line into tokens: bare words and double-quoted strings with
/// `\"` / `\\` escapes; `#` outside quotes starts a comment.
fn tokenize(line: &str, number: usize) -> Result<Vec<String>, ModelError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => break,
            c if c.is_whitespace() => {
                chars.next();
            }
            '"' => {
                chars.next();
                let mut token = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(escaped @ ('"' | '\\')) => token.push(escaped),
                            _ => return Err(ModelError::new(number, "bad escape in string")),
                        },
                        Some(other) => token.push(other),
                        None => return Err(ModelError::new(number, "unterminated string")),
                    }
                }
                tokens.push(token);
            }
            _ => {
                let mut token = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '"' || c == '#' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                tokens.push(token);
            }
        }
    }
    Ok(tokens)
}

/// Renders a token, quoting it when it contains whitespace, quotes, `#`, or
/// is empty.
fn quote(token: &str) -> String {
    let needs_quoting = token.is_empty()
        || token
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '#' || c == '\\');
    if !needs_quoting {
        return token.to_owned();
    }
    let mut out = String::with_capacity(token.len() + 2);
    out.push('"');
    for c in token.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

fn parse_interval(token: &str, line: usize) -> Result<DelayInterval, ModelError> {
    let bad = || {
        ModelError::new(
            line,
            format!("bad delay interval `{token}` (use [l,u] or [l,inf))"),
        )
    };
    let inner = token.strip_prefix('[').ok_or_else(bad)?;
    let (lower, upper) = inner.split_once(',').ok_or_else(bad)?;
    let lower: i64 = lower.trim().parse().map_err(|_| bad())?;
    let upper = upper.trim();
    if let Some(rest) = upper.strip_suffix(')') {
        if rest != "inf" {
            return Err(bad());
        }
        DelayInterval::at_least(Time::new(lower)).map_err(|e| ModelError::new(line, e.to_string()))
    } else if let Some(rest) = upper.strip_suffix(']') {
        let upper: i64 = rest.parse().map_err(|_| bad())?;
        DelayInterval::new(Time::new(lower), Time::new(upper))
            .map_err(|e| ModelError::new(line, e.to_string()))
    } else {
        Err(bad())
    }
}

fn print_interval(delay: DelayInterval) -> String {
    match delay.upper() {
        Bound::Finite(upper) => format!("[{},{}]", delay.lower(), upper),
        Bound::Infinite => format!("[{},inf)", delay.lower()),
    }
}

impl Model {
    /// Parses a model file (either format; the header line decides).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] with the offending line on any syntax or
    /// consistency problem (unknown identifiers, duplicate ids, malformed
    /// intervals, delays or properties naming unknown labels).
    pub fn parse(text: &str) -> Result<Model, ModelError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, line)| tokenize(line, i + 1).map(|tokens| (i + 1, tokens)));
        let header = loop {
            match lines.next() {
                Some(result) => {
                    let (number, tokens) = result?;
                    if !tokens.is_empty() {
                        break (number, tokens);
                    }
                }
                None => return Err(ModelError::new(0, "empty model file")),
            }
        };
        let (header_line, header_tokens) = header;
        if header_tokens.len() != 2 {
            return Err(ModelError::new(
                header_line,
                "expected header `stg <name>` or `tts <name>`",
            ));
        }
        let name = header_tokens[1].clone();
        let body: Result<Vec<(usize, Vec<String>)>, ModelError> = lines.collect();
        let body: Vec<(usize, Vec<String>)> = body?
            .into_iter()
            .filter(|(_, tokens)| !tokens.is_empty())
            .collect();
        match header_tokens[0].as_str() {
            "stg" => parse_stg(name, &body),
            "tts" => parse_tts(name, &body),
            other => Err(ModelError::new(
                header_line,
                format!("unknown model kind `{other}` (expected `stg` or `tts`)"),
            )),
        }
    }

    /// Renders the model in canonical form (see the module docs).
    pub fn to_text(&self) -> String {
        match &self.source {
            ModelSource::Stg(net) => print_stg(self, net),
            ModelSource::Tts(ts) => print_tts(self, ts),
        }
    }

    /// The event labels of the model, in declaration order.
    pub fn labels(&self) -> Vec<String> {
        match &self.source {
            ModelSource::Stg(net) => net.transitions().map(|t| net.label(t).to_owned()).collect(),
            ModelSource::Tts(ts) => ts
                .alphabet()
                .iter()
                .map(|(_, name)| name.to_owned())
                .collect(),
        }
    }

    /// Instantiates the timed transition system the model describes: the
    /// reachability graph of the net (for `.stg`) or the explicit system
    /// (for `.tts`), with the delay annotations applied.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the net cannot be expanded.
    pub fn timed_system(&self) -> Result<TimedTransitionSystem, ModelError> {
        let ts = match &self.source {
            ModelSource::Stg(net) => stg::expand(net)
                .map_err(|e| ModelError::new(0, format!("expanding `{}`: {e}", self.name)))?,
            ModelSource::Tts(ts) => ts.clone(),
        };
        let mut timed = TimedTransitionSystem::new(ts);
        for (label, delay) in &self.delays {
            // Labels were validated at parse time; an `.stg` transition that
            // is dead in the reachability graph can still be missing from
            // the alphabet, which is fine to ignore.
            if timed.underlying().alphabet().lookup(label).is_some() {
                timed.set_delay_by_name(label, *delay);
            }
        }
        Ok(timed)
    }

    /// The safety property the model's `property` directives describe.
    pub fn property(&self) -> SafetyProperty {
        let mut property = SafetyProperty::new(self.name.clone());
        if self.property.forbid_marked {
            property = property.forbid_marked_states();
        }
        if self.property.deadlock_free {
            property = property.require_deadlock_freedom();
        }
        if !self.property.persistent.is_empty() {
            property = property.require_persistency(self.property.persistent.iter().cloned());
        }
        property
    }
}

/// Parses the shared `delay` / `property` directives; returns `false` if the
/// directive is not one of them.
fn parse_common(
    line: usize,
    tokens: &[String],
    labels: &dyn Fn(&str) -> bool,
    delays: &mut Vec<(String, DelayInterval)>,
    property: &mut PropertySpec,
) -> Result<bool, ModelError> {
    match tokens[0].as_str() {
        "delay" => {
            if tokens.len() != 3 {
                return Err(ModelError::new(line, "expected `delay <label> <interval>`"));
            }
            if !labels(&tokens[1]) {
                return Err(ModelError::new(
                    line,
                    format!("delay names unknown label `{}`", tokens[1]),
                ));
            }
            delays.push((tokens[1].clone(), parse_interval(&tokens[2], line)?));
            Ok(true)
        }
        "property" => {
            match tokens.get(1).map(String::as_str) {
                Some("deadlock-free") if tokens.len() == 2 => property.deadlock_free = true,
                Some("forbid-marked") if tokens.len() == 2 => property.forbid_marked = true,
                Some("persistent") if tokens.len() > 2 => {
                    for label in &tokens[2..] {
                        if !labels(label) {
                            return Err(ModelError::new(
                                line,
                                format!("property names unknown label `{label}`"),
                            ));
                        }
                        property.persistent.push(label.clone());
                    }
                }
                _ => {
                    return Err(ModelError::new(
                        line,
                        "expected `property deadlock-free`, `property forbid-marked` \
                         or `property persistent <label>…`",
                    ))
                }
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn parse_stg(name: String, body: &[(usize, Vec<String>)]) -> Result<Model, ModelError> {
    let mut builder = StgBuilder::new(name.clone());
    let mut transition_ids: Vec<(String, stg::TransitionId)> = Vec::new();
    let mut place_ids: Vec<(String, stg::PlaceId)> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut delays = Vec::new();
    let mut property = PropertySpec::default();

    let find_transition = |ids: &[(String, stg::TransitionId)], id: &str| {
        ids.iter().find(|(n, _)| n == id).map(|&(_, t)| t)
    };
    let find_place = |ids: &[(String, stg::PlaceId)], id: &str| {
        ids.iter().find(|(n, _)| n == id).map(|&(_, p)| p)
    };

    for (line, tokens) in body {
        let line = *line;
        let label_known = |label: &str| labels.iter().any(|l| l == label);
        if parse_common(line, tokens, &label_known, &mut delays, &mut property)? {
            continue;
        }
        match tokens[0].as_str() {
            "transition" => {
                if tokens.len() != 4 {
                    return Err(ModelError::new(
                        line,
                        "expected `transition <id> <label> <input|output|internal>`",
                    ));
                }
                if find_transition(&transition_ids, &tokens[1]).is_some() {
                    return Err(ModelError::new(
                        line,
                        format!("duplicate transition id `{}`", tokens[1]),
                    ));
                }
                let role = match tokens[3].as_str() {
                    "input" => SignalRole::Input,
                    "output" => SignalRole::Output,
                    "internal" => SignalRole::Internal,
                    other => return Err(ModelError::new(line, format!("unknown role `{other}`"))),
                };
                let t = builder.add_transition(tokens[2].clone(), role);
                transition_ids.push((tokens[1].clone(), t));
                labels.push(tokens[2].clone());
            }
            "place" => {
                if tokens.len() != 3 && tokens.len() != 4 {
                    return Err(ModelError::new(
                        line,
                        "expected `place <id> <initial-tokens> [<name>]`",
                    ));
                }
                if find_place(&place_ids, &tokens[1]).is_some() {
                    return Err(ModelError::new(
                        line,
                        format!("duplicate place id `{}`", tokens[1]),
                    ));
                }
                let tokens_count: u32 = tokens[2].parse().map_err(|_| {
                    ModelError::new(line, format!("bad token count `{}`", tokens[2]))
                })?;
                let place_name = tokens.get(3).cloned().unwrap_or_else(|| tokens[1].clone());
                let p = builder.add_place(place_name, tokens_count);
                place_ids.push((tokens[1].clone(), p));
            }
            "arc" => {
                if tokens.len() != 3 {
                    return Err(ModelError::new(line, "expected `arc <from> <to>`"));
                }
                let from_place = find_place(&place_ids, &tokens[1]);
                let from_transition = find_transition(&transition_ids, &tokens[1]);
                let to_place = find_place(&place_ids, &tokens[2]);
                let to_transition = find_transition(&transition_ids, &tokens[2]);
                match (from_place, from_transition, to_place, to_transition) {
                    (Some(p), _, _, Some(t)) => builder.arc_in(p, t),
                    (_, Some(t), Some(p), _) => builder.arc_out(t, p),
                    _ => {
                        return Err(ModelError::new(
                            line,
                            format!(
                                "arc must connect a place and a transition \
                                 (`{}` -> `{}`)",
                                tokens[1], tokens[2]
                            ),
                        ))
                    }
                }
            }
            "violation" => {
                if tokens.len() < 3 || tokens[1] != "when" {
                    return Err(ModelError::new(
                        line,
                        "expected `violation when <place-id>…` (a conjunction of marked places)",
                    ));
                }
                let mut conjunction = Vec::with_capacity(tokens.len() - 2);
                for id in &tokens[2..] {
                    let p = find_place(&place_ids, id).ok_or_else(|| {
                        ModelError::new(line, format!("violation names unknown place `{id}`"))
                    })?;
                    conjunction.push(p);
                }
                builder.forbid_marking(conjunction);
            }
            "connect" => {
                if tokens.len() != 3 && tokens.len() != 4 {
                    return Err(ModelError::new(
                        line,
                        "expected `connect <from-transition> <to-transition> [<initial-tokens>]`",
                    ));
                }
                let from = find_transition(&transition_ids, &tokens[1]).ok_or_else(|| {
                    ModelError::new(line, format!("unknown transition `{}`", tokens[1]))
                })?;
                let to = find_transition(&transition_ids, &tokens[2]).ok_or_else(|| {
                    ModelError::new(line, format!("unknown transition `{}`", tokens[2]))
                })?;
                let initial: u32 = match tokens.get(3) {
                    Some(t) => t
                        .parse()
                        .map_err(|_| ModelError::new(line, format!("bad token count `{t}`")))?,
                    None => 0,
                };
                builder.connect(from, to, initial);
            }
            other => {
                return Err(ModelError::new(
                    line,
                    format!("unknown directive `{other}` in an stg model"),
                ))
            }
        }
    }
    let net = builder
        .build()
        .map_err(|e| ModelError::new(0, e.to_string()))?;
    Ok(Model {
        name,
        source: ModelSource::Stg(net),
        delays,
        property,
    })
}

fn print_stg(model: &Model, net: &Stg) -> String {
    let mut out = String::new();
    out.push_str(&format!("stg {}\n", quote(&model.name)));
    out.push('\n');
    out.push_str("# transitions: <id> <label> <role>\n");
    for (i, t) in net.transitions().enumerate() {
        let role = match net.role(t) {
            SignalRole::Input => "input",
            SignalRole::Output => "output",
            SignalRole::Internal => "internal",
        };
        out.push_str(&format!("transition t{i} {} {role}\n", quote(net.label(t))));
    }
    out.push('\n');
    out.push_str("# places: <id> <initial-tokens> <name>\n");
    for (i, tokens) in net.initial_marking().iter().enumerate() {
        let p = stg::PlaceId::from_index(i);
        out.push_str(&format!(
            "place p{i} {tokens} {}\n",
            quote(net.place_name(p))
        ));
    }
    out.push('\n');
    out.push_str("# arcs: place -> transition (preset), transition -> place (postset)\n");
    for (i, t) in net.transitions().enumerate() {
        for p in net.preset(t) {
            out.push_str(&format!("arc p{} t{i}\n", p.index()));
        }
        for p in net.postset(t) {
            out.push_str(&format!("arc t{i} p{}\n", p.index()));
        }
    }
    if !net.forbidden_markings().is_empty() {
        out.push('\n');
        out.push_str("# forbidden markings: a violation when every listed place is marked\n");
        for conjunction in net.forbidden_markings() {
            let ids: Vec<String> = conjunction
                .iter()
                .map(|p| format!("p{}", p.index()))
                .collect();
            out.push_str(&format!("violation when {}\n", ids.join(" ")));
        }
    }
    print_common(model, &mut out);
    out
}

fn parse_tts(name: String, body: &[(usize, Vec<String>)]) -> Result<Model, ModelError> {
    let mut builder = TsBuilder::new(name.clone());
    let mut state_ids: Vec<(String, tts::StateId)> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut delays = Vec::new();
    let mut property = PropertySpec::default();

    let find_state = |ids: &[(String, tts::StateId)], id: &str| {
        ids.iter().find(|(n, _)| n == id).map(|&(_, s)| s)
    };

    for (line, tokens) in body {
        let line = *line;
        let label_known = |label: &str| labels.iter().any(|l| l == label);
        if parse_common(line, tokens, &label_known, &mut delays, &mut property)? {
            continue;
        }
        match tokens[0].as_str() {
            "state" => {
                if tokens.len() != 2 && tokens.len() != 3 {
                    return Err(ModelError::new(line, "expected `state <id> [<name>]`"));
                }
                if find_state(&state_ids, &tokens[1]).is_some() {
                    return Err(ModelError::new(
                        line,
                        format!("duplicate state id `{}`", tokens[1]),
                    ));
                }
                let state_name = tokens.get(2).cloned().unwrap_or_else(|| tokens[1].clone());
                let s = builder.add_state(state_name);
                state_ids.push((tokens[1].clone(), s));
            }
            "initial" => {
                if tokens.len() < 2 {
                    return Err(ModelError::new(line, "expected `initial <id>…`"));
                }
                for id in &tokens[1..] {
                    let s = find_state(&state_ids, id)
                        .ok_or_else(|| ModelError::new(line, format!("unknown state `{id}`")))?;
                    builder.set_initial(s);
                }
            }
            "violation" => {
                if tokens.len() != 3 {
                    return Err(ModelError::new(line, "expected `violation <id> <message>`"));
                }
                let s = find_state(&state_ids, &tokens[1]).ok_or_else(|| {
                    ModelError::new(line, format!("unknown state `{}`", tokens[1]))
                })?;
                builder.mark_violation(s, tokens[2].clone());
            }
            "trans" => {
                if tokens.len() != 4 {
                    return Err(ModelError::new(
                        line,
                        "expected `trans <from> <label> <to>`",
                    ));
                }
                let from = find_state(&state_ids, &tokens[1]).ok_or_else(|| {
                    ModelError::new(line, format!("unknown state `{}`", tokens[1]))
                })?;
                let to = find_state(&state_ids, &tokens[3]).ok_or_else(|| {
                    ModelError::new(line, format!("unknown state `{}`", tokens[3]))
                })?;
                builder.add_transition(from, &tokens[2], to);
                if !labels.iter().any(|l| l == &tokens[2]) {
                    labels.push(tokens[2].clone());
                }
            }
            "input" | "output" => {
                if tokens.len() < 2 {
                    return Err(ModelError::new(
                        line,
                        format!("expected `{} <label>…`", tokens[0]),
                    ));
                }
                for label in &tokens[1..] {
                    if tokens[0] == "input" {
                        builder.declare_input(label);
                    } else {
                        builder.declare_output(label);
                    }
                    if !labels.iter().any(|l| l == label) {
                        labels.push(label.clone());
                    }
                }
            }
            other => {
                return Err(ModelError::new(
                    line,
                    format!("unknown directive `{other}` in a tts model"),
                ))
            }
        }
    }
    let ts = builder
        .build()
        .map_err(|e| ModelError::new(0, e.to_string()))?;
    Ok(Model {
        name,
        source: ModelSource::Tts(ts),
        delays,
        property,
    })
}

fn print_tts(model: &Model, ts: &TransitionSystem) -> String {
    let mut out = String::new();
    out.push_str(&format!("tts {}\n", quote(&model.name)));
    out.push('\n');
    out.push_str("# states: <id> <name>\n");
    for s in ts.states() {
        out.push_str(&format!(
            "state s{} {}\n",
            s.index(),
            quote(ts.state_name(s))
        ));
    }
    for s in ts.initial_states() {
        out.push_str(&format!("initial s{}\n", s.index()));
    }
    for s in ts.states() {
        for message in ts.violations(s) {
            out.push_str(&format!("violation s{} {}\n", s.index(), quote(message)));
        }
    }
    out.push('\n');
    out.push_str("# transitions: <from> <label> <to>\n");
    for (from, event, to) in ts.transitions() {
        out.push_str(&format!(
            "trans s{} {} s{}\n",
            from.index(),
            quote(ts.alphabet().name(event)),
            to.index()
        ));
    }
    for (keyword, role) in [("input", EventRole::Input), ("output", EventRole::Output)] {
        let members: Vec<String> = ts
            .alphabet()
            .iter()
            .filter(|&(id, _)| ts.role(id) == role)
            .map(|(_, name)| quote(name))
            .collect();
        if !members.is_empty() {
            out.push_str(&format!("{keyword} {}\n", members.join(" ")));
        }
    }
    print_common(model, &mut out);
    out
}

fn print_common(model: &Model, out: &mut String) {
    if !model.delays.is_empty() {
        out.push('\n');
        out.push_str("# delay intervals per event label\n");
        for (label, delay) in &model.delays {
            out.push_str(&format!(
                "delay {} {}\n",
                quote(label),
                print_interval(*delay)
            ));
        }
    }
    if !model.property.is_empty() {
        out.push('\n');
        out.push_str("# the property `transyt verify` checks\n");
        if model.property.forbid_marked {
            out.push_str("property forbid-marked\n");
        }
        if model.property.deadlock_free {
            out.push_str("property deadlock-free\n");
        }
        if !model.property.persistent.is_empty() {
            let labels: Vec<String> = model.property.persistent.iter().map(|l| quote(l)).collect();
            out.push_str(&format!("property persistent {}\n", labels.join(" ")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STG_TEXT: &str = r#"
stg toggle
transition t0 X+ output
transition t1 X- input
place p0 0 "X+->X-"
place p1 1 "X-->X+"
arc p1 t0
arc t0 p0
arc p0 t1
arc t1 p1
delay X+ [1,2]
delay X- [5,inf)
property deadlock-free
property persistent X+
"#;

    #[test]
    fn parses_and_reprints_an_stg_canonically() {
        let model = Model::parse(STG_TEXT).unwrap();
        assert_eq!(model.name, "toggle");
        let ModelSource::Stg(net) = &model.source else {
            panic!("expected an stg");
        };
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.place_count(), 2);
        assert_eq!(model.delays.len(), 2);
        assert!(model.property.deadlock_free);
        assert_eq!(model.property.persistent, vec!["X+".to_owned()]);
        // Canonical printing is a normal form.
        let printed = model.to_text();
        let reparsed = Model::parse(&printed).unwrap();
        assert_eq!(printed, reparsed.to_text());
    }

    #[test]
    fn violation_when_marks_the_forbidden_marking() {
        // Two toggles; both "high" places marked at once is the violation.
        let text = "stg mutex\n\
                    transition t0 A+ output\ntransition t1 A- output\n\
                    transition t2 B+ output\ntransition t3 B- output\n\
                    place p0 1\nplace p1 0 a_high\nplace p2 1\nplace p3 0 b_high\n\
                    arc p0 t0\narc t0 p1\narc p1 t1\narc t1 p0\n\
                    arc p2 t2\narc t2 p3\narc p3 t3\narc t3 p2\n\
                    violation when p1 p3\n\
                    property forbid-marked\n";
        let model = Model::parse(text).unwrap();
        let ModelSource::Stg(net) = &model.source else {
            panic!("expected an stg");
        };
        assert_eq!(net.forbidden_markings().len(), 1);
        // Canonical printing round-trips the directive.
        let printed = model.to_text();
        assert!(printed.contains("violation when p1 p3\n"), "{printed}");
        let reparsed = Model::parse(&printed).unwrap();
        assert_eq!(reparsed.to_text(), printed);
        // The expanded system carries the violation mark and verification
        // (untimed: no delays keep the toggles apart) finds it.
        let timed = model.timed_system().unwrap();
        let marked = timed
            .underlying()
            .states()
            .filter(|&s| !timed.underlying().violations(s).is_empty())
            .count();
        assert_eq!(marked, 1);
        let verdict = transyt::verify(
            &timed,
            &model.property(),
            &transyt::VerifyOptions::default(),
        );
        assert!(matches!(verdict, transyt::Verdict::Failed { .. }));

        // Unknown places are rejected with the offending line.
        let err = Model::parse(
            "stg x\ntransition t0 A+ output\nplace p0 1\narc p0 t0\narc t0 p0\nviolation when p9\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown place"));
    }

    #[test]
    fn connect_sugar_builds_anonymous_places() {
        let text = "stg t\ntransition a X+ output\ntransition b X- output\n\
                    connect a b\nconnect b a 1\n";
        let model = Model::parse(text).unwrap();
        let ModelSource::Stg(net) = &model.source else {
            panic!("expected an stg");
        };
        assert_eq!(net.place_count(), 2);
        let ts = model.timed_system().unwrap();
        assert_eq!(ts.underlying().state_count(), 2);
    }

    #[test]
    fn parses_and_reprints_a_tts_canonically() {
        let text = "tts race\nstate s0\nstate bad \"slow first\"\nstate ok\n\
                    initial s0\nviolation bad \"slow overtook fast\"\n\
                    trans s0 fast ok\ntrans s0 slow bad\n\
                    input fast\noutput slow\n\
                    delay fast [1,4]\ndelay slow [2,9]\nproperty forbid-marked\n";
        let model = Model::parse(text).unwrap();
        let ModelSource::Tts(ts) = &model.source else {
            panic!("expected a tts");
        };
        assert_eq!(ts.state_count(), 3);
        assert_eq!(ts.transition_count(), 2);
        let printed = model.to_text();
        let reparsed = Model::parse(&printed).unwrap();
        assert_eq!(printed, reparsed.to_text());
        let timed = model.timed_system().unwrap();
        assert_eq!(
            timed.delay_by_name("fast"),
            DelayInterval::new(Time::new(1), Time::new(4)).unwrap()
        );
        assert!(model.property().checks_marked_states());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Model::parse("stg x\ntransition t0 A+ output\nfrobnicate\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("frobnicate"));
        let err = Model::parse("stg x\ndelay GHOST [1,2]\n").unwrap_err();
        assert!(err.to_string().contains("unknown label"));
        let err = Model::parse("tts x\nstate s0\ninitial s0\ntrans s0 a s0\ndelay a [5,2]\n")
            .unwrap_err();
        assert_eq!(err.line, 5);
    }

    #[test]
    fn quoting_round_trips_odd_names() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("has space"), "\"has space\"");
        assert_eq!(quote("q\"uote"), "\"q\\\"uote\"");
        let tokens = tokenize("state s0 \"a \\\"b\\\" c\"", 1).unwrap();
        assert_eq!(tokens, vec!["state", "s0", "a \"b\" c"]);
    }
}
