//! The shared seen-set: a sharded `Mutex<HashMap>` from dedup key to the
//! stored configurations of that key (maximal modulo subsumption).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::Mutex;

use crate::space::SearchSpace;

/// Sharded map from key to the bucket of stored configurations.
///
/// Buckets are *antichains* of the subsumption relation: a configuration is
/// only stored if no stored configuration subsumes it, and storing it prunes
/// every stored configuration it subsumes.
///
/// With the default exact-dedup relation any stored configuration with the
/// same key *is* the candidate, so buckets are kept empty and the key's
/// presence alone answers every query — spaces whose key is the whole
/// configuration (e.g. the STG marking search) then store each
/// configuration once instead of twice.
///
/// Sharding lets worker threads consult the map (read-only prefilter) while
/// holding each shard only briefly; all *mutation* happens in the
/// single-threaded deterministic merge.
type Shard<S> = Mutex<HashMap<<S as SearchSpace>::Key, Vec<<S as SearchSpace>::Config>>>;

pub(crate) struct SeenMap<S: SearchSpace> {
    shards: Vec<Shard<S>>,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl<S: SearchSpace> SeenMap<S> {
    pub(crate) fn new(shard_count: usize) -> Self {
        SeenMap {
            shards: (0..shard_count.max(1)).map(|_| Mutex::default()).collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard(&self, key: &S::Key) -> &Shard<S> {
        let index = if self.shards.len() == 1 {
            0
        } else {
            self.hasher.hash_one(key) as usize % self.shards.len()
        };
        &self.shards[index]
    }

    /// Stores `config` unless a stored configuration with the same key
    /// subsumes it; prunes stored configurations the new one subsumes.
    /// Returns the interned configuration when it was stored.
    ///
    /// Must only be called from the deterministic merge (mutation order is
    /// semantics-bearing under subsumption).
    pub(crate) fn push(&self, space: &S, config: S::Config) -> Option<S::Config> {
        let key = space.key(&config);
        let mut shard = self.shard(&key).lock().expect("seen shard poisoned");
        if !space.uses_subsumption() {
            // Exact deduplication: the key's presence is the whole answer,
            // so nothing needs to live in the bucket.
            return match shard.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => None,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Vec::new());
                    Some(space.intern(config))
                }
            };
        }
        let bucket = shard.entry(key).or_default();
        if bucket.iter().any(|stored| space.subsumes(stored, &config)) {
            return None;
        }
        let config = space.intern(config);
        bucket.retain(|stored| !space.subsumes(&config, stored));
        bucket.push(config.clone());
        Some(config)
    }

    /// Returns `true` if `config` itself is still stored under its key —
    /// i.e. it has not been pruned by a strictly subsuming arrival since it
    /// was enqueued (the pop-time subsumption check; under exact
    /// deduplication stored configurations are never pruned, so the key's
    /// presence suffices).
    pub(crate) fn contains(&self, space: &S, config: &S::Config) -> bool {
        let key = space.key(config);
        let shard = self.shard(&key).lock().expect("seen shard poisoned");
        if !space.uses_subsumption() {
            return shard.contains_key(&key);
        }
        shard
            .get(&key)
            .is_some_and(|bucket| bucket.iter().any(|stored| stored == config))
    }

    /// Reports a pop-time skip to the space (see
    /// [`SearchSpace::note_pop_skip`]) with the bucket currently stored
    /// under the skipped configuration's key. Must only be called from the
    /// deterministic merge, right after [`contains`](SeenMap::contains)
    /// returned `false` for `config`.
    pub(crate) fn note_skip(&self, space: &S, config: &S::Config) {
        let key = space.key(config);
        let shard = self.shard(&key).lock().expect("seen shard poisoned");
        match shard.get(&key) {
            Some(bucket) => space.note_pop_skip(config, bucket),
            None => space.note_pop_skip(config, &[]),
        }
    }

    /// Returns `true` if some stored configuration subsumes `candidate`
    /// (the worker-side prefilter; sound because subsumption is transitive
    /// and stored configurations are only ever pruned by larger ones).
    pub(crate) fn covers(&self, space: &S, candidate: &S::Config) -> bool {
        let key = space.key(candidate);
        let shard = self.shard(&key).lock().expect("seen shard poisoned");
        if !space.uses_subsumption() {
            return shard.contains_key(&key);
        }
        shard.get(&key).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|stored| space.subsumes(stored, candidate))
        })
    }
}
