//! Generic breadth-first exploration with deduplication, subsumption and
//! parallel expansion.
//!
//! Every verification path in this workspace is, at its core, the same loop:
//! keep a frontier of configurations, expand each configuration into
//! successors, and deduplicate against everything seen so far. The zone-graph
//! explorer (`dbm`), the STG reachability expansion (`stg`) and the untimed
//! failure search of the relative-timing engine (`transyt`) were three
//! hand-rolled copies of that loop. This crate unifies them behind one
//! engine:
//!
//! * [`SearchSpace`] — the problem description: initial configurations,
//!   successor expansion, a dedup key, and (optionally) a *subsumption*
//!   relation under which a configuration needs no exploration because an
//!   already-stored one covers it (e.g. zone inclusion in the DBM explorer).
//! * [`explore`] — the driver. With [`ExploreOptions::threads`]` == 1` it is
//!   a plain FIFO breadth-first search, byte-for-byte equivalent to the
//!   loops it replaced. With more threads each breadth-first level is
//!   expanded speculatively in parallel and committed by a deterministic
//!   ordered merge, so **any thread count produces the identical result**.
//! * [`CancelToken`] — cooperative cancellation: a shared flag the driver
//!   checks once per merge batch, so a long-running exploration (e.g. a
//!   server-side verification job) can be stopped from outside without
//!   running to its limit. A cancelled search returns
//!   [`ExploreOutcome::Cancelled`] with the counters of the committed
//!   deterministic prefix.
//! * [`ProgressSink`] — progress reporting: a callback the driver feeds with
//!   [`ProgressEvent`]s (batch committed, level finished, search cancelled)
//!   from the deterministic merge, so long-running explorations can stream
//!   "configs explored" counters to a UI or a server job table without
//!   perturbing the result. The default sink is inert and costs nothing.
//! * [`TraceOptions`] — optional witness bookkeeping: with parent tracking
//!   on, the report records for every expanded configuration the node that
//!   first discovered it and the edge it was discovered through, and
//!   [`ExploreReport::path_to`] reconstructs the breadth-first discovery
//!   path to any node. Parents are recorded by the deterministic merge, so
//!   reconstructed traces are identical for every thread count; the
//!   counterexample traces of the `transyt` engine, the marking paths of
//!   `stg` and the symbolic timed traces of `dbm` are all built on this.
//! * [`BudgetMeter`] — per-exploration resource budgets: configuration and
//!   zone-memory ceilings checked by the driver at the same deterministic
//!   merge point as its size limits, so a breached budget cancels the search
//!   at the identical configuration count for every thread count. The
//!   default meter is inert and costs nothing.
//! * [`ExploreSpec`] — the shared options core (threads / subsumption /
//!   limit / [`Extrapolation`] / cancel / progress) that the per-domain
//!   options structs (`ZoneExplorationOptions`, `ExpandOptions`,
//!   `VerifyOptions`) embed instead of re-declaring the same fields.
//!
//! # Determinism
//!
//! Expansion ([`SearchSpace::expand`]) must be a pure function of the
//! configuration. The driver exploits this: worker threads only ever run
//! `expand` on a frozen frontier (claiming chunks of it from a shared atomic
//! cursor) while the `seen` map is read-only; all mutation — deduplication,
//! subsumption pruning, configuration counting, limit checks — happens in a
//! single-threaded merge that walks the level in frontier order. The merge
//! performs exactly the operations the sequential FIFO loop performs, in the
//! same order, so reports are identical for every `threads` value.
//!
//! Workers additionally *prefilter* successors against the seen map (sharded
//! `Mutex<HashMap>` so shards can be consulted independently) when edge
//! recording is off: a successor subsumed by a stored configuration can be
//! dropped early. Subsumption is transitive, and stored configurations are
//! only ever pruned by strictly larger ones, so a prefilter drop can never
//! change a merge decision — it only saves allocation and interning work.
//!
//! # Example
//!
//! ```
//! use explore::{explore, ExploreOptions, ExploreOutcome, SearchSpace};
//!
//! /// Collatz-style reachability over `u64` values below a cap.
//! struct Collatz {
//!     cap: u64,
//! }
//!
//! impl SearchSpace for Collatz {
//!     type Config = u64;
//!     type Key = u64;
//!     type Edge = ();
//!     type Error = std::convert::Infallible;
//!
//!     fn initial(&self) -> Result<Vec<u64>, Self::Error> {
//!         Ok(vec![1])
//!     }
//!
//!     fn key(&self, config: &u64) -> u64 {
//!         *config
//!     }
//!
//!     fn expand(&self, config: &u64) -> Result<Vec<((), u64)>, Self::Error> {
//!         let mut next = vec![((), config * 2)];
//!         if config % 6 == 4 {
//!             next.push(((), (config - 1) / 3));
//!         }
//!         next.retain(|&(_, v)| v <= self.cap);
//!         Ok(next)
//!     }
//! }
//!
//! let outcome = explore(&Collatz { cap: 64 }, &ExploreOptions::default()).unwrap();
//! let report = match outcome {
//!     ExploreOutcome::Completed(report) => report,
//!     _ => unreachable!(),
//! };
//! assert!(report.nodes.iter().any(|n| n.config == 64));
//! // The parallel driver returns the identical result.
//! let parallel = ExploreOptions {
//!     threads: 4,
//!     ..ExploreOptions::default()
//! };
//! let outcome2 = explore(&Collatz { cap: 64 }, &parallel).unwrap();
//! assert!(matches!(outcome2, ExploreOutcome::Completed(r) if r.nodes.len() == report.nodes.len()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cancel;
mod driver;
mod progress;
mod seen;
mod space;
mod spec;

pub use budget::{BudgetBreach, BudgetMeter, BudgetResource};
pub use cancel::CancelToken;
pub use driver::{
    explore, ExploreOptions, ExploreOutcome, ExploreReport, ExploredNode, TraceOptions,
};
pub use progress::{ProgressEvent, ProgressSink};
pub use space::SearchSpace;
pub use spec::{Bounds, ExploreSpec, Extrapolation, Subsumption};
