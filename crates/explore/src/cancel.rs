//! Cooperative cancellation of in-flight explorations.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared flag that asks an in-flight exploration to stop.
///
/// Tokens are cheap to clone (all clones share one flag) and are checked by
/// the driver once per merge batch, so a cancelled search stops within one
/// batch of expansions rather than running to its limit. The default token is
/// *inert*: it can never be cancelled and costs nothing to check, so callers
/// that do not need cancellation pay nothing.
///
/// # Examples
///
/// ```
/// use explore::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
///
/// // The inert token can never fire.
/// let inert = CancelToken::default();
/// inert.cancel();
/// assert!(!inert.is_cancelled());
/// ```
#[derive(Clone, Default)]
pub struct CancelToken(Option<Arc<AtomicBool>>);

impl CancelToken {
    /// Creates a live token that [`cancel`](Self::cancel) can fire.
    pub fn new() -> Self {
        CancelToken(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Asks every exploration holding a clone of this token to stop. No-op
    /// on the inert default token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Returns `true` once [`cancel`](Self::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Returns `true` for the inert default token, which
    /// [`cancel`](Self::cancel) cannot fire. Callers that need a token that
    /// *can* fire (e.g. a deadline watchdog) must replace an inert one with
    /// [`CancelToken::new`].
    pub fn is_inert(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "CancelToken(inert)"),
            Some(_) => write!(f, "CancelToken(cancelled: {})", self.is_cancelled()),
        }
    }
}

/// Tokens compare by identity: two tokens are equal when cancelling one
/// observably cancels the other (same shared flag, or both inert). This keeps
/// option structs embedding a token comparable without pretending distinct
/// flags with equal states are interchangeable.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert_eq!(token, clone);
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn distinct_live_tokens_are_unequal() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        assert_eq!(CancelToken::default(), CancelToken::default());
        assert_ne!(a, CancelToken::default());
    }
}
