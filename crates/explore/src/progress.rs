//! Progress reporting for in-flight explorations.

use std::fmt;
use std::sync::Arc;

/// A milestone of an in-flight exploration, delivered through a
/// [`ProgressSink`].
///
/// Events are emitted by the single-threaded deterministic merge (and, for
/// [`ProgressEvent::Refinement`], by the refinement loop of the `transyt`
/// engine), so the sequence of events is identical for every thread count —
/// only their wall-clock spacing differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A merge batch committed: the counters describe the deterministic
    /// prefix explored so far.
    Batch {
        /// Configurations expanded so far.
        expanded: usize,
        /// Configurations discovered (stored in the seen set) so far.
        discovered: usize,
        /// Enqueued configurations skipped by pop-time subsumption so far.
        subsumption_skips: usize,
    },
    /// A breadth-first level finished.
    Level {
        /// Zero-based index of the completed level.
        index: usize,
        /// Number of configurations enqueued for the next level.
        frontier: usize,
    },
    /// A refinement iteration of the relative-timing engine started (the
    /// first pass is iteration `0`; each derived constraint set increments
    /// it). Emitted by `transyt::verify`, not by the driver itself.
    Refinement {
        /// Zero-based index of the starting exploration pass.
        iteration: usize,
    },
    /// The exploration observed its fired [`CancelToken`](crate::CancelToken)
    /// and stopped.
    Cancelled {
        /// Configurations expanded when the search stopped.
        expanded: usize,
    },
}

type Callback = dyn Fn(&ProgressEvent) + Send + Sync;

/// A callback receiving [`ProgressEvent`]s from in-flight explorations.
///
/// Sinks are cheap to clone (clones share one callback). The default sink is
/// *inert*: it receives nothing and costs one branch to check, so callers
/// that do not observe progress pay nothing. Mirrors the design of
/// [`CancelToken`](crate::CancelToken).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use explore::{ProgressEvent, ProgressSink};
///
/// let seen = Arc::new(AtomicUsize::new(0));
/// let counter = Arc::clone(&seen);
/// let sink = ProgressSink::new(move |event| {
///     if let ProgressEvent::Batch { expanded, .. } = event {
///         counter.store(*expanded, Ordering::Relaxed);
///     }
/// });
/// sink.emit(&ProgressEvent::Batch { expanded: 7, discovered: 9, subsumption_skips: 0 });
/// assert_eq!(seen.load(Ordering::Relaxed), 7);
///
/// // The inert sink swallows everything.
/// ProgressSink::default().emit(&ProgressEvent::Level { index: 0, frontier: 3 });
/// ```
#[derive(Clone, Default)]
pub struct ProgressSink(Option<Arc<Callback>>);

impl ProgressSink {
    /// Wraps a callback into a live sink.
    pub fn new(callback: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressSink(Some(Arc::new(callback)))
    }

    /// Delivers one event. No-op on the inert default sink.
    pub fn emit(&self, event: &ProgressEvent) {
        if let Some(callback) = &self.0 {
            callback(event);
        }
    }

    /// Returns `true` for the inert default sink (no callback attached).
    pub fn is_inert(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "ProgressSink(inert)"),
            Some(_) => write!(f, "ProgressSink(live)"),
        }
    }
}

/// Sinks compare by identity, like `CancelToken`: two sinks are equal when
/// they deliver to the same callback (or both are inert). This keeps option
/// structs embedding a sink comparable.
impl PartialEq for ProgressSink {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for ProgressSink {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn clones_share_one_callback_and_compare_by_identity() {
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        let sink = ProgressSink::new(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let clone = sink.clone();
        assert_eq!(sink, clone);
        assert!(!sink.is_inert());
        clone.emit(&ProgressEvent::Refinement { iteration: 0 });
        sink.emit(&ProgressEvent::Cancelled { expanded: 1 });
        assert_eq!(hits.load(Ordering::Relaxed), 2);

        let other = ProgressSink::new(|_| {});
        assert_ne!(sink, other);
        assert_eq!(ProgressSink::default(), ProgressSink::default());
        assert_ne!(sink, ProgressSink::default());
        assert!(ProgressSink::default().is_inert());
    }
}
