//! The exploration driver: sequential FIFO search and the deterministic
//! level-synchronous parallel search.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::budget::BudgetMeter;
use crate::cancel::CancelToken;
use crate::progress::{ProgressEvent, ProgressSink};
use crate::seen::SeenMap;
use crate::space::SearchSpace;

/// Options for [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Number of worker threads. `1` (the default) is the plain sequential
    /// breadth-first loop; higher values expand each breadth-first level in
    /// parallel. The result is identical for every value.
    pub threads: usize,
    /// Abort once more than this many configurations have been expanded.
    pub expanded_limit: usize,
    /// Abort once more than this many configurations have been discovered
    /// (stored in the seen set) at the moment another expansion starts.
    pub discovered_limit: usize,
    /// Record each node's `(edge, successor)` list in the report (needed by
    /// callers that rebuild a graph or replay the search; costs memory).
    pub record_edges: bool,
    /// Witness-trace options (parent tracking). The default records nothing,
    /// so the no-trace path keeps its memory profile untouched.
    pub trace: TraceOptions,
    /// Cooperative cancellation: the driver checks this token once per merge
    /// batch and returns [`ExploreOutcome::Cancelled`] as soon as it fires.
    /// The default token is inert and costs nothing.
    pub cancel: CancelToken,
    /// Progress reporting: the driver emits [`ProgressEvent::Batch`] every
    /// 32 committed expansions and at each level end, [`ProgressEvent::Level`]
    /// after every breadth-first level and [`ProgressEvent::Cancelled`] when
    /// the cancel token stops the search. Emission points are counted in
    /// committed merge order, so the stream is identical for every thread
    /// count. The default sink is inert and costs nothing.
    pub progress: ProgressSink,
    /// Per-exploration resource budgets: the driver checks the meter after
    /// every expansion, at the same deterministic merge point as
    /// [`expanded_limit`](Self::expanded_limit), and a breach fires the
    /// [`cancel`](Self::cancel) token and returns
    /// [`ExploreOutcome::Cancelled`] — so a breached budget aborts at the
    /// identical configuration count for every thread count. The default
    /// meter is inert and costs nothing.
    pub budget: BudgetMeter,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            threads: 1,
            expanded_limit: usize::MAX,
            discovered_limit: usize::MAX,
            record_edges: false,
            trace: TraceOptions::default(),
            cancel: CancelToken::default(),
            progress: ProgressSink::default(),
            budget: BudgetMeter::default(),
        }
    }
}

/// Options controlling witness-trace bookkeeping during an exploration.
///
/// Parent links are recorded by the single-threaded deterministic merge, so
/// they are identical for every [`ExploreOptions::threads`] value; turning
/// them on costs one `Option<(usize, Edge)>` per expanded node and per
/// frontier entry, and nothing at all when left off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOptions {
    /// Record, for every expanded node, the node that first discovered it and
    /// the edge it was discovered through (see [`ExploreReport::parents`] and
    /// [`ExploreReport::path_to`]).
    pub record_parents: bool,
}

impl TraceOptions {
    /// Options with parent tracking switched on.
    pub fn parents() -> Self {
        TraceOptions {
            record_parents: true,
        }
    }
}

/// One expanded configuration and (if recorded) its successor edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploredNode<C, E> {
    /// The configuration, as stored (interned).
    pub config: C,
    /// Its `(edge, successor)` expansion, in [`SearchSpace::expand`] order.
    /// Empty unless [`ExploreOptions::record_edges`] is set.
    pub successors: Vec<(E, C)>,
}

/// Result of a completed exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport<C, E> {
    /// Expanded configurations, in deterministic breadth-first order.
    pub nodes: Vec<ExploredNode<C, E>>,
    /// Number of configurations expanded (`nodes.len()`).
    pub expanded: usize,
    /// Number of configurations ever stored in the seen set (monotone count;
    /// under subsumption, later arrivals may prune earlier ones).
    pub discovered: usize,
    /// Enqueued configurations skipped without expansion because a subsuming
    /// configuration arrived after they were enqueued.
    pub subsumption_skips: usize,
    /// `true` if [`SearchSpace::should_halt`] stopped the search; the last
    /// node is then the halting configuration (with its successors recorded
    /// even when `record_edges` is off).
    pub halted: bool,
    /// Parent links, aligned with [`nodes`](Self::nodes): entry `i` names the
    /// node that first discovered `nodes[i]` and the edge it was discovered
    /// through (`None` for initial configurations). Empty unless
    /// [`TraceOptions::record_parents`] was set.
    pub parents: Vec<Option<(usize, E)>>,
}

impl<C, E: Clone> ExploreReport<C, E> {
    /// Reconstructs the breadth-first discovery path from an initial
    /// configuration to `nodes[node]` using the recorded parent links:
    /// returns the root node index and the `(edge, node index)` steps fired
    /// along the path. The path is a genuine path of the search space — every
    /// recorded parent actually produced its child through
    /// [`SearchSpace::expand`] — and is identical for every thread count.
    ///
    /// Returns `None` if parent tracking was off or `node` is out of range.
    pub fn path_to(&self, node: usize) -> Option<(usize, Vec<(E, usize)>)> {
        if self.parents.len() != self.nodes.len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut current = node;
        loop {
            match self.parents.get(current)? {
                None => break,
                Some((parent, edge)) => {
                    steps.push((edge.clone(), current));
                    current = *parent;
                }
            }
        }
        steps.reverse();
        Some((current, steps))
    }
}

/// Outcome of [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreOutcome<C, E> {
    /// The frontier drained (or the space halted the search).
    Completed(ExploreReport<C, E>),
    /// A limit of [`ExploreOptions`] was exceeded.
    LimitExceeded {
        /// Configurations expanded when the search aborted.
        expanded: usize,
        /// Configurations discovered when the search aborted.
        discovered: usize,
        /// Enqueued configurations skipped by pop-time subsumption before
        /// the search aborted.
        subsumption_skips: usize,
    },
    /// The [`ExploreOptions::cancel`] token fired; the search stopped at the
    /// next batch boundary without draining the frontier.
    Cancelled {
        /// Configurations expanded when the search was cancelled.
        expanded: usize,
        /// Configurations discovered when the search was cancelled.
        discovered: usize,
        /// Enqueued configurations skipped by pop-time subsumption before
        /// the cancellation.
        subsumption_skips: usize,
    },
}

impl<C, E> ExploreOutcome<C, E> {
    /// The report, if the exploration completed.
    pub fn report(&self) -> Option<&ExploreReport<C, E>> {
        match self {
            ExploreOutcome::Completed(report) => Some(report),
            ExploreOutcome::LimitExceeded { .. } | ExploreOutcome::Cancelled { .. } => None,
        }
    }
}

/// Explores `space` breadth-first and returns the expanded configurations in
/// deterministic order.
///
/// The search keeps, per dedup key, the stored configurations maximal under
/// [`SearchSpace::subsumes`]; a successor subsumed by a stored configuration
/// is dropped, and an enqueued configuration that has been pruned by a later,
/// subsuming arrival is skipped when its turn comes (the pop-time subsumption
/// check — with exact deduplication neither ever triggers spuriously).
///
/// With `threads > 1` each breadth-first level is expanded speculatively in
/// parallel (workers claim chunks of the frozen frontier from an atomic
/// cursor) and committed by a single-threaded merge that walks the level in
/// order, so the outcome — including all counters — is identical to the
/// sequential search.
///
/// # Errors
///
/// Returns the first [`SearchSpace::Error`] in deterministic breadth-first
/// order (errors of speculatively expanded configurations that the merge
/// skips are discarded, exactly as if they had never been expanded).
pub fn explore<S: SearchSpace>(
    space: &S,
    options: &ExploreOptions,
) -> Result<ExploreOutcome<S::Config, S::Edge>, S::Error> {
    let threads = options.threads.max(1);
    let seen: SeenMap<S> = SeenMap::new(if threads == 1 { 1 } else { threads * 4 });
    // With exact deduplication (the default `subsumes`) a stored
    // configuration is never pruned, so the pop-time staleness check can
    // never fire and is skipped entirely.
    let stale_possible = space.uses_subsumption();

    let tracing = options.trace.record_parents;

    let mut nodes: Vec<ExploredNode<S::Config, S::Edge>> = Vec::new();
    let mut parents: Vec<Option<(usize, S::Edge)>> = Vec::new();
    let mut expanded = 0usize;
    let mut discovered = 0usize;
    let mut subsumption_skips = 0usize;
    let mut halted = false;

    let mut frontier: Vec<S::Config> = Vec::new();
    // Aligned with `frontier` when tracing: the committed node that
    // discovered each enqueued configuration, and through which edge.
    let mut frontier_parents: Vec<Option<(usize, S::Edge)>> = Vec::new();
    for config in space.initial()? {
        if let Some(stored) = seen.push(space, config) {
            discovered += 1;
            frontier.push(stored);
            if tracing {
                frontier_parents.push(None);
            }
        }
    }

    // Cap on the number of configurations expanded speculatively before the
    // merge commits them: bounds the memory held in in-flight successor
    // lists and keeps the prefilter snapshot fresh, which shrinks the
    // speculative waste under subsumption. Batch boundaries are a pure
    // function of the frontier, so determinism is unaffected.
    let batch_size = threads * 32;

    // Progress cadence: `Batch` events fire when `expanded` crosses a
    // multiple of this stride (plus once at each level end), NOT per merge
    // batch — merge batches grow with the thread count, and the progress
    // stream is promised to be identical for every thread count.
    const PROGRESS_STRIDE: usize = 32;
    let mut last_progress = 0usize;

    let mut level = 0usize;
    'search: while !frontier.is_empty() && !halted {
        let mut next: Vec<S::Config> = Vec::new();
        let mut next_parents: Vec<Option<(usize, S::Edge)>> = Vec::new();
        for batch_start in (0..frontier.len()).step_by(batch_size.max(1)) {
            // Cooperative cancellation, checked once per merge batch so a
            // cancelled search stops within one batch of expansions. The
            // counters describe the committed (deterministic) prefix.
            if options.cancel.is_cancelled() {
                options
                    .progress
                    .emit(&ProgressEvent::Cancelled { expanded });
                return Ok(ExploreOutcome::Cancelled {
                    expanded,
                    discovered,
                    subsumption_skips,
                });
            }
            let batch = &frontier[batch_start..(batch_start + batch_size).min(frontier.len())];
            // Expand the batch speculatively when it is wide enough to
            // amortise thread startup; otherwise expand lazily during the
            // merge (which also skips expansion work for pruned entries).
            let mut expansions = if threads > 1 && batch.len() >= threads * 2 {
                Some(expand_level(
                    space,
                    batch,
                    threads,
                    &seen,
                    !options.record_edges,
                ))
            } else {
                None
            };

            // Deterministic merge: walk the batch in order and perform
            // exactly the operations of the sequential FIFO loop.
            for (i, config) in batch.iter().enumerate() {
                if stale_possible && !seen.contains(space, config) {
                    seen.note_skip(space, config);
                    subsumption_skips += 1;
                    continue;
                }
                if discovered > options.discovered_limit {
                    return Ok(ExploreOutcome::LimitExceeded {
                        expanded,
                        discovered,
                        subsumption_skips,
                    });
                }
                expanded += 1;
                if expanded > options.expanded_limit {
                    return Ok(ExploreOutcome::LimitExceeded {
                        expanded,
                        discovered,
                        subsumption_skips,
                    });
                }
                // Resource budgets, checked at the same deterministic merge
                // point as the expanded limit. A breach cancels the search:
                // the meter records what went over, the token stops any
                // cooperating siblings (e.g. a witness search), and the
                // caller classifies the cancelled outcome as a budget abort.
                if options.budget.check(expanded).is_some() {
                    options.cancel.cancel();
                    options
                        .progress
                        .emit(&ProgressEvent::Cancelled { expanded });
                    return Ok(ExploreOutcome::Cancelled {
                        expanded,
                        discovered,
                        subsumption_skips,
                    });
                }
                let (halt, successors) = match expansions.as_mut().and_then(|slots| slots[i].take())
                {
                    Some(result) => result?,
                    None => {
                        let successors = space.expand(config)?;
                        let halt = space.should_halt(config, &successors);
                        (halt, successors)
                    }
                };
                let node_index = nodes.len();
                if tracing {
                    parents.push(frontier_parents[batch_start + i].clone());
                }
                if halt {
                    nodes.push(ExploredNode {
                        config: config.clone(),
                        successors,
                    });
                    halted = true;
                    break 'search;
                }
                for (edge, successor) in &successors {
                    if let Some(stored) = seen.push(space, successor.clone()) {
                        discovered += 1;
                        next.push(stored);
                        if tracing {
                            next_parents.push(Some((node_index, edge.clone())));
                        }
                    }
                }
                nodes.push(ExploredNode {
                    config: config.clone(),
                    successors: if options.record_edges {
                        successors
                    } else {
                        Vec::new()
                    },
                });
                if expanded.is_multiple_of(PROGRESS_STRIDE) {
                    last_progress = expanded;
                    options.progress.emit(&ProgressEvent::Batch {
                        expanded,
                        discovered,
                        subsumption_skips,
                    });
                }
            }
        }
        if expanded > last_progress {
            last_progress = expanded;
            options.progress.emit(&ProgressEvent::Batch {
                expanded,
                discovered,
                subsumption_skips,
            });
        }
        options.progress.emit(&ProgressEvent::Level {
            index: level,
            frontier: next.len(),
        });
        level += 1;
        frontier = next;
        frontier_parents = next_parents;
    }

    Ok(ExploreOutcome::Completed(ExploreReport {
        nodes,
        expanded,
        discovered,
        subsumption_skips,
        halted,
        parents,
    }))
}

type Expansion<S> = Result<
    (
        bool,
        Vec<(<S as SearchSpace>::Edge, <S as SearchSpace>::Config)>,
    ),
    <S as SearchSpace>::Error,
>;

/// Expands every configuration of `frontier` on `threads` workers. Workers
/// claim chunks through a shared atomic cursor (cheap work stealing over a
/// frozen level) and never mutate the seen set, so the per-configuration
/// results are independent of scheduling. [`SearchSpace::should_halt`] is
/// evaluated on the **unfiltered** expansion (matching the sequential path)
/// and its verdict is carried alongside the successors.
///
/// When `prefilter` is set (edge recording off), workers consult the seen
/// shards to drop successors already subsumed by stored configurations and —
/// under genuine subsumption — to skip expanding entries that have been
/// pruned since they were enqueued. Both checks read the frozen pre-batch
/// state of the map and can only discard work the merge would discard
/// anyway; the successor list of a halting configuration is never filtered.
fn expand_level<S: SearchSpace>(
    space: &S,
    frontier: &[S::Config],
    threads: usize,
    seen: &SeenMap<S>,
    prefilter: bool,
) -> Vec<Option<Expansion<S>>> {
    let cursor = AtomicUsize::new(0);
    let chunk = (frontier.len() / (threads * 4)).max(1);
    let stale_possible = space.uses_subsumption();
    let collected: Mutex<Vec<(usize, Expansion<S>)>> =
        Mutex::new(Vec::with_capacity(frontier.len()));

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Expansion<S>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= frontier.len() {
                        break;
                    }
                    let end = (start + chunk).min(frontier.len());
                    for (i, config) in frontier.iter().enumerate().take(end).skip(start) {
                        if prefilter && stale_possible && !seen.contains(space, config) {
                            // Pruned since it was enqueued: the merge will
                            // skip it, so its expansion is never read.
                            local.push((i, Ok((false, Vec::new()))));
                            continue;
                        }
                        let result = space.expand(config).map(|mut successors| {
                            let halt = space.should_halt(config, &successors);
                            if prefilter && !halt {
                                successors.retain(|(_, c)| !seen.covers(space, c));
                            }
                            (halt, successors)
                        });
                        local.push((i, result));
                    }
                }
                collected
                    .lock()
                    .expect("expansion collector poisoned")
                    .extend(local);
            });
        }
    });

    let mut slots: Vec<Option<Expansion<S>>> = frontier.iter().map(|_| None).collect();
    for (i, result) in collected
        .into_inner()
        .expect("expansion collector poisoned")
    {
        slots[i] = Some(result);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    /// Bounded grid walk: configs are `(x, y)`, moves increment one
    /// coordinate. Exact dedup, edge labels name the axis.
    struct Grid {
        side: u64,
    }

    impl SearchSpace for Grid {
        type Config = (u64, u64);
        type Key = (u64, u64);
        type Edge = char;
        type Error = Infallible;

        fn initial(&self) -> Result<Vec<(u64, u64)>, Infallible> {
            Ok(vec![(0, 0)])
        }

        fn key(&self, config: &(u64, u64)) -> (u64, u64) {
            *config
        }

        fn expand(&self, &(x, y): &(u64, u64)) -> Result<Vec<(char, (u64, u64))>, Infallible> {
            let mut next = Vec::new();
            if x + 1 < self.side {
                next.push(('x', (x + 1, y)));
            }
            if y + 1 < self.side {
                next.push(('y', (x, y + 1)));
            }
            Ok(next)
        }
    }

    /// Interval space with genuine subsumption: configs are `(lo, hi)`
    /// intervals at a single key; wider intervals subsume narrower ones.
    struct Widening;

    impl SearchSpace for Widening {
        type Config = (u64, u64);
        type Key = ();
        type Edge = ();
        type Error = Infallible;

        fn initial(&self) -> Result<Vec<(u64, u64)>, Infallible> {
            Ok(vec![(4, 4)])
        }

        fn key(&self, _: &(u64, u64)) {}

        fn expand(&self, &(lo, hi): &(u64, u64)) -> Result<Vec<((), (u64, u64))>, Infallible> {
            if hi - lo >= 8 {
                return Ok(Vec::new());
            }
            // Two successors: a narrow shifted interval and a widening one.
            // The widening successor subsumes the narrow one, which must
            // then be skipped at pop time.
            Ok(vec![((), (lo, hi + 1)), ((), (lo - 1, hi + 1))])
        }

        fn subsumes(&self, stored: &(u64, u64), candidate: &(u64, u64)) -> bool {
            stored.0 <= candidate.0 && stored.1 >= candidate.1
        }

        fn uses_subsumption(&self) -> bool {
            true
        }
    }

    fn completed<S: SearchSpace>(
        space: &S,
        options: &ExploreOptions,
    ) -> ExploreReport<S::Config, S::Edge>
    where
        S::Error: std::fmt::Debug,
    {
        match explore(space, options).expect("no error") {
            ExploreOutcome::Completed(report) => report,
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn sequential_bfs_visits_each_config_once_in_level_order() {
        let report = completed(
            &Grid { side: 4 },
            &ExploreOptions {
                record_edges: true,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(report.expanded, 16);
        assert_eq!(report.discovered, 16);
        assert_eq!(report.subsumption_skips, 0);
        assert!(!report.halted);
        // Breadth-first: Manhattan distance never decreases.
        let distances: Vec<u64> = report
            .nodes
            .iter()
            .map(|n| n.config.0 + n.config.1)
            .collect();
        assert!(distances.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for side in [1u64, 2, 5, 9] {
            let sequential = completed(
                &Grid { side },
                &ExploreOptions {
                    record_edges: true,
                    ..ExploreOptions::default()
                },
            );
            for threads in [2, 4, 8] {
                let parallel = completed(
                    &Grid { side },
                    &ExploreOptions {
                        threads,
                        record_edges: true,
                        ..ExploreOptions::default()
                    },
                );
                assert_eq!(sequential, parallel, "threads={threads} side={side}");
            }
        }
    }

    #[test]
    fn subsumption_prunes_enqueued_configs() {
        let sequential = completed(&Widening, &ExploreOptions::default());
        // The widening successor always subsumes the narrow one, so narrow
        // intervals enqueued earlier get pruned and skipped.
        assert!(sequential.subsumption_skips > 0, "no pop-time skips");
        assert!(sequential.expanded < sequential.discovered);
        let parallel = completed(
            &Widening,
            &ExploreOptions {
                threads: 4,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn expanded_limit_aborts_deterministically() {
        for threads in [1, 4] {
            let outcome = explore(
                &Grid { side: 10 },
                &ExploreOptions {
                    threads,
                    expanded_limit: 7,
                    ..ExploreOptions::default()
                },
            )
            .expect("no error");
            match outcome {
                ExploreOutcome::LimitExceeded {
                    expanded,
                    discovered,
                    subsumption_skips,
                } => {
                    assert_eq!(expanded, 8, "aborts on the config exceeding the limit");
                    assert!(discovered >= expanded);
                    assert_eq!(subsumption_skips, 0);
                }
                other => panic!("expected limit abort, got {other:?}"),
            }
        }
    }

    #[test]
    fn config_budget_aborts_deterministically_and_fires_cancel() {
        use crate::budget::{BudgetMeter, BudgetResource};
        for threads in [1, 4] {
            let budget = BudgetMeter::new(Some(7), None);
            let cancel = CancelToken::new();
            let outcome = explore(
                &Grid { side: 10 },
                &ExploreOptions {
                    threads,
                    budget: budget.clone(),
                    cancel: cancel.clone(),
                    ..ExploreOptions::default()
                },
            )
            .expect("no error");
            match outcome {
                ExploreOutcome::Cancelled { expanded, .. } => {
                    assert_eq!(
                        expanded, 8,
                        "threads={threads}: aborts on the breaching config"
                    );
                }
                other => panic!("expected budget cancellation, got {other:?}"),
            }
            let breach = budget.breach().expect("breach recorded");
            assert_eq!(breach.resource, BudgetResource::Configs);
            assert_eq!(breach.used, 8);
            assert_eq!(breach.limit, 7);
            assert!(cancel.is_cancelled(), "breach must fire the cancel token");
        }
    }

    #[test]
    fn zone_byte_budget_aborts_once_charged_over() {
        use crate::budget::{BudgetMeter, BudgetResource};
        let budget = BudgetMeter::new(None, Some(10));
        budget.charge_zone_bytes(11);
        let outcome = explore(
            &Grid { side: 4 },
            &ExploreOptions {
                budget: budget.clone(),
                cancel: CancelToken::new(),
                ..ExploreOptions::default()
            },
        )
        .expect("no error");
        assert!(matches!(
            outcome,
            ExploreOutcome::Cancelled { expanded: 1, .. }
        ));
        assert_eq!(
            budget.breach().map(|b| b.resource),
            Some(BudgetResource::ZoneBytes)
        );
    }

    #[test]
    fn inert_budget_changes_nothing() {
        use crate::budget::BudgetMeter;
        let plain = completed(&Grid { side: 5 }, &ExploreOptions::default());
        let with_meter = completed(
            &Grid { side: 5 },
            &ExploreOptions {
                budget: BudgetMeter::default(),
                ..ExploreOptions::default()
            },
        );
        assert_eq!(plain, with_meter);
    }

    /// A grid whose expansion fires a cancel token after a fixed number of
    /// expand calls — models an outside cancellation arriving mid-search.
    struct CancellingGrid {
        grid: Grid,
        token: CancelToken,
        after: usize,
        calls: AtomicUsize,
    }

    impl SearchSpace for CancellingGrid {
        type Config = (u64, u64);
        type Key = (u64, u64);
        type Edge = char;
        type Error = Infallible;

        fn initial(&self) -> Result<Vec<(u64, u64)>, Infallible> {
            self.grid.initial()
        }

        fn key(&self, config: &(u64, u64)) -> (u64, u64) {
            *config
        }

        fn expand(&self, config: &(u64, u64)) -> Result<Vec<(char, (u64, u64))>, Infallible> {
            if self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
                self.token.cancel();
            }
            self.grid.expand(config)
        }
    }

    #[test]
    fn cancellation_halts_early_and_reports_cancelled() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            let space = CancellingGrid {
                grid: Grid { side: 32 },
                token: token.clone(),
                after: 10,
                calls: AtomicUsize::new(0),
            };
            let outcome = explore(
                &space,
                &ExploreOptions {
                    threads,
                    cancel: token,
                    ..ExploreOptions::default()
                },
            )
            .expect("no error");
            match outcome {
                ExploreOutcome::Cancelled {
                    expanded,
                    discovered,
                    ..
                } => {
                    // Far fewer than the 1024 grid configurations were
                    // expanded: the search stopped at a batch boundary.
                    assert!(expanded >= 10, "threads={threads}: expanded={expanded}");
                    assert!(expanded < 1024, "threads={threads}: expanded={expanded}");
                    assert!(discovered >= expanded);
                }
                other => panic!("expected cancellation, got {other:?}"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_expansion() {
        let token = CancelToken::new();
        token.cancel();
        let outcome = explore(
            &Grid { side: 4 },
            &ExploreOptions {
                cancel: token,
                ..ExploreOptions::default()
            },
        )
        .expect("no error");
        assert!(matches!(
            outcome,
            ExploreOutcome::Cancelled { expanded: 0, .. }
        ));
        assert!(outcome.report().is_none());
    }

    #[test]
    fn inert_token_changes_nothing() {
        let plain = completed(&Grid { side: 5 }, &ExploreOptions::default());
        let with_token = completed(
            &Grid { side: 5 },
            &ExploreOptions {
                cancel: CancelToken::default(),
                ..ExploreOptions::default()
            },
        );
        assert_eq!(plain, with_token);
    }

    #[test]
    fn discovered_limit_aborts_before_expanding() {
        let outcome = explore(
            &Grid { side: 10 },
            &ExploreOptions {
                discovered_limit: 0,
                ..ExploreOptions::default()
            },
        )
        .expect("no error");
        assert!(matches!(
            outcome,
            ExploreOutcome::LimitExceeded { expanded: 0, .. }
        ));
        assert!(outcome.report().is_none());
    }

    #[test]
    fn progress_events_are_identical_across_thread_counts() {
        use crate::progress::{ProgressEvent, ProgressSink};
        use std::sync::{Arc, Mutex};

        let run = |threads| {
            let events: Arc<Mutex<Vec<ProgressEvent>>> = Arc::default();
            let sink_events = Arc::clone(&events);
            let options = ExploreOptions {
                threads,
                progress: ProgressSink::new(move |event| {
                    sink_events.lock().unwrap().push(*event);
                }),
                ..ExploreOptions::default()
            };
            completed(&Grid { side: 6 }, &options);
            let collected = events.lock().unwrap().clone();
            collected
        };
        let sequential = run(1);
        assert!(!sequential.is_empty());
        // Final batch counters match the completed report, and levels count
        // the grid's 2*side - 1 breadth-first diagonals.
        let batches: Vec<_> = sequential
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Batch { .. }))
            .collect();
        assert!(
            matches!(
                batches.last(),
                Some(ProgressEvent::Batch {
                    expanded: 36,
                    discovered: 36,
                    ..
                })
            ),
            "{batches:?}"
        );
        let levels = sequential
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Level { .. }))
            .count();
        assert_eq!(levels, 11);
        assert_eq!(sequential, run(4), "threads 1 vs 4 event stream differs");
    }

    #[test]
    fn cancellation_emits_a_cancelled_event() {
        use crate::progress::{ProgressEvent, ProgressSink};
        use std::sync::{Arc, Mutex};

        let token = CancelToken::new();
        token.cancel();
        let events: Arc<Mutex<Vec<ProgressEvent>>> = Arc::default();
        let sink_events = Arc::clone(&events);
        let outcome = explore(
            &Grid { side: 4 },
            &ExploreOptions {
                cancel: token,
                progress: ProgressSink::new(move |event| {
                    sink_events.lock().unwrap().push(*event);
                }),
                ..ExploreOptions::default()
            },
        )
        .expect("no error");
        assert!(matches!(outcome, ExploreOutcome::Cancelled { .. }));
        assert_eq!(
            events.lock().unwrap().as_slice(),
            &[ProgressEvent::Cancelled { expanded: 0 }]
        );
    }

    /// A space that halts on a goal configuration.
    struct GoalGrid {
        side: u64,
        goal: (u64, u64),
    }

    impl SearchSpace for GoalGrid {
        type Config = (u64, u64);
        type Key = (u64, u64);
        type Edge = char;
        type Error = Infallible;

        fn initial(&self) -> Result<Vec<(u64, u64)>, Infallible> {
            Ok(vec![(0, 0)])
        }

        fn key(&self, config: &(u64, u64)) -> (u64, u64) {
            *config
        }

        fn expand(&self, config: &(u64, u64)) -> Result<Vec<(char, (u64, u64))>, Infallible> {
            Grid { side: self.side }.expand(config)
        }

        fn should_halt(&self, config: &(u64, u64), _: &[(char, (u64, u64))]) -> bool {
            *config == self.goal
        }
    }

    #[test]
    fn halting_stops_at_the_first_goal_in_bfs_order() {
        for threads in [1, 4] {
            let report = completed(
                &GoalGrid {
                    side: 6,
                    goal: (2, 1),
                },
                &ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                },
            );
            assert!(report.halted);
            assert_eq!(report.nodes.last().unwrap().config, (2, 1));
            // Only configs at distance <= 3 can have been expanded.
            assert!(report.nodes.iter().all(|n| n.config.0 + n.config.1 <= 3));
        }
    }

    #[test]
    fn parent_tracking_reconstructs_breadth_first_paths() {
        for threads in [1, 4] {
            let report = completed(
                &Grid { side: 4 },
                &ExploreOptions {
                    threads,
                    trace: TraceOptions::parents(),
                    ..ExploreOptions::default()
                },
            );
            assert_eq!(report.parents.len(), report.nodes.len());
            // Every node's path replays through the grid moves back to the
            // origin, and its length is the node's Manhattan distance.
            for (i, node) in report.nodes.iter().enumerate() {
                let (root, steps) = report.path_to(i).expect("parents recorded");
                assert_eq!(report.nodes[root].config, (0, 0));
                assert_eq!(steps.len() as u64, node.config.0 + node.config.1);
                let mut at = (0u64, 0u64);
                for (edge, target) in &steps {
                    match edge {
                        'x' => at.0 += 1,
                        'y' => at.1 += 1,
                        other => panic!("unexpected edge {other}"),
                    }
                    assert_eq!(report.nodes[*target].config, at);
                }
                assert_eq!(at, node.config);
            }
        }
    }

    #[test]
    fn parent_tracking_is_identical_across_thread_counts() {
        let options = |threads| ExploreOptions {
            threads,
            trace: TraceOptions::parents(),
            ..ExploreOptions::default()
        };
        let sequential = completed(&Widening, &options(1));
        let parallel = completed(&Widening, &options(4));
        assert_eq!(sequential, parallel);
        assert!(!sequential.parents.is_empty());
    }

    #[test]
    fn path_to_without_tracking_returns_none() {
        let report = completed(&Grid { side: 3 }, &ExploreOptions::default());
        assert!(report.parents.is_empty());
        assert!(report.path_to(0).is_none());
    }

    #[test]
    fn halting_node_has_a_path() {
        let report = completed(
            &GoalGrid {
                side: 6,
                goal: (2, 1),
            },
            &ExploreOptions {
                trace: TraceOptions::parents(),
                ..ExploreOptions::default()
            },
        );
        assert!(report.halted);
        let last = report.nodes.len() - 1;
        let (root, steps) = report.path_to(last).expect("parents recorded");
        assert_eq!(report.nodes[root].config, (0, 0));
        assert_eq!(steps.len(), 3);
        assert_eq!(report.nodes[steps.last().unwrap().1].config, (2, 1));
    }

    /// A space whose expansion fails on one configuration.
    struct Failing;

    impl SearchSpace for Failing {
        type Config = u32;
        type Key = u32;
        type Edge = ();
        type Error = String;

        fn initial(&self) -> Result<Vec<u32>, String> {
            Ok(vec![0])
        }

        fn key(&self, config: &u32) -> u32 {
            *config
        }

        fn expand(&self, config: &u32) -> Result<Vec<((), u32)>, String> {
            if *config == 5 {
                return Err("boom at 5".to_owned());
            }
            Ok(vec![((), config + 1), ((), config + 2)])
        }
    }

    #[test]
    fn errors_surface_at_the_deterministic_position() {
        for threads in [1, 4] {
            let err = explore(
                &Failing,
                &ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                },
            )
            .unwrap_err();
            assert_eq!(err, "boom at 5");
        }
    }
}
