//! The shared exploration options core.
//!
//! Every exploration-backed options struct in the workspace —
//! `dbm::ZoneExplorationOptions`, `stg::ExpandOptions`,
//! `transyt::VerifyOptions` — used to re-declare the same knobs (threads,
//! limits, cancellation, progress). They now embed one [`ExploreSpec`], and
//! the session layer's `TaskSpec` lowers to it in exactly one place, so
//! adding the next knob is a one-struct change instead of a five-struct
//! threading exercise.

use std::fmt;

use crate::budget::BudgetMeter;
use crate::cancel::CancelToken;
use crate::progress::ProgressSink;

/// Zone-abstraction level of a timed exploration.
///
/// Only the zone-graph explorer (`dbm`) interprets this; untimed searches
/// carry it inert. The abstractions are *exact for discrete-state
/// reachability*: every mode reports the identical reachable / violating /
/// deadlocked state sets, differing only in how many symbolic configurations
/// it takes to get there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Extrapolation {
    /// Exact zones, no abstraction (the pre-abstraction baseline; may not
    /// terminate on cyclic systems with unbounded drift).
    None,
    /// Coarse LU-bounds extrapolation (Behrmann et al.): zone bounds above
    /// the per-clock lower/upper delay constants are widened away.
    Lu,
    /// LU-bounds extrapolation plus active-clock reduction: clocks of
    /// disabled events are projected out before extrapolating. The default.
    #[default]
    LuActive,
}

impl Extrapolation {
    /// The wire name: `none`, `lu` or `lu-active`.
    pub fn name(self) -> &'static str {
        match self {
            Extrapolation::None => "none",
            Extrapolation::Lu => "lu",
            Extrapolation::LuActive => "lu-active",
        }
    }

    /// Parses a wire name back into a mode.
    pub fn parse(name: &str) -> Option<Extrapolation> {
        match name {
            "none" => Some(Extrapolation::None),
            "lu" => Some(Extrapolation::Lu),
            "lu-active" => Some(Extrapolation::LuActive),
            _ => None,
        }
    }
}

impl fmt::Display for Extrapolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which LU bound vectors feed the zone abstraction (extrapolation and the
/// aLU coverage check).
///
/// Only the zone-graph explorer (`dbm`) interprets this; untimed searches
/// carry it inert. Both choices are *exact for discrete-state reachability*
/// — they report identical reachable / violating / deadlocked state sets —
/// and `local` bounds are entrywise ≤ the `global` ones, so the abstraction
/// can only get coarser (never more configurations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Bounds {
    /// One LU vector for the whole model: the per-clock maxima over every
    /// guard and invariant (the pre-static-analysis behaviour).
    Global,
    /// Per-discrete-state LU vectors from backward static guard analysis: a
    /// clock's bound at a state is the maximum over the constraints it can
    /// face from that state before its next reset. Subsumes active-clock
    /// reduction statically (a disabled clock faces nothing until reset, so
    /// its local bounds are zero). The default.
    #[default]
    Local,
}

impl Bounds {
    /// The wire name: `global` or `local`.
    pub fn name(self) -> &'static str {
        match self {
            Bounds::Global => "global",
            Bounds::Local => "local",
        }
    }

    /// Parses a wire name back into a bounds choice.
    pub fn parse(name: &str) -> Option<Bounds> {
        match name {
            "global" => Some(Bounds::Global),
            "local" => Some(Bounds::Local),
            _ => None,
        }
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coverage policy of the seen-set: when does a stored configuration make a
/// candidate redundant?
///
/// Only searches with a genuine subsumption order (zone exploration in
/// `dbm`) interpret this; exact-dedup searches carry it inert. Every policy
/// is *exact for discrete-state reachability* — the reported reachable /
/// violating / deadlocked state sets are identical, only the number of
/// symbolic configurations explored differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Subsumption {
    /// Exact deduplication: a candidate is redundant only if an identical
    /// configuration is stored.
    Exact,
    /// Convex inclusion: a candidate zone is redundant if a stored zone
    /// contains it entrywise (`Z ⊆ Z'`).
    Inclusion,
    /// Non-convex aLU simulation coverage (Herbreteau–Srivathsan–
    /// Walukiewicz): a candidate zone is redundant if it is included in the
    /// aLU abstraction of a stored zone (`Z ⊆ aLU(Z')`), checked per clock
    /// pair without ever materialising the non-convex widened zone. Strictly
    /// coarser than convex inclusion, still exact for reachability. The
    /// default.
    #[default]
    Alu,
}

impl Subsumption {
    /// The wire name: `exact`, `inclusion` or `alu`.
    pub fn name(self) -> &'static str {
        match self {
            Subsumption::Exact => "exact",
            Subsumption::Inclusion => "inclusion",
            Subsumption::Alu => "alu",
        }
    }

    /// Parses a wire name back into a policy. The pre-policy boolean spellings
    /// stay accepted: `on` meant convex inclusion, `off` meant exact dedup.
    pub fn parse(name: &str) -> Option<Subsumption> {
        match name {
            "exact" | "off" => Some(Subsumption::Exact),
            "inclusion" | "on" => Some(Subsumption::Inclusion),
            "alu" => Some(Subsumption::Alu),
            _ => None,
        }
    }
}

impl fmt::Display for Subsumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The exploration knobs shared by every search in the workspace.
///
/// Embedded by `dbm::ZoneExplorationOptions`, `stg::ExpandOptions` and
/// `transyt::VerifyOptions` (each of which only adds its domain-specific
/// fields on top), lowered from the session layer's `TaskSpec` in one place,
/// and parsed from CLI flags and server query strings through one table.
///
/// # Examples
///
/// ```
/// use explore::{Bounds, ExploreSpec, Extrapolation, Subsumption};
///
/// let spec = ExploreSpec {
///     threads: 4,
///     limit: Some(10_000),
///     ..ExploreSpec::default()
/// };
/// assert_eq!(spec.subsumption, Subsumption::Alu);
/// assert_eq!(spec.extrapolation, Extrapolation::LuActive);
/// assert_eq!(spec.bounds, Bounds::Local);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Number of worker threads (`1` = sequential; any value produces the
    /// identical result).
    pub threads: usize,
    /// Subsumption policy where the search supports it (zone coverage in
    /// the DBM explorer); ignored by exact-dedup searches.
    pub subsumption: Subsumption,
    /// Exploration size limit (configurations, markings, …); `None` lets
    /// each consumer apply its own default.
    pub limit: Option<usize>,
    /// Zone-abstraction level (timed explorations only).
    pub extrapolation: Extrapolation,
    /// LU bound vectors feeding the zone abstraction (timed explorations
    /// only): one global vector or per-state vectors from static analysis.
    pub bounds: Bounds,
    /// Cooperative cancellation: a search whose token fires stops at the
    /// next batch boundary. The default token is inert.
    pub cancel: CancelToken,
    /// Progress reporting: fed with events from the deterministic merge.
    /// The default sink is inert.
    pub progress: ProgressSink,
    /// Per-exploration resource budgets (configurations, zone bytes),
    /// checked deterministically by the driver. The default meter is inert.
    pub budget: BudgetMeter,
}

impl Default for ExploreSpec {
    fn default() -> Self {
        ExploreSpec {
            threads: 1,
            subsumption: Subsumption::default(),
            limit: None,
            extrapolation: Extrapolation::default(),
            bounds: Bounds::default(),
            cancel: CancelToken::default(),
            progress: ProgressSink::default(),
            budget: BudgetMeter::default(),
        }
    }
}

impl ExploreSpec {
    /// A default spec with `threads` workers — the most common override.
    pub fn threaded(threads: usize) -> ExploreSpec {
        ExploreSpec {
            threads,
            ..ExploreSpec::default()
        }
    }

    /// The size limit the consumer should enforce: the explicit limit, or
    /// `default` when none was set.
    pub fn limit_or(&self, default: usize) -> usize {
        self.limit.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_names_round_trip() {
        for mode in [
            Extrapolation::None,
            Extrapolation::Lu,
            Extrapolation::LuActive,
        ] {
            assert_eq!(Extrapolation::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(Extrapolation::parse("fancy"), None);
        assert_eq!(Extrapolation::default(), Extrapolation::LuActive);
    }

    #[test]
    fn bounds_names_round_trip() {
        for bounds in [Bounds::Global, Bounds::Local] {
            assert_eq!(Bounds::parse(bounds.name()), Some(bounds));
            assert_eq!(bounds.to_string(), bounds.name());
        }
        assert_eq!(Bounds::parse("fancy"), None);
        assert_eq!(Bounds::default(), Bounds::Local);
    }

    #[test]
    fn subsumption_names_round_trip() {
        for policy in [Subsumption::Exact, Subsumption::Inclusion, Subsumption::Alu] {
            assert_eq!(Subsumption::parse(policy.name()), Some(policy));
            assert_eq!(policy.to_string(), policy.name());
        }
        // The pre-policy boolean spellings stay accepted.
        assert_eq!(Subsumption::parse("on"), Some(Subsumption::Inclusion));
        assert_eq!(Subsumption::parse("off"), Some(Subsumption::Exact));
        assert_eq!(Subsumption::parse("fancy"), None);
        assert_eq!(Subsumption::default(), Subsumption::Alu);
    }

    #[test]
    fn spec_defaults_and_limit_resolution() {
        let spec = ExploreSpec::default();
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.subsumption, Subsumption::Alu);
        assert_eq!(spec.bounds, Bounds::Local);
        assert_eq!(spec.limit, None);
        assert_eq!(spec.limit_or(42), 42);
        assert_eq!(ExploreSpec::threaded(8).threads, 8);
        let limited = ExploreSpec {
            limit: Some(7),
            ..ExploreSpec::default()
        };
        assert_eq!(limited.limit_or(42), 7);
    }
}
