//! The [`SearchSpace`] trait: what a breadth-first exploration problem must
//! provide.

use std::hash::Hash;

/// A breadth-first exploration problem.
///
/// Implementations must be cheap to query concurrently: [`expand`] is called
/// from worker threads (hence the `Sync` supertrait) and must be a **pure
/// function** of the configuration — the deterministic parallel driver relies
/// on being able to expand speculatively and discard results.
///
/// [`expand`]: SearchSpace::expand
pub trait SearchSpace: Sync {
    /// One exploration configuration (e.g. a state, a marking, or a
    /// `(state, zone)` pair).
    type Config: Clone + PartialEq + Send + Sync;

    /// Deduplication key. Configurations with *different* keys never
    /// interact; configurations with the same key are candidates for
    /// subsumption (see [`subsumes`](SearchSpace::subsumes)).
    type Key: Clone + Eq + Hash + Send + Sync;

    /// Label attached to a generated successor (e.g. the event that fired).
    /// Use `()` when callers do not need edges.
    type Edge: Clone + Send;

    /// Error aborting the whole exploration (use
    /// [`std::convert::Infallible`] for total spaces).
    type Error: Send;

    /// The initial configurations, in deterministic order.
    ///
    /// # Errors
    ///
    /// Propagated verbatim from [`explore`](crate::explore).
    fn initial(&self) -> Result<Vec<Self::Config>, Self::Error>;

    /// The dedup key of a configuration.
    fn key(&self, config: &Self::Config) -> Self::Key;

    /// The successor configurations of `config`, in deterministic order.
    ///
    /// # Errors
    ///
    /// An error aborts the exploration at the deterministic point where the
    /// sequential search would have expanded `config`.
    #[allow(clippy::type_complexity)]
    fn expand(&self, config: &Self::Config)
        -> Result<Vec<(Self::Edge, Self::Config)>, Self::Error>;

    /// Returns `true` if the stored configuration `stored` makes exploring
    /// `candidate` redundant. Only called for configurations with equal keys.
    ///
    /// The default (`true`) gives exact deduplication: if the key is the
    /// whole configuration, any stored configuration with the same key *is*
    /// the candidate. Override for genuine subsumption orders (e.g. zone
    /// inclusion); the relation must be reflexive and transitive, and
    /// [`uses_subsumption`](SearchSpace::uses_subsumption) must then return
    /// `true`.
    fn subsumes(&self, stored: &Self::Config, candidate: &Self::Config) -> bool {
        let _ = (stored, candidate);
        true
    }

    /// Returns `true` if [`subsumes`](SearchSpace::subsumes) can relate
    /// non-identical configurations, i.e. stored configurations may be
    /// pruned by later, wider arrivals. The driver then re-checks every
    /// dequeued configuration against the seen set before expanding it (the
    /// pop-time subsumption check); with the default (`false`) that check is
    /// skipped — it could never fire under exact deduplication.
    fn uses_subsumption(&self) -> bool {
        false
    }

    /// Observes a configuration the driver skipped at pop time because a
    /// later, wider arrival pruned it from the seen set, together with the
    /// bucket of configurations currently stored under its key.
    ///
    /// Called from the single-threaded merge (so any counters bumped here
    /// are deterministic for every thread count), with the bucket's shard
    /// lock held. Only fires for spaces with
    /// [`uses_subsumption`](SearchSpace::uses_subsumption); the default does
    /// nothing. Spaces use it to classify *why* the skip was sound — e.g.
    /// the zone explorer counts skips that no stored zone covers convexly,
    /// attributing them to the non-convex aLU relation.
    fn note_pop_skip(&self, skipped: &Self::Config, stored: &[Self::Config]) {
        let _ = (skipped, stored);
    }

    /// Canonicalises a configuration before it is stored and enqueued.
    ///
    /// Called from the single-threaded merge, so implementations may use a
    /// `Mutex` around shared interning tables without contention — and any
    /// counters it bumps are deterministic for every thread count. The
    /// returned configuration either equals the argument (with a possibly
    /// shared representation, e.g. an interned `Arc`) or — for spaces with
    /// [`uses_subsumption`](SearchSpace::uses_subsumption) — *subsumes* it
    /// (a widening normalisation such as zone extrapolation). The driver
    /// keys buckets by the pre-intern [`key`](SearchSpace::key) and never
    /// re-keys stored configurations, so a widening intern must keep the
    /// key stable for subsumption spaces.
    fn intern(&self, config: Self::Config) -> Self::Config {
        config
    }

    /// Inspects a configuration at the moment it is committed (in
    /// deterministic breadth-first order) together with its expansion.
    /// Returning `true` records the node and stops the search — used by goal
    /// searches that only need the first failure in breadth-first order.
    fn should_halt(
        &self,
        config: &Self::Config,
        successors: &[(Self::Edge, Self::Config)],
    ) -> bool {
        let _ = (config, successors);
        false
    }
}
