//! Per-exploration resource budgets.
//!
//! A [`BudgetMeter`] carries the resource ceilings of one exploration — a
//! configuration budget and a zone-memory budget — plus the running usage
//! counters the consumers charge into it. The driver checks the meter at the
//! same deterministic point of the single-threaded merge where it checks its
//! size limits, so a breached budget aborts at the identical configuration
//! count for every thread count. Like [`CancelToken`](crate::CancelToken),
//! the default meter is *inert*: it has no ceilings, costs nothing to check,
//! and every charge into it is a no-op.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The resource whose budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// The configuration budget (`max_configs`): expanded configurations.
    Configs,
    /// The zone-memory budget (`max_zone_bytes`): bytes of distinct interned
    /// zones, as charged by the DBM interner.
    ZoneBytes,
}

impl BudgetResource {
    /// The wire name: `configs` or `zone-bytes`.
    pub fn name(self) -> &'static str {
        match self {
            BudgetResource::Configs => "configs",
            BudgetResource::ZoneBytes => "zone-bytes",
        }
    }
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The record of a budget breach: which resource went over, how much was
/// used when the driver noticed, and what the ceiling was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The exhausted resource.
    pub resource: BudgetResource,
    /// Usage at the deterministic check that noticed the breach.
    pub used: usize,
    /// The configured ceiling.
    pub limit: usize,
}

struct MeterState {
    max_configs: Option<usize>,
    max_zone_bytes: Option<usize>,
    zone_bytes: AtomicUsize,
    breach: Mutex<Option<BudgetBreach>>,
}

/// Resource ceilings plus running usage for one exploration.
///
/// Meters are cheap to clone (all clones share one state). Consumers charge
/// usage in from wherever they account it — the DBM interner charges zone
/// bytes from the driver's single-threaded merge — and the driver calls
/// [`check`](Self::check) once per expanded configuration, recording the
/// first breach and aborting the search through its cancel path.
///
/// # Examples
///
/// ```
/// use explore::{BudgetMeter, BudgetResource};
///
/// let meter = BudgetMeter::new(Some(10), None);
/// assert!(meter.check(10).is_none());
/// let breach = meter.check(11).expect("over budget");
/// assert_eq!(breach.resource, BudgetResource::Configs);
/// assert_eq!(meter.breach(), Some(breach));
///
/// // The inert meter admits everything and records nothing.
/// let inert = BudgetMeter::default();
/// inert.charge_zone_bytes(usize::MAX);
/// assert!(inert.check(usize::MAX).is_none());
/// assert!(inert.is_inert());
/// ```
#[derive(Clone, Default)]
pub struct BudgetMeter(Option<Arc<MeterState>>);

impl BudgetMeter {
    /// Creates a meter with the given ceilings. When both are `None` the
    /// meter is inert — identical to [`BudgetMeter::default`].
    pub fn new(max_configs: Option<usize>, max_zone_bytes: Option<usize>) -> Self {
        if max_configs.is_none() && max_zone_bytes.is_none() {
            return BudgetMeter(None);
        }
        BudgetMeter(Some(Arc::new(MeterState {
            max_configs,
            max_zone_bytes,
            zone_bytes: AtomicUsize::new(0),
            breach: Mutex::new(None),
        })))
    }

    /// Returns `true` for the inert meter, which has no ceilings and can
    /// never record a breach.
    pub fn is_inert(&self) -> bool {
        self.0.is_none()
    }

    /// Adds `bytes` to the zone-memory usage. No-op on the inert meter.
    ///
    /// The DBM interner calls this once per *distinct* interned zone, from
    /// the driver's single-threaded merge, so the running total is identical
    /// for every thread count.
    pub fn charge_zone_bytes(&self, bytes: usize) {
        if let Some(state) = &self.0 {
            state.zone_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Zone-memory usage charged so far (always 0 on the inert meter).
    pub fn zone_bytes(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |state| state.zone_bytes.load(Ordering::Relaxed))
    }

    /// Checks `expanded` configurations and the charged zone bytes against
    /// the ceilings. On the first breach, records it (later checks keep
    /// returning the recorded breach) and returns it; `None` while within
    /// budget and always on the inert meter.
    pub fn check(&self, expanded: usize) -> Option<BudgetBreach> {
        let state = self.0.as_ref()?;
        let mut recorded = state.breach.lock().expect("budget breach lock poisoned");
        if recorded.is_some() {
            return *recorded;
        }
        let breach = match state.max_configs {
            Some(limit) if expanded > limit => Some(BudgetBreach {
                resource: BudgetResource::Configs,
                used: expanded,
                limit,
            }),
            _ => match state.max_zone_bytes {
                Some(limit) if state.zone_bytes.load(Ordering::Relaxed) > limit => {
                    Some(BudgetBreach {
                        resource: BudgetResource::ZoneBytes,
                        used: state.zone_bytes.load(Ordering::Relaxed),
                        limit,
                    })
                }
                _ => None,
            },
        };
        *recorded = breach;
        breach
    }

    /// The recorded breach, if [`check`](Self::check) ever found one.
    pub fn breach(&self) -> Option<BudgetBreach> {
        self.0
            .as_ref()
            .and_then(|state| *state.breach.lock().expect("budget breach lock poisoned"))
    }
}

impl fmt::Debug for BudgetMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "BudgetMeter(inert)"),
            Some(state) => write!(
                f,
                "BudgetMeter(max_configs: {:?}, max_zone_bytes: {:?}, breach: {:?})",
                state.max_configs,
                state.max_zone_bytes,
                self.breach()
            ),
        }
    }
}

/// Meters compare by identity, exactly like `CancelToken`: two meters are
/// equal when charging one observably charges the other (same shared state,
/// or both inert).
impl PartialEq for BudgetMeter {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for BudgetMeter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_none_is_inert() {
        let meter = BudgetMeter::new(None, None);
        assert!(meter.is_inert());
        assert_eq!(meter, BudgetMeter::default());
        assert!(meter.check(usize::MAX).is_none());
        assert!(meter.breach().is_none());
    }

    #[test]
    fn config_budget_breaches_strictly_above_limit() {
        let meter = BudgetMeter::new(Some(5), None);
        assert!(!meter.is_inert());
        assert!(meter.check(5).is_none());
        let breach = meter.check(6).expect("breach");
        assert_eq!(
            breach,
            BudgetBreach {
                resource: BudgetResource::Configs,
                used: 6,
                limit: 5
            }
        );
    }

    #[test]
    fn zone_byte_budget_breaches_after_charges() {
        let meter = BudgetMeter::new(None, Some(100));
        meter.charge_zone_bytes(60);
        assert!(meter.check(1).is_none());
        meter.charge_zone_bytes(60);
        assert_eq!(meter.zone_bytes(), 120);
        let breach = meter.check(2).expect("breach");
        assert_eq!(breach.resource, BudgetResource::ZoneBytes);
        assert_eq!(breach.used, 120);
        assert_eq!(breach.limit, 100);
    }

    #[test]
    fn first_breach_sticks() {
        let meter = BudgetMeter::new(Some(3), Some(10));
        let first = meter.check(4).expect("breach");
        meter.charge_zone_bytes(1_000);
        // Later checks keep reporting the recorded first breach.
        assert_eq!(meter.check(100), Some(first));
        assert_eq!(meter.breach(), Some(first));
        assert_eq!(first.resource, BudgetResource::Configs);
    }

    #[test]
    fn clones_share_one_state() {
        let meter = BudgetMeter::new(Some(2), None);
        let clone = meter.clone();
        assert_eq!(meter, clone);
        assert!(clone.check(3).is_some());
        assert!(meter.breach().is_some());
        assert_ne!(
            BudgetMeter::new(Some(2), None),
            BudgetMeter::new(Some(2), None)
        );
    }

    #[test]
    fn resource_names() {
        assert_eq!(BudgetResource::Configs.name(), "configs");
        assert_eq!(BudgetResource::ZoneBytes.to_string(), "zone-bytes");
    }
}
