//! Elaboration of a transistor-level circuit into a timed transition system.
//!
//! Each node/direction pair with at least one driver becomes a signal-edge
//! event (`NODE+` / `NODE-`). The enabling condition of the event in a given
//! valuation is "the node does not yet have the target value and some driver
//! towards that value conducts"; its delay interval is the envelope of the
//! delays of the drivers of that direction. Input nodes toggle freely (their
//! timing is supplied by the environment model they are composed with).
//! States in which a declared (or derived) invariant holds are marked as
//! violations, which is what the verification engine searches for.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use tts::{DelayInterval, Polarity, TimedTransitionSystem, TsBuilder};

use crate::netlist::{Circuit, Invariant, NodeId};

/// Options controlling elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElaborateOptions {
    /// Maximum number of circuit states (valuations) to explore.
    pub state_limit: usize,
    /// If `true`, short-circuit invariants derived structurally from
    /// non-complementary drivers are checked in addition to the declared
    /// ones.
    pub include_derived_invariants: bool,
    /// Names of nodes whose edges are interface outputs of the circuit.
    pub output_nodes: Vec<String>,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        ElaborateOptions {
            state_limit: 500_000,
            include_derived_invariants: true,
            output_nodes: Vec::new(),
        }
    }
}

/// Error returned by [`elaborate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// The exploration exceeded the state limit.
    TooManyStates {
        /// The configured limit.
        limit: usize,
    },
    /// An output node named in the options does not exist.
    UnknownOutput(String),
    /// The elaborated system was structurally invalid.
    Build(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::TooManyStates { limit } => {
                write!(f, "circuit exploration exceeds {limit} states")
            }
            ElaborateError::UnknownOutput(name) => write!(f, "unknown output node `{name}`"),
            ElaborateError::Build(msg) => {
                write!(f, "elaboration produced an invalid system: {msg}")
            }
        }
    }
}

impl std::error::Error for ElaborateError {}

/// The elaborated circuit model.
#[derive(Debug, Clone)]
pub struct CircuitModel {
    timed: TimedTransitionSystem,
    persistent_events: Vec<String>,
}

impl CircuitModel {
    /// The timed transition system of the circuit (free-running inputs).
    pub fn timed(&self) -> &TimedTransitionSystem {
        &self.timed
    }

    /// Consumes the model and returns the timed transition system.
    pub fn into_timed(self) -> TimedTransitionSystem {
        self.timed
    }

    /// Names of the events that must satisfy the persistency condition of
    /// §5.1 (all edges of non-input nodes: once such an event is enabled, no
    /// other firing may disable it).
    pub fn persistent_events(&self) -> &[String] {
        &self.persistent_events
    }
}

/// Elaborates a circuit into a [`CircuitModel`].
///
/// # Errors
///
/// Returns [`ElaborateError`] if the exploration exceeds the state limit or
/// the options reference unknown nodes.
///
/// # Examples
///
/// ```
/// use cmos_circuit::{elaborate, CircuitBuilder, ElaborateOptions};
///
/// // A free-running input A driving an inverter chain A -> B -> C.
/// let mut builder = CircuitBuilder::new("chain");
/// builder.add_input("A", false);
/// builder.add_node("B", true);
/// builder.add_node("C", false);
/// builder.add_inverter("B", "A")?;
/// builder.add_inverter("C", "B")?;
/// let circuit = builder.build()?;
/// let model = elaborate(&circuit, &ElaborateOptions::default())?;
/// let ts = model.timed().underlying();
/// assert!(ts.alphabet().lookup("B+").is_some());
/// assert!(ts.state_count() <= 8);
/// assert_eq!(model.persistent_events().len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn elaborate(
    circuit: &Circuit,
    options: &ElaborateOptions,
) -> Result<CircuitModel, ElaborateError> {
    for name in &options.output_nodes {
        if circuit.node(name).is_none() {
            return Err(ElaborateError::UnknownOutput(name.clone()));
        }
    }

    // Assemble the invariants to monitor.
    let mut invariants: Vec<Invariant> = circuit.invariants().to_vec();
    if options.include_derived_invariants {
        for derived in circuit.derive_short_circuit_invariants() {
            // Avoid duplicating a manually declared invariant with the same
            // literal set.
            if !invariants.iter().any(|i| i.literals == derived.literals) {
                invariants.push(derived);
            }
        }
    }

    // Event delay envelopes per (node, polarity).
    let mut delays: HashMap<(NodeId, Polarity), DelayInterval> = HashMap::new();
    let mut note_delay = |node: NodeId, polarity: Polarity, delay: DelayInterval| {
        delays
            .entry((node, polarity))
            .and_modify(|existing| {
                let lower = existing.lower().min(delay.lower());
                let upper = existing.upper().max(delay.upper());
                *existing = DelayInterval::with_bound(lower, upper)
                    .expect("envelope of valid intervals is valid");
            })
            .or_insert(delay);
    };
    for stack in circuit.stacks() {
        let polarity = if stack.drives_to {
            Polarity::Rise
        } else {
            Polarity::Fall
        };
        note_delay(stack.target, polarity, stack.delay);
    }
    for pass in circuit.passes() {
        note_delay(pass.target, Polarity::Rise, pass.delay);
        note_delay(pass.target, Polarity::Fall, pass.delay);
    }

    let event_name = |node: NodeId, polarity: Polarity| -> String {
        format!("{}{}", circuit.node_name(node), polarity.suffix())
    };

    // Enabled edges of a valuation: (node, polarity target value).
    let enabled_edges = |values: &[bool]| -> Vec<(NodeId, Polarity)> {
        let mut out = Vec::new();
        for node in circuit.nodes() {
            let current = values[node.index()];
            if circuit.is_input(node) {
                out.push((
                    node,
                    if current {
                        Polarity::Fall
                    } else {
                        Polarity::Rise
                    },
                ));
                continue;
            }
            let mut can_rise = false;
            let mut can_fall = false;
            for stack in circuit.stacks().iter().filter(|s| s.target == node) {
                let conducting = stack
                    .gates
                    .iter()
                    .all(|&g| circuit.literal_holds(g, values));
                if conducting {
                    if stack.drives_to {
                        can_rise = true;
                    } else {
                        can_fall = true;
                    }
                }
            }
            for pass in circuit.passes().iter().filter(|p| p.target == node) {
                if circuit.literal_holds(pass.gate, values) {
                    if values[pass.source.index()] {
                        can_rise = true;
                    } else {
                        can_fall = true;
                    }
                }
            }
            if !current && can_rise {
                out.push((node, Polarity::Rise));
            }
            if current && can_fall {
                out.push((node, Polarity::Fall));
            }
        }
        out
    };

    // Breadth-first exploration of the valuation space.
    let mut builder = TsBuilder::new(circuit.name());
    let mut ids: HashMap<Vec<bool>, tts::StateId> = HashMap::new();
    let mut queue: VecDeque<Vec<bool>> = VecDeque::new();

    let add_state = |values: Vec<bool>,
                     builder: &mut TsBuilder,
                     ids: &mut HashMap<Vec<bool>, tts::StateId>,
                     queue: &mut VecDeque<Vec<bool>>|
     -> tts::StateId {
        if let Some(&id) = ids.get(&values) {
            return id;
        }
        let name: String = values.iter().map(|&v| if v { '1' } else { '0' }).collect();
        let id = builder.add_state(name);
        for invariant in &invariants {
            if circuit.invariant_violated(invariant, &values) {
                builder.mark_violation(id, invariant.name.clone());
            }
        }
        ids.insert(values.clone(), id);
        queue.push_back(values);
        id
    };

    let initial = circuit.initial_state();
    let initial_id = add_state(initial, &mut builder, &mut ids, &mut queue);
    builder.set_initial(initial_id);

    while let Some(values) = queue.pop_front() {
        if ids.len() > options.state_limit {
            return Err(ElaborateError::TooManyStates {
                limit: options.state_limit,
            });
        }
        let from = ids[&values];
        for (node, polarity) in enabled_edges(&values) {
            let mut next = values.clone();
            next[node.index()] = polarity.target_value();
            let to = add_state(next, &mut builder, &mut ids, &mut queue);
            builder.add_transition(from, event_name(node, polarity), to);
        }
    }

    // Interface roles and persistency set.
    let mut persistent_events = Vec::new();
    for node in circuit.nodes() {
        for polarity in [Polarity::Rise, Polarity::Fall] {
            let name = event_name(node, polarity);
            if circuit.is_input(node) {
                builder.declare_input(&name);
            } else {
                persistent_events.push(name.clone());
                if options
                    .output_nodes
                    .iter()
                    .any(|o| o == circuit.node_name(node))
                {
                    builder.declare_output(&name);
                }
            }
        }
    }

    let ts = builder
        .build()
        .map_err(|e| ElaborateError::Build(e.to_string()))?;
    let mut timed = TimedTransitionSystem::new(ts);
    for ((node, polarity), delay) in &delays {
        let name = event_name(*node, *polarity);
        if timed.underlying().alphabet().lookup(&name).is_some() {
            timed.set_delay_by_name(&name, *delay);
        }
    }
    Ok(CircuitModel {
        timed,
        persistent_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use tts::Time;

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// An inverter driven by a free input.
    fn inverter() -> Circuit {
        let mut b = CircuitBuilder::new("inv");
        b.add_input("A", false);
        b.add_node("Y", true);
        b.add_inverter_with("Y", "A", d(1, 2), d(1, 2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn inverter_elaborates_to_four_states() {
        let model = elaborate(&inverter(), &ElaborateOptions::default()).unwrap();
        let ts = model.timed().underlying();
        // (A,Y) in {0,1}^2, all reachable with a free-running input.
        assert_eq!(ts.state_count(), 4);
        assert!(ts.alphabet().lookup("A+").is_some());
        assert!(ts.alphabet().lookup("Y-").is_some());
        assert_eq!(model.timed().delay_by_name("Y+"), d(1, 2));
        // Input edges have no circuit delay.
        assert!(model.timed().delay_by_name("A+").is_unbounded());
        assert_eq!(model.persistent_events().len(), 2);
    }

    #[test]
    fn input_edges_are_inputs_and_marked_outputs_are_outputs() {
        let mut b = CircuitBuilder::new("buf");
        b.add_input("A", false);
        b.add_node("Y", true);
        b.add_inverter("Y", "A").unwrap();
        let circuit = b.build().unwrap();
        let options = ElaborateOptions {
            output_nodes: vec!["Y".to_owned()],
            ..ElaborateOptions::default()
        };
        let model = elaborate(&circuit, &options).unwrap();
        let ts = model.timed().underlying();
        let a_plus = ts.alphabet().lookup("A+").unwrap();
        let y_minus = ts.alphabet().lookup("Y-").unwrap();
        assert_eq!(ts.role(a_plus), tts::EventRole::Input);
        assert_eq!(ts.role(y_minus), tts::EventRole::Output);
    }

    #[test]
    fn invariant_violations_are_marked() {
        // Y pulled up on !Z and pulled down on ACK with both inputs free: the
        // short circuit state (!Z, ACK) is reachable and must be marked.
        let mut b = CircuitBuilder::new("y");
        b.add_input("Z", false);
        b.add_input("ACK", false);
        b.add_node("Y", true);
        b.add_pull_up("Y", &[("Z", false)]).unwrap();
        b.add_pull_down("Y", &[("ACK", true)]).unwrap();
        let circuit = b.build().unwrap();
        let model = elaborate(&circuit, &ElaborateOptions::default()).unwrap();
        let ts = model.timed().underlying();
        let bad = ts.marked_reachable_states();
        assert!(!bad.is_empty());
        assert!(ts.violations(bad[0])[0].contains("short-circuit at Y"));
    }

    #[test]
    fn derived_invariants_can_be_disabled() {
        let mut b = CircuitBuilder::new("y");
        b.add_input("Z", false);
        b.add_input("ACK", false);
        b.add_node("Y", true);
        b.add_pull_up("Y", &[("Z", false)]).unwrap();
        b.add_pull_down("Y", &[("ACK", true)]).unwrap();
        let circuit = b.build().unwrap();
        let options = ElaborateOptions {
            include_derived_invariants: false,
            ..ElaborateOptions::default()
        };
        let model = elaborate(&circuit, &options).unwrap();
        assert!(model
            .timed()
            .underlying()
            .marked_reachable_states()
            .is_empty());
    }

    #[test]
    fn state_limit_is_enforced() {
        let options = ElaborateOptions {
            state_limit: 1,
            ..ElaborateOptions::default()
        };
        assert!(matches!(
            elaborate(&inverter(), &options),
            Err(ElaborateError::TooManyStates { .. })
        ));
    }

    #[test]
    fn unknown_output_is_rejected() {
        let options = ElaborateOptions {
            output_nodes: vec!["missing".to_owned()],
            ..ElaborateOptions::default()
        };
        assert!(matches!(
            elaborate(&inverter(), &options),
            Err(ElaborateError::UnknownOutput(_))
        ));
    }

    #[test]
    fn pass_transistors_follow_their_source() {
        let mut b = CircuitBuilder::new("pass");
        b.add_input("VALID", true);
        b.add_input("Y", true);
        b.add_node("Vint", true);
        b.add_pass("Vint", ("Y", true), "VALID", d(1, 2)).unwrap();
        let circuit = b.build().unwrap();
        let model = elaborate(&circuit, &ElaborateOptions::default()).unwrap();
        let ts = model.timed().underlying();
        // From the initial state (VALID=1, Y=1, Vint=1) lowering VALID enables
        // Vint-.
        let valid_minus = ts.alphabet().lookup("VALID-").unwrap();
        let s0 = ts.initial_states()[0];
        let after_valid_low = ts.successors(s0, valid_minus)[0];
        let vint_minus = ts.alphabet().lookup("Vint-").unwrap();
        assert!(ts.is_enabled(after_valid_low, vint_minus));
        // With Y off the pass transistor no longer drives Vint.
        let y_minus = ts.alphabet().lookup("Y-").unwrap();
        let isolated = ts.successors(after_valid_low, y_minus)[0];
        assert!(!ts.is_enabled(isolated, vint_minus));
    }
}
