//! Builder for transistor-level circuits.

use std::collections::HashMap;

use tts::DelayInterval;

use crate::netlist::{
    default_delay, Circuit, CircuitError, DriveStrength, Invariant, Literal, NodeData, NodeId,
    PassGate, Stack,
};

/// Incremental construction of a [`Circuit`].
///
/// # Examples
///
/// ```
/// use cmos_circuit::CircuitBuilder;
/// let mut b = CircuitBuilder::new("latch-control");
/// b.add_input("ACK", false);
/// b.add_node("Y", true);
/// b.add_node("Z", false);
/// // Y: pulled up by a p-transistor on Z, pulled down by an n-transistor on ACK.
/// b.add_pull_up("Y", &[("Z", false)])?;
/// b.add_pull_down("Y", &[("ACK", true)])?;
/// // Z is just an inverter of Y here.
/// b.add_inverter("Z", "Y")?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.node_count(), 3);
/// assert_eq!(circuit.modeled_transistor_count(), 4);
/// # Ok::<(), cmos_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<NodeData>,
    index: HashMap<String, NodeId>,
    duplicate: Option<String>,
    stacks: Vec<Stack>,
    passes: Vec<PassGate>,
    invariants: Vec<Invariant>,
    outputs: Vec<NodeId>,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            ..CircuitBuilder::default()
        }
    }

    /// Adds an internal or output node with an initial value.
    pub fn add_node(&mut self, name: impl Into<String>, initial: bool) -> NodeId {
        self.add_node_data(name.into(), initial, false)
    }

    /// Adds an input node (driven by the environment) with an initial value.
    pub fn add_input(&mut self, name: impl Into<String>, initial: bool) -> NodeId {
        self.add_node_data(name.into(), initial, true)
    }

    fn add_node_data(&mut self, name: String, initial: bool, is_input: bool) -> NodeId {
        if self.index.contains_key(&name) && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        let id = NodeId(self.nodes.len() as u32);
        self.index.insert(name.clone(), id);
        self.nodes.push(NodeData {
            name,
            initial,
            is_input,
        });
        id
    }

    /// Declares a node as an interface output of the circuit (e.g. `ACK`,
    /// `VALID` towards the neighbouring stage).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node has not been added.
    pub fn mark_output(&mut self, name: &str) -> Result<NodeId, CircuitError> {
        let id = self.lookup(name)?;
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(id)
    }

    fn lookup(&self, name: &str) -> Result<NodeId, CircuitError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| CircuitError::UnknownNode(name.to_owned()))
    }

    fn literals(&self, gates: &[(&str, bool)]) -> Result<Vec<Literal>, CircuitError> {
        gates
            .iter()
            .map(|&(name, value)| self.lookup(name).map(|node| Literal { node, value }))
            .collect()
    }

    /// Adds a pull-up stack (drives the target to 1) with the default `[1,2]`
    /// delay. Gates are `(node, conducting_value)` pairs in series.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_pull_up(
        &mut self,
        target: &str,
        gates: &[(&str, bool)],
    ) -> Result<(), CircuitError> {
        self.add_stack(
            target,
            gates,
            true,
            default_delay(DriveStrength::Normal),
            DriveStrength::Normal,
        )
    }

    /// Adds a pull-down stack (drives the target to 0) with the default
    /// `[1,2]` delay.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_pull_down(
        &mut self,
        target: &str,
        gates: &[(&str, bool)],
    ) -> Result<(), CircuitError> {
        self.add_stack(
            target,
            gates,
            false,
            default_delay(DriveStrength::Normal),
            DriveStrength::Normal,
        )
    }

    /// Adds a stack with an explicit drive direction, delay and strength.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_stack(
        &mut self,
        target: &str,
        gates: &[(&str, bool)],
        drives_to: bool,
        delay: DelayInterval,
        strength: DriveStrength,
    ) -> Result<(), CircuitError> {
        let target = self.lookup(target)?;
        let gates = self.literals(gates)?;
        self.stacks.push(Stack {
            target,
            drives_to,
            gates,
            delay,
            strength,
        });
        Ok(())
    }

    /// Adds a pass transistor: while `gate` conducts, `target` follows
    /// `source`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_pass(
        &mut self,
        target: &str,
        gate: (&str, bool),
        source: &str,
        delay: DelayInterval,
    ) -> Result<(), CircuitError> {
        let target = self.lookup(target)?;
        let gate = Literal {
            node: self.lookup(gate.0)?,
            value: gate.1,
        };
        let source = self.lookup(source)?;
        self.passes.push(PassGate {
            target,
            gate,
            source,
            delay,
        });
        Ok(())
    }

    /// Adds a static CMOS inverter `out = !input` (complementary pull-up and
    /// pull-down, default delays).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_inverter(&mut self, out: &str, input: &str) -> Result<(), CircuitError> {
        self.add_pull_up(out, &[(input, false)])?;
        self.add_pull_down(out, &[(input, true)])
    }

    /// Adds a static CMOS inverter with explicit rise/fall delays.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_inverter_with(
        &mut self,
        out: &str,
        input: &str,
        rise: DelayInterval,
        fall: DelayInterval,
    ) -> Result<(), CircuitError> {
        self.add_stack(out, &[(input, false)], true, rise, DriveStrength::Normal)?;
        self.add_stack(out, &[(input, true)], false, fall, DriveStrength::Normal)
    }

    /// Declares a forbidden conjunction (e.g. a short-circuit condition).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for unknown node names.
    pub fn add_invariant(
        &mut self,
        name: impl Into<String>,
        literals: &[(&str, bool)],
    ) -> Result<(), CircuitError> {
        let literals = self.literals(literals)?;
        self.invariants.push(Invariant {
            name: name.into(),
            literals,
        });
        Ok(())
    }

    /// Interface output nodes declared so far.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the circuit is empty, a node name is
    /// duplicated, an input node is driven, or a non-input node has no
    /// driver.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if self.nodes.is_empty() {
            return Err(CircuitError::Empty);
        }
        if let Some(name) = self.duplicate {
            return Err(CircuitError::DuplicateNode(name));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            let driven = self.stacks.iter().any(|s| s.target == id)
                || self.passes.iter().any(|p| p.target == id);
            if node.is_input && driven {
                return Err(CircuitError::DrivenInput(node.name.clone()));
            }
            if !node.is_input && !driven {
                return Err(CircuitError::UndrivenNode(node.name.clone()));
            }
        }
        Ok(Circuit {
            name: self.name,
            nodes: self.nodes,
            index: self.index,
            stacks: self.stacks,
            passes: self.passes,
            invariants: self.invariants,
        })
    }

    /// Finalises the circuit and returns it together with the declared output
    /// nodes (used by the elaboration step to assign interface roles).
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with_outputs(self) -> Result<(Circuit, Vec<NodeId>), CircuitError> {
        let outputs = self.outputs.clone();
        let circuit = self.build()?;
        Ok((circuit, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::Time;

    #[test]
    fn duplicate_nodes_are_rejected() {
        let mut b = CircuitBuilder::new("dup");
        b.add_node("X", false);
        b.add_node("X", true);
        assert!(matches!(b.build(), Err(CircuitError::DuplicateNode(_))));
    }

    #[test]
    fn driven_inputs_are_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.add_input("A", false);
        b.add_node("B", false);
        b.add_inverter("B", "A").unwrap();
        b.add_pull_up("A", &[("B", true)]).unwrap();
        assert!(matches!(b.build(), Err(CircuitError::DrivenInput(_))));
    }

    #[test]
    fn undriven_nodes_are_rejected() {
        let mut b = CircuitBuilder::new("floating");
        b.add_node("X", false);
        assert!(matches!(b.build(), Err(CircuitError::UndrivenNode(_))));
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut b = CircuitBuilder::new("unknown");
        b.add_node("X", false);
        assert!(matches!(
            b.add_pull_up("X", &[("nope", true)]),
            Err(CircuitError::UnknownNode(_))
        ));
        assert!(matches!(
            b.add_pass("nope", ("X", true), "X", DelayInterval::unbounded()),
            Err(CircuitError::UnknownNode(_))
        ));
        assert!(matches!(
            b.mark_output("nope"),
            Err(CircuitError::UnknownNode(_))
        ));
    }

    #[test]
    fn empty_circuit_is_rejected() {
        assert_eq!(CircuitBuilder::new("e").build(), Err(CircuitError::Empty));
    }

    #[test]
    fn stacks_and_passes_are_recorded() {
        let mut b = CircuitBuilder::new("mix");
        b.add_input("VALID", true);
        b.add_input("Y", true);
        b.add_input("CLKR", true);
        b.add_node("Vint", true);
        let d = DelayInterval::new(Time::new(1), Time::new(2)).unwrap();
        b.add_pass("Vint", ("Y", true), "VALID", d).unwrap();
        b.add_stack("Vint", &[("CLKR", false)], true, d, DriveStrength::Weak)
            .unwrap();
        b.add_invariant("inv2", &[("VALID", false), ("Y", true), ("CLKR", false)])
            .unwrap();
        b.mark_output("Vint").unwrap();
        let (circuit, outputs) = b.build_with_outputs().unwrap();
        assert_eq!(circuit.passes().len(), 1);
        assert_eq!(circuit.stacks().len(), 1);
        assert_eq!(circuit.invariants().len(), 1);
        assert_eq!(outputs.len(), 1);
        assert_eq!(circuit.node_name(outputs[0]), "Vint");
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(CircuitError::UnknownNode("Q".into())
            .to_string()
            .contains("Q"));
        assert!(CircuitError::Empty.to_string().contains("no nodes"));
    }
}
