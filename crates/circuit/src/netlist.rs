//! Transistor-level netlists.
//!
//! Following §5.1 of the paper, every circuit node is a boolean variable
//! driven by stacks of pull-up and pull-down transistors and possibly by
//! pass transistors. Each driver becomes an event of the timed transition
//! system: a pull-up stack raises the node when all of its series gate
//! conditions hold, a pull-down stack lowers it, and a pass transistor copies
//! the value of its source node while its gate conducts. Custom CMOS relaxes
//! the complementarity of pull-up and pull-down networks, which introduces
//! potential short-circuits; those are expressed as *invariants* — node
//! conjunctions that must never hold in any reachable state.

use std::collections::HashMap;
use std::fmt;

use tts::{DelayInterval, Time};

/// Index of a node within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A gate condition: the transistor conducts when `node` has value `value`.
///
/// `value = true` describes an n-transistor (conducts on 1), `value = false`
/// a p-transistor (conducts on 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The controlling node.
    pub node: NodeId,
    /// The value at which the transistor conducts.
    pub value: bool,
}

impl Literal {
    /// Condition "node is high" (an n-transistor gate).
    pub fn high(node: NodeId) -> Self {
        Literal { node, value: true }
    }

    /// Condition "node is low" (a p-transistor gate).
    pub fn low(node: NodeId) -> Self {
        Literal { node, value: false }
    }
}

/// The strength of a driver, used to pick delay intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DriveStrength {
    /// A regular stack (`[1,2]` delay units by default).
    #[default]
    Normal,
    /// A weak/feedback transistor (`[2,4]` by default).
    Weak,
    /// A lumped multi-stage path (delay supplied explicitly).
    Lumped,
}

/// A stack of series transistors driving a node towards a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stack {
    /// The driven node.
    pub target: NodeId,
    /// The value the stack drives (`true` = pull-up, `false` = pull-down).
    pub drives_to: bool,
    /// Series gate conditions; the stack conducts when all hold.
    pub gates: Vec<Literal>,
    /// Switching delay of the stack once it conducts.
    pub delay: DelayInterval,
    /// Drive strength (informational; the delay is what matters).
    pub strength: DriveStrength,
}

/// A (unidirectional) pass transistor: while `gate` conducts, `target`
/// follows the value of `source`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassGate {
    /// The driven node.
    pub target: NodeId,
    /// Gate condition under which the pass transistor conducts.
    pub gate: Literal,
    /// The node whose value is copied.
    pub source: NodeId,
    /// Switching delay.
    pub delay: DelayInterval,
}

/// A conjunction of node literals that must never hold in a reachable state
/// (e.g. a pull-up and a pull-down stack of the same node conducting
/// simultaneously — a short-circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// Human-readable name (reported in failure diagnostics).
    pub name: String,
    /// The forbidden conjunction.
    pub literals: Vec<Literal>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeData {
    pub(crate) name: String,
    pub(crate) initial: bool,
    pub(crate) is_input: bool,
}

/// Error returned by [`CircuitBuilder::build`](crate::CircuitBuilder::build)
/// and the node-lookup helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A node name was used twice.
    DuplicateNode(String),
    /// A referenced node does not exist.
    UnknownNode(String),
    /// An input node has drivers inside the circuit.
    DrivenInput(String),
    /// A non-input node has no driver at all.
    UndrivenNode(String),
    /// The circuit has no nodes.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateNode(n) => write!(f, "node `{n}` is declared twice"),
            CircuitError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            CircuitError::DrivenInput(n) => {
                write!(f, "input node `{n}` must not be driven by the circuit")
            }
            CircuitError::UndrivenNode(n) => write!(f, "node `{n}` has no driver"),
            CircuitError::Empty => write!(f, "circuit has no nodes"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A transistor-level circuit.
///
/// Build instances with [`CircuitBuilder`](crate::CircuitBuilder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) index: HashMap<String, NodeId>,
    pub(crate) stacks: Vec<Stack>,
    pub(crate) passes: Vec<PassGate>,
    pub(crate) invariants: Vec<Invariant>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (including inputs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Looks a node up by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// Initial value of a node.
    pub fn initial_value(&self, node: NodeId) -> bool {
        self.nodes[node.index()].initial
    }

    /// Returns `true` if the node is an input (driven by the environment).
    pub fn is_input(&self, node: NodeId) -> bool {
        self.nodes[node.index()].is_input
    }

    /// Input nodes.
    pub fn inputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.is_input(n))
    }

    /// Transistor stacks.
    pub fn stacks(&self) -> &[Stack] {
        &self.stacks
    }

    /// Pass transistors.
    pub fn passes(&self) -> &[PassGate] {
        &self.passes
    }

    /// Declared invariants (forbidden conjunctions).
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Number of transistors in the modelled stacks and pass gates (each
    /// series gate literal is one transistor).
    pub fn modeled_transistor_count(&self) -> usize {
        self.stacks.iter().map(|s| s.gates.len()).sum::<usize>() + self.passes.len()
    }

    /// The initial valuation of all nodes.
    pub fn initial_state(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.initial).collect()
    }

    /// Evaluates a literal in a valuation.
    pub fn literal_holds(&self, literal: Literal, values: &[bool]) -> bool {
        values[literal.node.index()] == literal.value
    }

    /// Evaluates an invariant (forbidden conjunction) in a valuation.
    pub fn invariant_violated(&self, invariant: &Invariant, values: &[bool]) -> bool {
        invariant
            .literals
            .iter()
            .all(|&l| self.literal_holds(l, values))
    }

    /// Derives short-circuit invariants for every node whose pull-up and
    /// pull-down stacks (or pass-transistor paths) are not structurally
    /// complementary: for every pair of opposing drivers, the conjunction of
    /// both gate conditions must never hold.
    ///
    /// This is the automatic counterpart of the manually identified
    /// invariants (1) and (2) of §5.1 of the paper; structurally
    /// complementary pairs (like the two halves of an inverter) are skipped.
    pub fn derive_short_circuit_invariants(&self) -> Vec<Invariant> {
        let mut derived = Vec::new();
        for node in self.nodes() {
            // Collect (gate conditions, drives_to) for every driver of `node`.
            let mut drivers: Vec<(Vec<Literal>, bool)> = Vec::new();
            for s in &self.stacks {
                if s.target == node {
                    drivers.push((s.gates.clone(), s.drives_to));
                }
            }
            for p in &self.passes {
                if p.target == node {
                    // A pass transistor drives towards the source value; both
                    // polarities are possible, so model it as driving either
                    // way guarded by the source value.
                    drivers.push((vec![p.gate, Literal::high(p.source)], true));
                    drivers.push((vec![p.gate, Literal::low(p.source)], false));
                }
            }
            for (i, (up_gates, up_dir)) in drivers.iter().enumerate() {
                for (down_gates, down_dir) in drivers.iter().skip(i + 1) {
                    if up_dir == down_dir {
                        continue;
                    }
                    let mut conjunction = up_gates.clone();
                    conjunction.extend(down_gates.iter().copied());
                    if is_contradictory(&conjunction) {
                        continue; // structurally complementary
                    }
                    conjunction.sort_by_key(|l| (l.node, l.value));
                    conjunction.dedup();
                    derived.push(Invariant {
                        name: format!("short-circuit at {}", self.node_name(node)),
                        literals: conjunction,
                    });
                }
            }
        }
        derived
    }
}

/// Returns `true` if a conjunction of literals contains `x` and `!x`.
fn is_contradictory(literals: &[Literal]) -> bool {
    literals.iter().any(|a| {
        literals
            .iter()
            .any(|b| a.node == b.node && a.value != b.value)
    })
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} stacks, {} pass gates, {} invariants)",
            self.name,
            self.node_count(),
            self.stacks.len(),
            self.passes.len(),
            self.invariants.len()
        )
    }
}

/// Default delay for a drive strength.
pub(crate) fn default_delay(strength: DriveStrength) -> DelayInterval {
    match strength {
        DriveStrength::Normal | DriveStrength::Lumped => {
            DelayInterval::new(Time::new(1), Time::new(2)).expect("static interval")
        }
        DriveStrength::Weak => {
            DelayInterval::new(Time::new(2), Time::new(4)).expect("static interval")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn literals_and_invariants_evaluate() {
        let mut b = CircuitBuilder::new("inv");
        let a = b.add_input("A", false);
        let y = b.add_node("Y", true);
        b.add_inverter("Y", "A").unwrap();
        let circuit = b.build().unwrap();
        let values = circuit.initial_state();
        assert!(circuit.literal_holds(Literal::low(a), &values));
        assert!(circuit.literal_holds(Literal::high(y), &values));
        let inv = Invariant {
            name: "test".into(),
            literals: vec![Literal::low(a), Literal::high(y)],
        };
        assert!(circuit.invariant_violated(&inv, &values));
    }

    #[test]
    fn complementary_gates_produce_no_derived_invariants() {
        let mut b = CircuitBuilder::new("inv");
        b.add_input("A", false);
        b.add_node("Y", true);
        b.add_inverter("Y", "A").unwrap();
        let circuit = b.build().unwrap();
        assert!(circuit.derive_short_circuit_invariants().is_empty());
    }

    #[test]
    fn non_complementary_gates_produce_invariants() {
        // Y pulled up when Z=0 and pulled down when ACK=1: not complementary.
        let mut b = CircuitBuilder::new("y");
        b.add_input("Z", false);
        b.add_input("ACK", false);
        b.add_node("Y", true);
        b.add_pull_up("Y", &[("Z", false)]).unwrap();
        b.add_pull_down("Y", &[("ACK", true)]).unwrap();
        let circuit = b.build().unwrap();
        let derived = circuit.derive_short_circuit_invariants();
        assert_eq!(derived.len(), 1);
        assert!(derived[0].name.contains('Y'));
        assert_eq!(derived[0].literals.len(), 2);
    }

    #[test]
    fn transistor_counting() {
        let mut b = CircuitBuilder::new("count");
        b.add_input("A", false);
        b.add_input("B", false);
        b.add_node("Y", true);
        // 2-input NAND-like pull-up (2 parallel p = 2 stacks of 1) and a
        // series pull-down of 2.
        b.add_pull_up("Y", &[("A", false)]).unwrap();
        b.add_pull_up("Y", &[("B", false)]).unwrap();
        b.add_pull_down("Y", &[("A", true), ("B", true)]).unwrap();
        let circuit = b.build().unwrap();
        assert_eq!(circuit.modeled_transistor_count(), 4);
        assert!(circuit.to_string().contains("3 stacks"));
    }
}
