//! Transistor-level CMOS circuit modelling.
//!
//! This crate implements the circuit-modelling layer of §5.1 of the IPCMOS
//! paper: every node is a boolean variable driven by pull-up/pull-down
//! transistor stacks and pass transistors; every driver becomes a
//! signal-edge event with an enabling condition and a delay interval; and
//! correctness conditions (short-circuit invariants, persistency,
//! deadlock-freeness) are expressed over the resulting timed transition
//! system.
//!
//! * [`CircuitBuilder`]/[`Circuit`] — netlist construction and structural
//!   queries (including automatic derivation of short-circuit invariants for
//!   non-complementary drivers).
//! * [`elaborate`] — expansion into a [`tts::TimedTransitionSystem`] whose
//!   violating states are marked, ready for composition with environment
//!   models and verification by the `transyt` engine.
//!
//! # Example
//!
//! ```
//! use cmos_circuit::{elaborate, CircuitBuilder, ElaborateOptions};
//!
//! // The Y node of the IPCMOS strobe switch (Fig. 11): pulled up by a
//! // p-transistor on Z, pulled down by an n-transistor on ACK. The two
//! // drivers are not complementary, so a short circuit is possible when the
//! // environment misbehaves — elaboration marks those states.
//! let mut builder = CircuitBuilder::new("strobe-switch-y");
//! builder.add_input("Z", false);
//! builder.add_input("ACK", false);
//! builder.add_node("Y", true);
//! builder.add_pull_up("Y", &[("Z", false)])?;
//! builder.add_pull_down("Y", &[("ACK", true)])?;
//! let circuit = builder.build()?;
//! let model = elaborate(&circuit, &ElaborateOptions::default())?;
//! assert!(!model.timed().underlying().marked_reachable_states().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod elaborate;
mod netlist;

pub use builder::CircuitBuilder;
pub use elaborate::{elaborate, CircuitModel, ElaborateError, ElaborateOptions};
pub use netlist::{
    Circuit, CircuitError, DriveStrength, Invariant, Literal, NodeId, PassGate, Stack,
};
