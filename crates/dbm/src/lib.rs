//! Difference bound matrices and zone-based timed reachability.
//!
//! This crate is the *conventional* timed-verification baseline of the IPCMOS
//! case study: an exact, zone-based exploration of the timed state space in
//! the style of timed-automata model checkers. The paper's argument is that
//! this approach does not scale to transistor-level pipelines — the
//! `scaling` benchmark of this repository reproduces that observation — while
//! on small models it provides ground truth against which the relative-timing
//! engine (`transyt` crate) is cross-checked.
//!
//! * [`Entry`] — DBM bound entries (`< c`, `≤ c`, `∞`).
//! * [`Dbm`] — canonical difference bound matrices with the standard zone
//!   operations (`up`, `reset`, `constrain`, inclusion, intersection).
//! * [`explore_timed`] — symbolic reachability of a
//!   [`tts::TimedTransitionSystem`] using one clock per event, with optional
//!   LU-bounds extrapolation and active-clock reduction
//!   ([`Extrapolation`]) and a buffer-reusing [`DbmArena`] behind the zone
//!   interner.
//!
//! # Example
//!
//! ```
//! use dbm::Dbm;
//!
//! // Start from the zero zone, let time pass, and bound clock 1 by 10.
//! let mut zone = Dbm::zero(2);
//! zone.up();
//! zone.constrain_upper(1, 10);
//! zone.canonicalize();
//! assert!(!zone.is_empty());
//! // Clock 2 advanced in lock-step, so it is also bounded by 10.
//! assert_eq!(zone.upper_bound(2), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod entry;
mod matrix;
mod zone_graph;

pub use arena::{ArenaStats, DbmArena};
pub use entry::Entry;
pub use explore::{Bounds, ExploreSpec, Extrapolation, Subsumption};
pub use matrix::Dbm;
pub use zone_graph::{
    explore_timed, explore_timed_with, find_witness, path_firing_windows, FiringWindow,
    LuBoundsProvider, SymbolicTrace, WitnessGoal, WitnessOutcome, ZoneExplorationOptions,
    ZoneOutcome, ZoneReport, DEFAULT_CONFIGURATION_LIMIT,
};
