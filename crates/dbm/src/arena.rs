//! A free-list arena for DBM entry buffers.
//!
//! The zone-graph interner is the allocation hot path of a timed
//! exploration: every committed configuration clones a candidate zone to
//! normalise it, and periodic sweeps drop zones nothing references any more.
//! [`DbmArena`] keeps the entry buffers of retired matrices on a bounded
//! free list so those clones stop churning the global allocator.
//!
//! The arena is deliberately **not** thread-safe: it lives inside the
//! interner's mutex and is only touched from the exploration driver's
//! single-threaded deterministic merge, so its [`ArenaStats`] are identical
//! for every thread count.

use crate::entry::Entry;
use crate::matrix::Dbm;

/// How many retired buffers the free list keeps before dropping the rest.
const FREE_LIST_CAP: usize = 256;

/// Allocation counters of a [`DbmArena`], reported through `ZoneReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Matrices built from a fresh heap allocation.
    pub allocated: usize,
    /// Matrices built by reusing a recycled buffer.
    pub reused: usize,
    /// Buffers handed back to the free list (bounded by its capacity).
    pub recycled: usize,
    /// Bytes of distinct interned zones charged through
    /// [`DbmArena::charge_zone`] — a monotone count of the entry storage the
    /// interner has committed, independent of free-list reuse. Deterministic
    /// for every thread count because charging happens only from the
    /// driver's single-threaded merge.
    pub zone_bytes: usize,
}

/// A bounded free list of DBM entry buffers, all for one clock count.
#[derive(Debug, Default)]
pub struct DbmArena {
    free: Vec<Vec<Entry>>,
    stats: ArenaStats,
}

impl DbmArena {
    /// An empty arena.
    pub fn new() -> DbmArena {
        DbmArena::default()
    }

    /// Clones `src`, reusing a recycled buffer when one of the right size is
    /// available.
    pub fn clone_dbm(&mut self, src: &Dbm) -> Dbm {
        let entries = src.entries();
        match self.free.pop() {
            Some(mut buffer) if buffer.capacity() >= entries.len() => {
                self.stats.reused += 1;
                buffer.clear();
                buffer.extend_from_slice(entries);
                Dbm::from_entries(src.clock_count(), buffer)
            }
            other => {
                // A mismatched buffer (different model dimension) is useless
                // here; drop it rather than hold the slot hostage.
                drop(other);
                self.stats.allocated += 1;
                Dbm::from_entries(src.clock_count(), entries.to_vec())
            }
        }
    }

    /// Hands a retired matrix's buffer back to the free list (dropped
    /// silently once the list is at capacity).
    pub fn recycle(&mut self, dbm: Dbm) {
        if self.free.len() < FREE_LIST_CAP {
            self.stats.recycled += 1;
            self.free.push(dbm.into_entries());
        }
    }

    /// Charges the entry storage of one newly interned zone and returns the
    /// number of bytes charged. The count is monotone — sweeps do not give
    /// bytes back — so it measures how much zone memory the exploration has
    /// ever committed, the quantity a `max_zone_bytes` budget bounds.
    pub fn charge_zone(&mut self, dbm: &Dbm) -> usize {
        let bytes = std::mem::size_of_val(dbm.entries());
        self.stats.zone_bytes += bytes;
        bytes
    }

    /// The arena's allocation counters so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_recycle_reuse_buffers() {
        let mut arena = DbmArena::new();
        let mut zone = Dbm::zero(2);
        zone.up();

        let first = arena.clone_dbm(&zone);
        assert_eq!(first, zone);
        assert_eq!(arena.stats().allocated, 1);
        assert_eq!(arena.stats().reused, 0);

        arena.recycle(first);
        assert_eq!(arena.stats().recycled, 1);

        let second = arena.clone_dbm(&zone);
        assert_eq!(second, zone);
        assert_eq!(arena.stats().reused, 1);
        assert_eq!(arena.stats().allocated, 1);
    }

    #[test]
    fn zone_byte_charges_are_monotone_and_sized_by_entries() {
        let mut arena = DbmArena::new();
        let zone = Dbm::zero(3);
        let per_zone = std::mem::size_of_val(zone.entries());
        assert!(per_zone > 0);
        assert_eq!(arena.charge_zone(&zone), per_zone);
        assert_eq!(arena.charge_zone(&zone), per_zone);
        assert_eq!(arena.stats().zone_bytes, 2 * per_zone);
        // Recycling gives nothing back: the count is monotone.
        arena.recycle(zone);
        assert_eq!(arena.stats().zone_bytes, 2 * per_zone);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut arena = DbmArena::new();
        for _ in 0..FREE_LIST_CAP + 10 {
            let zone = Dbm::zero(1);
            arena.recycle(zone);
        }
        assert_eq!(arena.stats().recycled, FREE_LIST_CAP);
    }
}
