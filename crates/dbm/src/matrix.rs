//! Difference bound matrices (DBMs).
//!
//! A DBM over clocks `x_1 … x_n` (plus the reference clock `x_0 = 0`)
//! represents the convex zone of clock valuations satisfying
//! `x_i − x_j ≺ d[i][j]` for all `i, j`. This is the standard data structure
//! of zone-based timed model checkers (UPPAAL, Kronos); here it backs the
//! baseline exact timed-reachability engine that the relative-timing approach
//! of the paper is compared against.

use std::fmt;

use crate::entry::Entry;

/// A difference bound matrix over `clock_count` real clocks (plus the
/// implicit reference clock 0).
///
/// All operations keep the matrix in canonical (all-pairs tightened) form, so
/// inclusion and emptiness tests are constant-per-entry scans.
///
/// # Examples
///
/// ```
/// use dbm::Dbm;
/// // Two clocks, both start at 0 and advance together.
/// let mut zone = Dbm::zero(2);
/// zone.up();                    // let time pass
/// zone.constrain_upper(1, 5);   // x1 <= 5
/// assert!(!zone.is_empty());
/// assert!(zone.includes(&Dbm::zero(2)));
/// // x1 and x2 advanced together, so x1 - x2 = 0 still holds.
/// assert_eq!(zone.upper_bound(1), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dbm {
    /// Number of real clocks (dimension is `clocks + 1`).
    clocks: usize,
    /// Row-major `(clocks+1) × (clocks+1)` matrix.
    entries: Vec<Entry>,
}

impl Dbm {
    /// The zone where every clock equals 0.
    pub fn zero(clocks: usize) -> Self {
        let dim = clocks + 1;
        // Every difference (including against the reference clock) is exactly
        // 0, which the all-`≤0` matrix expresses in canonical form.
        Dbm {
            clocks,
            entries: vec![Entry::LE_ZERO; dim * dim],
        }
    }

    /// The unconstrained zone (all clock values ≥ 0 allowed).
    pub fn universe(clocks: usize) -> Self {
        let dim = clocks + 1;
        let mut dbm = Dbm {
            clocks,
            entries: vec![Entry::INFINITY; dim * dim],
        };
        for i in 0..dim {
            dbm.set(i, i, Entry::LE_ZERO);
            // Clocks are non-negative: 0 - x_i <= 0.
            dbm.set(0, i, Entry::LE_ZERO);
        }
        dbm
    }

    /// Number of real clocks.
    pub fn clock_count(&self) -> usize {
        self.clocks
    }

    fn dim(&self) -> usize {
        self.clocks + 1
    }

    /// Entry `(i, j)`: the bound on `x_i − x_j`.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds the dimension.
    pub fn get(&self, i: usize, j: usize) -> Entry {
        assert!(i < self.dim() && j < self.dim(), "clock index out of range");
        self.entries[i * self.dim() + j]
    }

    fn set(&mut self, i: usize, j: usize, e: Entry) {
        let dim = self.dim();
        self.entries[i * dim + j] = e;
    }

    /// Puts the matrix in canonical form (all-pairs shortest paths).
    pub fn canonicalize(&mut self) {
        let dim = self.dim();
        for k in 0..dim {
            for i in 0..dim {
                let dik = self.get(i, k);
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..dim {
                    let candidate = dik + self.get(k, j);
                    if candidate < self.get(i, j) {
                        self.set(i, j, candidate);
                    }
                }
            }
        }
    }

    /// Returns `true` if the zone contains no valuation.
    pub fn is_empty(&self) -> bool {
        (0..self.dim()).any(|i| self.get(i, i) < Entry::LE_ZERO)
    }

    /// Lets time elapse (removes the upper bounds of all clocks).
    pub fn up(&mut self) {
        for i in 1..self.dim() {
            self.set(i, 0, Entry::INFINITY);
        }
    }

    /// Resets clock `x` to 0.
    ///
    /// # Panics
    ///
    /// Panics if `x` is 0 (the reference clock) or exceeds the dimension.
    pub fn reset(&mut self, x: usize) {
        assert!(x > 0 && x < self.dim(), "cannot reset the reference clock");
        for j in 0..self.dim() {
            self.set(x, j, self.get(0, j));
            self.set(j, x, self.get(j, 0));
        }
        self.set(x, x, Entry::LE_ZERO);
    }

    /// Adds the constraint `x_i − x_j ≺ bound` and re-canonicalises
    /// incrementally.
    pub fn constrain(&mut self, i: usize, j: usize, bound: Entry) {
        if bound >= self.get(i, j) {
            return;
        }
        self.set(i, j, bound);
        if self.get(j, i).conflicts_with(bound) {
            // Mark empty explicitly.
            self.set(0, 0, Entry::LT_ZERO);
            return;
        }
        let dim = self.dim();
        for a in 0..dim {
            for b in 0..dim {
                let via_ij = self.get(a, i) + bound + self.get(j, b);
                if via_ij < self.get(a, b) {
                    self.set(a, b, via_ij);
                }
            }
        }
    }

    /// Adds the non-strict upper bound `x ≤ value`.
    pub fn constrain_upper(&mut self, x: usize, value: i64) {
        self.constrain(x, 0, Entry::le(value));
    }

    /// Adds the non-strict lower bound `x ≥ value`.
    pub fn constrain_lower(&mut self, x: usize, value: i64) {
        self.constrain(0, x, Entry::le(-value));
    }

    /// Upper bound of clock `x` in the zone, or `None` if unbounded.
    pub fn upper_bound(&self, x: usize) -> Option<i64> {
        self.get(x, 0).value()
    }

    /// Lower bound of clock `x` in the zone (always finite, ≥ 0 in canonical
    /// form).
    pub fn lower_bound(&self, x: usize) -> i64 {
        self.get(0, x).value().map_or(0, |v| -v)
    }

    /// Returns `true` if `self` includes `other` (every valuation of `other`
    /// is a valuation of `self`). Both matrices must be canonical.
    pub fn includes(&self, other: &Dbm) -> bool {
        assert_eq!(self.clocks, other.clocks, "dimension mismatch");
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a >= b)
    }

    /// Returns `true` if `self` is included in the non-convex aLU
    /// abstraction of `other` (`self ⊆ aLU(other)`) under the given LU
    /// bounds — the simulation-based coverage check of Herbreteau,
    /// Srivathsan and Walukiewicz, "Better abstractions for timed automata"
    /// (LICS 2012). The widened zone is never materialised: the check runs
    /// per clock pair in O(n²) on the two convex matrices directly.
    ///
    /// `self ⊄ aLU(other)` iff there are clocks `x ≠ y` (0 = reference)
    /// with: the zone reaches `x` values ≤ `U(x)` (so an upper comparison on
    /// `x` can still discriminate), `other` bounds `x_y − x_x` strictly
    /// tighter than `self` does, and that tighter bound still bites after
    /// relaxing `y` below `−L(y)`. Coverage by this relation is strictly
    /// coarser than convex [`includes`](Dbm::includes) and remains exact for
    /// discrete-state reachability.
    ///
    /// `lower` / `upper` are indexed by clock as in
    /// [`extrapolate_lu`](Dbm::extrapolate_lu) (index 0 is the reference
    /// clock and must hold 0). Both matrices must be canonical and
    /// non-empty.
    pub fn included_in_alu(&self, other: &Dbm, lower: &[i64], upper: &[i64]) -> bool {
        assert_eq!(self.clocks, other.clocks, "dimension mismatch");
        let dim = self.dim();
        assert!(
            lower.len() >= dim && upper.len() >= dim,
            "LU bound vectors shorter than the dimension"
        );
        for (x, &upper_x) in upper.iter().enumerate().take(dim) {
            // If the zone lies entirely above U(x) the pair (x, ·) cannot
            // witness escape: `Z_{0x} < (≤, −U(x))` means every valuation
            // has x > U(x).
            if self.get(0, x) < Entry::le(-upper_x) {
                continue;
            }
            for (y, &lower_y) in lower.iter().enumerate().take(dim) {
                if x == y {
                    continue;
                }
                let other_yx = other.get(y, x);
                if other_yx >= self.get(y, x) {
                    continue;
                }
                if other_yx + Entry::lt(-lower_y) < self.get(0, x) {
                    return false;
                }
            }
        }
        true
    }

    /// Intersects `self` with `other` in place and re-canonicalises.
    pub fn intersect(&mut self, other: &Dbm) {
        assert_eq!(self.clocks, other.clocks, "dimension mismatch");
        for i in 0..self.entries.len() {
            self.entries[i] = self.entries[i].min(other.entries[i]);
        }
        self.canonicalize();
    }

    /// Returns `true` if the zone intersected with `x_i − x_j ≺ bound` is
    /// non-empty, without modifying `self`.
    pub fn satisfies(&self, i: usize, j: usize, bound: Entry) -> bool {
        !self.get(j, i).conflicts_with(bound)
    }

    /// Returns `true` if the zone pins clock `x` to exactly 0 (both bounds
    /// `≤ 0`). In canonical form the row and column of a pinned clock mirror
    /// the reference row and column, so a pinned clock never needs resetting.
    pub fn pins_to_zero(&self, x: usize) -> bool {
        self.get(x, 0) == Entry::LE_ZERO && self.get(0, x) == Entry::LE_ZERO
    }

    /// Coarse LU-bounds extrapolation (`Extra_LU` of Behrmann, Bouyer,
    /// Larsen and Pelánek, 2004): widens away every bound that the per-clock
    /// constants render irrelevant, so zones differing only above the bounds
    /// collapse to one representative. Sound and *exact* for discrete-state
    /// reachability when `lower[x]` dominates every lower-comparison
    /// constant (`x ≥ c` guards) and `upper[x]` every upper-comparison
    /// constant (`x ≤ c` invariants) of clock `x`.
    ///
    /// `lower` / `upper` are indexed by clock (index 0 is the reference
    /// clock and must hold 0); all constants must be non-negative — a clock
    /// with no upper comparisons takes `upper[x] = 0`, the coarsest sound
    /// choice.
    ///
    /// The matrix must be canonical on entry. Returns `true` if any entry
    /// was widened; the result is then generally **not** canonical and the
    /// caller must re-canonicalise before further zone operations.
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) -> bool {
        let dim = self.dim();
        assert!(
            lower.len() >= dim && upper.len() >= dim,
            "LU bound vectors shorter than the dimension"
        );
        // The conditions consult the zone's original lower bounds (row 0),
        // which the `i == 0` arm rewrites; snapshot them first.
        let entry_bound: Vec<i64> = (0..dim)
            .map(|j| self.get(0, j).value().map_or(0, |v| -v))
            .collect();
        let mut changed = false;
        for i in 0..dim {
            for j in 0..dim {
                if i == j {
                    continue;
                }
                let d = self.get(i, j);
                if i > 0 {
                    // Bounds involving x_i above L(x_i) are irrelevant: the
                    // entry itself exceeds L, or the zone already starts
                    // above L.
                    if (!d.is_infinite() && d > Entry::le(lower[i])) || entry_bound[i] > lower[i] {
                        if !d.is_infinite() {
                            self.set(i, j, Entry::INFINITY);
                            changed = true;
                        }
                        continue;
                    }
                }
                if j > 0 && entry_bound[j] > upper[j] {
                    // The zone's lower bound on x_j exceeds U(x_j): no upper
                    // comparison can distinguish it any more. Row 0 keeps
                    // the coarse `x_j > U(x_j)`, every other row drops the
                    // bound entirely.
                    let widened = if i == 0 {
                        Entry::lt(-upper[j])
                    } else {
                        Entry::INFINITY
                    };
                    if widened > d {
                        self.set(i, j, widened);
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// The raw entry buffer (row-major), for the arena's buffer reuse.
    pub(crate) fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Consumes the matrix and hands its buffer back, for the arena's
    /// free list.
    pub(crate) fn into_entries(self) -> Vec<Entry> {
        self.entries
    }

    /// Rebuilds a matrix from a recycled buffer already holding the entries
    /// of a `clocks`-clock DBM.
    pub(crate) fn from_entries(clocks: usize, entries: Vec<Entry>) -> Dbm {
        debug_assert_eq!(entries.len(), (clocks + 1) * (clocks + 1));
        Dbm { clocks, entries }
    }

    /// Feeds a cheap, deterministic sample of the matrix into a hasher.
    ///
    /// Hashing every entry of a large canonical DBM costs more than a table
    /// lookup saves, so interners hash the dimension plus a fixed stride of
    /// entries. Equal zones always sample equally; unequal zones may collide
    /// and must be separated by full equality.
    pub fn sample_hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash;
        self.clocks.hash(state);
        let stride = (self.entries.len() / 16).max(1);
        for entry in self.entries.iter().step_by(stride) {
            entry.hash(state);
        }
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                write!(f, "{:>8}", self.get(i, j).to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_zone_is_point() {
        let z = Dbm::zero(2);
        assert!(!z.is_empty());
        assert_eq!(z.upper_bound(1), Some(0));
        assert_eq!(z.lower_bound(1), 0);
        assert_eq!(z.upper_bound(2), Some(0));
    }

    #[test]
    fn universe_allows_everything() {
        let u = Dbm::universe(2);
        assert!(!u.is_empty());
        assert_eq!(u.upper_bound(1), None);
        assert!(u.includes(&Dbm::zero(2)));
    }

    #[test]
    fn up_then_constrain() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain_upper(1, 5);
        assert!(!z.is_empty());
        assert_eq!(z.upper_bound(1), Some(5));
        // Clocks advance together, so x2 <= 5 follows after canonicalisation.
        let mut z2 = z.clone();
        z2.canonicalize();
        assert_eq!(z2.upper_bound(2), Some(5));
    }

    #[test]
    fn contradictory_constraints_empty_the_zone() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain_lower(1, 10);
        z.constrain_upper(1, 5);
        assert!(z.is_empty());
    }

    #[test]
    fn reset_after_delay() {
        let mut z = Dbm::zero(2);
        z.up();
        z.constrain_lower(1, 3);
        z.constrain_upper(1, 4);
        z.reset(2);
        z.canonicalize();
        assert_eq!(z.lower_bound(2), 0);
        assert_eq!(z.upper_bound(2), Some(0));
        // x1 keeps its bounds.
        assert_eq!(z.lower_bound(1), 3);
        assert_eq!(z.upper_bound(1), Some(4));
        // And the difference x1 - x2 is between 3 and 4.
        assert_eq!(z.get(1, 2), Entry::le(4));
        assert_eq!(z.get(2, 1), Entry::le(-3));
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let mut small = Dbm::zero(1);
        small.up();
        small.constrain_upper(1, 2);
        let mut big = Dbm::zero(1);
        big.up();
        big.constrain_upper(1, 10);
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
        assert!(big.includes(&big));
    }

    #[test]
    fn satisfies_matches_constrain() {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain_upper(1, 5);
        // Can x1 be >= 3? (0 - x1 <= -3)
        assert!(z.satisfies(0, 1, Entry::le(-3)));
        // Can x1 be >= 6?
        assert!(!z.satisfies(0, 1, Entry::le(-6)));
    }

    #[test]
    fn intersect_tightens() {
        let mut a = Dbm::zero(1);
        a.up();
        a.constrain_upper(1, 10);
        let mut b = Dbm::zero(1);
        b.up();
        b.constrain_lower(1, 4);
        a.intersect(&b);
        assert!(!a.is_empty());
        assert_eq!(a.lower_bound(1), 4);
        assert_eq!(a.upper_bound(1), Some(10));
    }

    #[test]
    #[should_panic(expected = "reference clock")]
    fn resetting_reference_clock_panics() {
        let mut z = Dbm::zero(1);
        z.reset(0);
    }

    /// A one-clock band `l ≤ x ≤ u`.
    fn band(l: i64, u: i64) -> Dbm {
        let mut z = Dbm::zero(1);
        z.up();
        z.constrain_lower(1, l);
        z.constrain_upper(1, u);
        z.canonicalize();
        z
    }

    #[test]
    fn alu_inclusion_refines_convex_inclusion() {
        let lu = (&[0, 2][..], &[0, 2][..]);
        // Convex inclusion always implies aLU coverage.
        assert!(band(1, 2).includes(&band(1, 2)));
        assert!(band(1, 2).included_in_alu(&band(1, 2), lu.0, lu.1));
        assert!(band(0, 5).includes(&band(1, 2)));
        assert!(band(1, 2).included_in_alu(&band(0, 5), lu.0, lu.1));
        // ... but not conversely: with L = U = 2 every valuation above 2 is
        // indistinguishable, so [3, 10] ⊆ aLU([3, 4]) without convex
        // inclusion.
        assert!(!band(3, 4).includes(&band(3, 10)));
        assert!(band(3, 10).included_in_alu(&band(3, 4), lu.0, lu.1));
        // Below the bounds the check degenerates to convex inclusion.
        assert!(!band(0, 3).included_in_alu(&band(1, 2), lu.0, lu.1));
        assert!(!band(2, 2).included_in_alu(&band(0, 1), lu.0, lu.1));
    }

    #[test]
    fn alu_inclusion_matches_membership_of_extrapolated_representative() {
        // Against a stored zone already widened by Extra_LU the per-pair
        // check must agree with convex inclusion in the widened matrix
        // whenever that widening is itself convex.
        let lower = [0, 3];
        let upper = [0, 1];
        let mut stored = band(2, 6);
        if stored.extrapolate_lu(&lower, &upper) {
            stored.canonicalize();
        }
        for (l, u) in [(2, 6), (2, 100), (5, 7), (0, 1), (1, 2)] {
            let candidate = band(l, u);
            assert_eq!(
                candidate.included_in_alu(&stored, &lower, &upper),
                stored.includes(&candidate),
                "candidate [{l}, {u}] vs Extra_LU([2, 6])"
            );
        }
    }

    #[test]
    fn alu_inclusion_observes_clock_differences() {
        // Two clocks, candidate pins x1 − x2 = 3, stored pins x1 − x2 = 0;
        // both inside the LU bounds, so the difference must discriminate.
        let mut stored = Dbm::zero(2);
        stored.up();
        stored.constrain_upper(1, 4);
        stored.canonicalize();
        let mut candidate = Dbm::zero(2);
        candidate.up();
        candidate.constrain_lower(1, 3);
        candidate.constrain_upper(1, 4);
        candidate.reset(2);
        candidate.up();
        candidate.constrain_upper(2, 1);
        candidate.canonicalize();
        let lower = [0, 10, 10];
        let upper = [0, 10, 10];
        assert!(!candidate.included_in_alu(&stored, &lower, &upper));
        // With the offset zone as the stored one the candidate covers
        // itself.
        assert!(candidate.included_in_alu(&candidate.clone(), &lower, &upper));
    }
}
