//! Bound entries of a difference bound matrix.
//!
//! Each entry of a DBM is a constraint `x − y ≺ c` where `≺` is `<` or `≤`
//! and `c` is an integer or `∞`. Entries are encoded in a single `i64`
//! (`2·c + 1` for `≤ c`, `2·c` for `< c`, `i64::MAX` for `∞`) so that the
//! natural integer ordering coincides with constraint tightness and addition
//! is a couple of arithmetic operations.

use std::fmt;

/// A DBM entry: an upper bound on a clock difference, with strictness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Entry(i64);

impl Entry {
    /// The unbounded entry (`< ∞`).
    pub const INFINITY: Entry = Entry(i64::MAX);

    /// The entry `≤ 0`, the diagonal value of a canonical non-empty DBM.
    pub const LE_ZERO: Entry = Entry(1);

    /// The entry `< 0`, used to mark empty zones.
    pub const LT_ZERO: Entry = Entry(0);

    /// Creates a non-strict bound `≤ value`.
    pub fn le(value: i64) -> Entry {
        Entry(value * 2 + 1)
    }

    /// Creates a strict bound `< value`.
    pub fn lt(value: i64) -> Entry {
        Entry(value * 2)
    }

    /// Returns `true` if this is the unbounded entry.
    pub fn is_infinite(self) -> bool {
        self == Entry::INFINITY
    }

    /// The numeric bound, or `None` if infinite.
    pub fn value(self) -> Option<i64> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0 >> 1)
        }
    }

    /// Returns `true` if the bound is strict (`<`).
    ///
    /// The infinite bound is conventionally strict.
    pub fn is_strict(self) -> bool {
        self.is_infinite() || self.0 & 1 == 0
    }

    /// The tighter (smaller) of two bounds.
    #[must_use]
    pub fn min(self, other: Entry) -> Entry {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Negated bound used when checking satisfiability of the conjunction of
    /// `x − y ≺ c` with `y − x ≺' c'`: the pair is unsatisfiable iff
    /// `c + c' < 0` (strictness taken into account by entry addition against
    /// [`Entry::LE_ZERO`]).
    pub fn conflicts_with(self, other: Entry) -> bool {
        self + other < Entry::LE_ZERO
    }
}

impl std::ops::Add for Entry {
    type Output = Entry;

    /// Sum of two bounds (`∞` absorbs, strictness propagates).
    fn add(self, other: Entry) -> Entry {
        if self.is_infinite() || other.is_infinite() {
            return Entry::INFINITY;
        }
        let value = (self.0 >> 1) + (other.0 >> 1);
        let non_strict = (self.0 & 1 == 1) && (other.0 & 1 == 1);
        if non_strict {
            Entry::le(value)
        } else {
            Entry::lt(value)
        }
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "<inf")
        } else if self.is_strict() {
            write!(f, "<{}", self.0 >> 1)
        } else {
            write!(f, "<={}", self.0 >> 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_tightness() {
        assert!(Entry::lt(5) < Entry::le(5));
        assert!(Entry::le(5) < Entry::lt(6));
        assert!(Entry::le(100) < Entry::INFINITY);
        assert_eq!(Entry::le(3).min(Entry::lt(3)), Entry::lt(3));
    }

    #[test]
    fn addition() {
        assert_eq!(Entry::le(2) + Entry::le(3), Entry::le(5));
        assert_eq!(Entry::le(2) + Entry::lt(3), Entry::lt(5));
        assert_eq!(Entry::lt(-1) + Entry::lt(1), Entry::lt(0));
        assert_eq!(Entry::le(2) + Entry::INFINITY, Entry::INFINITY);
    }

    #[test]
    fn accessors() {
        assert_eq!(Entry::le(4).value(), Some(4));
        assert_eq!(Entry::lt(-2).value(), Some(-2));
        assert_eq!(Entry::INFINITY.value(), None);
        assert!(Entry::lt(7).is_strict());
        assert!(!Entry::le(7).is_strict());
        assert!(Entry::INFINITY.is_strict());
    }

    #[test]
    fn conflict_detection() {
        // x - y <= 2 and y - x <= -3 is unsatisfiable (2 + -3 < 0).
        assert!(Entry::le(2).conflicts_with(Entry::le(-3)));
        // x - y <= 2 and y - x <= -2 is satisfiable (sum = 0, non-strict).
        assert!(!Entry::le(2).conflicts_with(Entry::le(-2)));
        // x - y < 2 and y - x < -2 is unsatisfiable (strict sum 0).
        assert!(Entry::lt(2).conflicts_with(Entry::lt(-2)));
    }

    #[test]
    fn display() {
        assert_eq!(Entry::le(3).to_string(), "<=3");
        assert_eq!(Entry::lt(-1).to_string(), "<-1");
        assert_eq!(Entry::INFINITY.to_string(), "<inf");
    }
}
