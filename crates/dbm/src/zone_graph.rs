//! Zone-graph exploration of the timed semantics of a timed transition
//! system.
//!
//! This is the *conventional* approach the paper contrasts with: enumerate
//! the exact timed state space symbolically, pairing each discrete state with
//! a clock zone (one clock per event, measuring the time since the event's
//! current enabling). It serves two purposes in this repository:
//!
//! 1. **Ground truth** — on small models it decides exactly which marked
//!    (violating) states are reachable when delays are taken into account,
//!    which cross-checks the relative-timing engine.
//! 2. **Baseline** — its blow-up with pipeline depth quantifies the paper's
//!    motivation for abstraction and relative timing (the scaling benchmark).

use std::collections::{BTreeSet, HashMap, VecDeque};

use tts::{Bound, EventId, StateId, TimedTransitionSystem};

use crate::entry::Entry;
use crate::matrix::Dbm;

/// Options for the zone-graph exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneExplorationOptions {
    /// Maximum number of symbolic configurations to explore before aborting.
    pub configuration_limit: usize,
}

impl Default for ZoneExplorationOptions {
    fn default() -> Self {
        ZoneExplorationOptions {
            configuration_limit: 200_000,
        }
    }
}

/// Result of a completed zone-graph exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneReport {
    /// Discrete states reachable in the timed semantics.
    pub reachable_states: Vec<StateId>,
    /// Reachable states that carry violation marks.
    pub violating_states: Vec<StateId>,
    /// Reachable states from which no event can fire.
    pub deadlock_states: Vec<StateId>,
    /// Number of symbolic configurations (state, zone) explored.
    pub configurations: usize,
}

impl ZoneReport {
    /// Returns `true` if no violating state is timed-reachable and no
    /// reachable state deadlocks.
    pub fn is_safe(&self) -> bool {
        self.violating_states.is_empty() && self.deadlock_states.is_empty()
    }
}

/// Outcome of [`explore_timed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneOutcome {
    /// Exploration finished; the exact set of timed-reachable states is in
    /// the report.
    Completed(ZoneReport),
    /// The configuration limit was exceeded (state explosion); only a partial
    /// count is available.
    LimitExceeded {
        /// Number of configurations explored before aborting.
        explored: usize,
    },
}

impl ZoneOutcome {
    /// The report, if the exploration completed.
    pub fn report(&self) -> Option<&ZoneReport> {
        match self {
            ZoneOutcome::Completed(r) => Some(r),
            ZoneOutcome::LimitExceeded { .. } => None,
        }
    }
}

/// Explores the timed state space of `timed` with default options.
///
/// # Examples
///
/// ```
/// use dbm::explore_timed;
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // A fast event and a slow event race; the state reached by the slow event
/// // firing first is unreachable in the timed semantics.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let s_fast = b.add_state("fast-first");
/// let s_slow = b.add_state("slow-first");
/// b.add_transition(s0, "fast", s_fast);
/// b.add_transition(s0, "slow", s_slow);
/// b.mark_violation(s_slow, "slow overtook fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
/// let report = explore_timed(&timed).report().unwrap().clone();
/// assert!(report.violating_states.is_empty());
/// assert_eq!(report.reachable_states.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explore_timed(timed: &TimedTransitionSystem) -> ZoneOutcome {
    explore_timed_with(timed, ZoneExplorationOptions::default())
}

/// Explores the timed state space with explicit options.
pub fn explore_timed_with(
    timed: &TimedTransitionSystem,
    options: ZoneExplorationOptions,
) -> ZoneOutcome {
    let ts = timed.underlying();
    let clock_count = ts.alphabet().len();
    let clock_of = |e: EventId| e.index() + 1;

    let apply_invariant = |zone: &mut Dbm, state: StateId| {
        for &event in &ts.enabled(state) {
            if let Bound::Finite(upper) = timed.delay(event).upper() {
                zone.constrain_upper(clock_of(event), upper.as_i64());
            }
        }
    };

    // Per-state list of maximal zones seen so far.
    let mut seen: HashMap<StateId, Vec<Dbm>> = HashMap::new();
    let mut queue: VecDeque<(StateId, Dbm)> = VecDeque::new();
    let mut reachable: BTreeSet<StateId> = BTreeSet::new();
    let mut deadlocks: BTreeSet<StateId> = BTreeSet::new();
    let mut configurations = 0usize;

    let push = |state: StateId,
                zone: Dbm,
                seen: &mut HashMap<StateId, Vec<Dbm>>,
                queue: &mut VecDeque<(StateId, Dbm)>| {
        let zones = seen.entry(state).or_default();
        if zones.iter().any(|z| z.includes(&zone)) {
            return;
        }
        zones.retain(|z| !zone.includes(z));
        zones.push(zone.clone());
        queue.push_back((state, zone));
    };

    for &s0 in ts.initial_states() {
        let mut zone = Dbm::zero(clock_count);
        zone.up();
        apply_invariant(&mut zone, s0);
        zone.canonicalize();
        if !zone.is_empty() {
            push(s0, zone, &mut seen, &mut queue);
        }
    }

    while let Some((state, zone)) = queue.pop_front() {
        configurations += 1;
        if configurations > options.configuration_limit {
            return ZoneOutcome::LimitExceeded {
                explored: configurations,
            };
        }
        reachable.insert(state);
        let enabled_here = ts.enabled(state);
        let mut fired_any = false;
        for &(event, target) in ts.transitions_from(state) {
            // Guard: the event's clock has reached its lower bound.
            let lower = timed.delay(event).lower().as_i64();
            let mut next = zone.clone();
            next.constrain(0, clock_of(event), Entry::le(-lower));
            if next.is_empty() {
                continue;
            }
            // Fire: reset the clocks of freshly enabled occurrences.
            let enabled_after = ts.enabled(target);
            for &e in &enabled_after {
                let freshly_enabled = e == event || !enabled_here.contains(&e);
                if freshly_enabled {
                    next.reset(clock_of(e));
                }
            }
            next.canonicalize();
            // Let time elapse under the target invariant.
            next.up();
            apply_invariant(&mut next, target);
            next.canonicalize();
            if next.is_empty() {
                continue;
            }
            fired_any = true;
            push(target, next, &mut seen, &mut queue);
        }
        if !fired_any && ts.transitions_from(state).is_empty() {
            deadlocks.insert(state);
        }
    }

    let violating_states = reachable
        .iter()
        .copied()
        .filter(|&s| !ts.violations(s).is_empty())
        .collect();
    ZoneOutcome::Completed(ZoneReport {
        reachable_states: reachable.iter().copied().collect(),
        violating_states,
        deadlock_states: deadlocks.into_iter().collect(),
        configurations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// The race example: fast [1,2] vs slow [5,9].
    fn race() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        let sboth = b.add_state("both");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.add_transition(sf, "slow", sboth);
        b.add_transition(ss, "fast", sboth);
        b.mark_violation(ss, "slow overtook fast");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("fast", d(1, 2));
        timed.set_delay_by_name("slow", d(5, 9));
        timed
    }

    #[test]
    fn timed_semantics_prunes_slow_first() {
        let outcome = explore_timed(&race());
        let report = outcome.report().unwrap();
        assert!(report.violating_states.is_empty());
        // s0, fast-first and both are reachable; slow-first is not.
        assert_eq!(report.reachable_states.len(), 3);
        // `both` has no outgoing transitions.
        assert_eq!(report.deadlock_states.len(), 1);
        assert!(!report.is_safe());
    }

    #[test]
    fn untimed_delays_allow_both_orders() {
        let mut b = TsBuilder::new("untimed-race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.set_initial(s0);
        let timed = TimedTransitionSystem::new(b.build().unwrap());
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 3);
    }

    #[test]
    fn cyclic_systems_terminate() {
        // A two-event oscillator: a [1,2] then b [1,2] forever.
        let mut b = TsBuilder::new("osc");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", d(1, 2));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 2);
        assert!(report.deadlock_states.is_empty());
        assert!(report.is_safe());
    }

    #[test]
    fn configuration_limit_aborts() {
        let outcome = explore_timed_with(
            &race(),
            ZoneExplorationOptions {
                configuration_limit: 1,
            },
        );
        assert!(matches!(outcome, ZoneOutcome::LimitExceeded { .. }));
        assert!(outcome.report().is_none());
    }

    #[test]
    fn urgency_is_respected_in_chains() {
        // a [0,1] enables c [3,4]; independent g [1,1] must fire before c
        // (its deadline 1 is below c's earliest enabling+lower = 0+3). The
        // state where c fires while g is still pending is unreachable.
        let mut b = TsBuilder::new("chain");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s_bad = b.add_state("bad");
        let s_ok = b.add_state("ok");
        let s_done = b.add_state("done");
        let a = b.add_transition(s0, "a", s1);
        let c = b.add_transition(s1, "c", s_bad);
        let g = b.add_transition(s1, "g", s_ok);
        b.add_transition_by_id(s_ok, c, s_done);
        b.add_transition_by_id(s_bad, g, s_done);
        let _ = (a, g);
        b.mark_violation(s_bad, "c before g");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(0, 1));
        timed.set_delay_by_name("c", d(3, 4));
        timed.set_delay_by_name("g", d(1, 1));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert!(report.violating_states.is_empty());
    }
}
