//! Zone-graph exploration of the timed semantics of a timed transition
//! system.
//!
//! This is the *conventional* approach the paper contrasts with: enumerate
//! the exact timed state space symbolically, pairing each discrete state with
//! a clock zone (one clock per event, measuring the time since the event's
//! current enabling). It serves two purposes in this repository:
//!
//! 1. **Ground truth** — on small models it decides exactly which marked
//!    (violating) states are reachable when delays are taken into account,
//!    which cross-checks the relative-timing engine.
//! 2. **Baseline** — its blow-up with pipeline depth quantifies the paper's
//!    motivation for abstraction and relative timing (the scaling benchmark).
//!
//! The frontier/dedup loop itself lives in the [`explore`] crate; this module
//! contributes the search space: configurations are `(state, zone)` pairs,
//! and — under a non-[`Exact`](Subsumption::Exact) [`Subsumption`] policy — a
//! configuration whose zone is *covered* by an already-seen zone of the same
//! state is skipped entirely, including configurations that were already
//! enqueued when the wider zone arrived (the pop-time subsumption check the
//! hand-rolled loop lacked). Coverage is convex inclusion under
//! [`Subsumption::Inclusion`] and the non-convex aLU simulation relation of
//! Herbreteau–Srivathsan–Walukiewicz under the default [`Subsumption::Alu`]
//! (see [`Dbm::included_in_alu`]); stored zones stay convex DBMs in every
//! policy — the non-convex abstraction exists only inside the O(n²) coverage
//! check, never as a materialised zone. Zones are interned behind [`Arc`]s,
//! so the many configurations sharing a zone after clock resets share one
//! canonical DBM allocation.
//!
//! # Zone abstraction
//!
//! With the default [`Extrapolation::LuActive`] the explorer applies the
//! standard zone-abstraction toolkit, both *exact for discrete-state
//! reachability* (the reachable / violating / deadlocked state sets are
//! identical to the exact engine's):
//!
//! * **Active-clock reduction** — the clock of an event disabled in a state
//!   carries no information (it is reset the moment the event is re-enabled,
//!   and no guard or invariant of the state consults it), so successor
//!   computation pins it to zero. Zones differing only in dead clock ages
//!   collapse to one representative.
//! * **LU-bounds extrapolation** (`Extra_LU`, Behrmann et al. 2004) — at
//!   interning time, bounds above the per-clock lower/upper delay constants
//!   of the model are widened away, so only finitely many zones exist per
//!   state and cyclic systems with unbounded clock drift terminate.
//! * **Per-state LU bounds** ([`Bounds::Local`], the default) — the
//!   [`LuBoundsProvider`] precomputes one L/U vector per discrete state by
//!   backward static guard analysis; extrapolation and the aLU check consult
//!   the state's own vector instead of the whole-model maxima. Local vectors
//!   are entrywise ≤ the global ones, so the abstraction only gets coarser;
//!   in this one-clock-per-event semantics the analysis converges to
//!   "enabled clocks carry their own event's constants, disabled clocks
//!   carry zero", which makes it exactly as strong as global bounds plus
//!   active-clock reduction — and strictly stronger than global bounds
//!   whenever active-clock reduction is off (e.g. `--extrapolation lu`).
//!
//! The widened matrices are cloned through a [`DbmArena`] free list living
//! inside the interner lock, so the hot path reuses retired entry buffers
//! instead of churning the global allocator; extrapolation, projection and
//! arena counters surface in [`ZoneReport`] and stay identical for every
//! thread count (they are only touched from the driver's deterministic
//! merge).

use std::collections::{BTreeSet, HashSet};
use std::convert::Infallible;
use std::sync::{Arc, Mutex};

use explore::{
    Bounds, BudgetMeter, ExploreOptions, ExploreOutcome, ExploreSpec, Extrapolation, SearchSpace,
    Subsumption, TraceOptions,
};
use tts::{Bound, EventId, StateId, Time, TimedTransitionSystem};

use crate::arena::{ArenaStats, DbmArena};
use crate::entry::Entry;
use crate::matrix::Dbm;

/// Configuration limit applied when [`ExploreSpec::limit`] is `None`.
pub const DEFAULT_CONFIGURATION_LIMIT: usize = 200_000;

/// Options for the zone-graph exploration: the shared [`ExploreSpec`] core
/// (threads / subsumption / limit / extrapolation / cancel / progress).
///
/// An unset [`ExploreSpec::limit`] resolves to
/// [`DEFAULT_CONFIGURATION_LIMIT`]. Subsumption skips a `(state, zone)`
/// configuration when an already-seen zone for that state covers it under
/// the chosen [`Subsumption`] policy — sound (coverage preserves
/// discrete-state reachability) and strictly reducing on models with
/// converging timing; [`Subsumption::Exact`] enumerates exact-duplicate
/// zones only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneExplorationOptions {
    /// The shared exploration knobs.
    pub spec: ExploreSpec,
}

/// Result of a completed zone-graph exploration.
///
/// All state lists are sorted by state id on construction, so reports are
/// order-stable however the exploration was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneReport {
    /// Discrete states reachable in the timed semantics (sorted).
    pub reachable_states: Vec<StateId>,
    /// Reachable states that carry violation marks (sorted).
    pub violating_states: Vec<StateId>,
    /// Reachable states from which no event can fire (sorted).
    pub deadlock_states: Vec<StateId>,
    /// Number of symbolic configurations (state, zone) explored.
    pub configurations: usize,
    /// Enqueued configurations skipped because a subsuming zone for the same
    /// state arrived before their turn (0 when subsumption is disabled).
    pub subsumed_configurations: usize,
    /// Subsumption skips only the non-convex aLU relation explains: at skip
    /// time no stored zone of the state contained the skipped zone
    /// convexly. Always ≤ `subsumed_configurations`; 0 unless the policy is
    /// [`Subsumption::Alu`].
    pub alu_subsumed: usize,
    /// Stored configurations whose zone LU-bounds extrapolation actually
    /// widened (0 under [`Extrapolation::None`]).
    pub extrapolated_zones: usize,
    /// Dead clock dimensions (clocks of disabled events, pinned to zero by
    /// active-clock reduction) summed over stored configurations (0 unless
    /// the mode is [`Extrapolation::LuActive`]).
    pub projected_clocks: usize,
    /// Discrete states whose static per-state LU vectors are strictly
    /// tighter than the global constants in at least one clock (0 under
    /// [`Bounds::Global`]). A static census of the [`LuBoundsProvider`]'s
    /// analysis, so it is deterministic for every thread count and identical
    /// between full and witness explorations.
    pub local_bound_states: usize,
    /// Total `(state, clock)` bound entries the static analysis tightened
    /// below their global constants (0 under [`Bounds::Global`]).
    pub tightened_clock_bounds: usize,
    /// Allocation counters of the interner's DBM arena.
    pub arena: ArenaStats,
}

impl ZoneReport {
    /// Returns `true` if no violating state is timed-reachable and no
    /// reachable state deadlocks.
    pub fn is_safe(&self) -> bool {
        self.violating_states.is_empty() && self.deadlock_states.is_empty()
    }
}

/// Outcome of [`explore_timed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneOutcome {
    /// Exploration finished; the exact set of timed-reachable states is in
    /// the report.
    Completed(ZoneReport),
    /// The configuration limit was exceeded (state explosion); only a partial
    /// count is available.
    LimitExceeded {
        /// Number of configurations explored before aborting.
        explored: usize,
        /// Enqueued configurations skipped by zone subsumption before the
        /// abort (0 when subsumption is disabled).
        subsumed: usize,
    },
    /// The [`ExploreSpec::cancel`](explore::ExploreSpec::cancel) token fired before the
    /// exploration finished.
    Cancelled {
        /// Number of configurations explored before the cancellation.
        explored: usize,
        /// Enqueued configurations skipped by zone subsumption before the
        /// cancellation (0 when subsumption is disabled).
        subsumed: usize,
    },
}

impl ZoneOutcome {
    /// The report, if the exploration completed.
    pub fn report(&self) -> Option<&ZoneReport> {
        match self {
            ZoneOutcome::Completed(r) => Some(r),
            ZoneOutcome::LimitExceeded { .. } | ZoneOutcome::Cancelled { .. } => None,
        }
    }
}

/// Interner entry with a cheap sampled hash: hashing every entry of a large
/// canonical DBM costs more than the lookup saves, so only a stride of the
/// matrix feeds the hasher. Equality stays exact, so collisions merely cost
/// a probe.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InternedZone(Arc<Dbm>);

impl std::hash::Hash for InternedZone {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.sample_hash(state);
    }
}

/// Index of the clock measuring the time since `event`'s current enabling
/// (clock 0 is the DBM reference clock).
fn clock_of(event: EventId) -> usize {
    event.index() + 1
}

/// One pair of per-clock LU extrapolation vectors, indexed by clock (index 0
/// is the reference clock and stays 0).
///
/// In this semantics every comparison a clock faces is known from the delay
/// window of its event: guards are the lower bounds `x ≥ δl` and invariants
/// the upper bounds `x ≤ δu`, so `L = δl` and `U = δu` — with `U = 0` for
/// events without an upper delay bound, the coarsest sound choice since no
/// upper comparison ever consults such a clock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LuBounds {
    lower: Vec<i64>,
    upper: Vec<i64>,
}

impl LuBounds {
    fn of(timed: &TimedTransitionSystem) -> LuBounds {
        let events = timed.underlying().alphabet().len();
        let mut lower = vec![0; events + 1];
        let mut upper = vec![0; events + 1];
        for index in 0..events {
            let delay = timed.delay(EventId::from_index(index));
            lower[index + 1] = delay.lower().as_i64();
            if let Bound::Finite(u) = delay.upper() {
                upper[index + 1] = u.as_i64();
            }
        }
        LuBounds { lower, upper }
    }
}

/// The deduplicated result of the per-state static guard analysis.
struct LocalBounds {
    /// The distinct LU vectors that occur (most states share one of a
    /// handful of vectors, so they are interned).
    table: Vec<LuBounds>,
    /// Per-state index into `table`.
    index: Vec<u32>,
    /// States whose local vectors are strictly tighter than the global
    /// constants in at least one clock.
    tightened_states: usize,
    /// Total `(state, clock)` bound entries strictly below their global
    /// constants, summed over all states.
    tightened_clock_bounds: usize,
    /// Backward sweeps until the fixpoint stabilised (≥ 1).
    sweeps: usize,
}

/// The LU bound vectors feeding zone extrapolation and the aLU coverage
/// check — one vector for the whole model under [`Bounds::Global`], or
/// per-discrete-state vectors from backward static guard analysis under
/// [`Bounds::Local`] (Behrmann et al.'s static guard analysis, instantiated
/// for the one-clock-per-event semantics).
///
/// # The static analysis
///
/// A clock's bound at state `s` is the join of every constraint it can face
/// along any path from `s` *before its next reset*:
///
/// * **Seed** — at `s` itself, the clock `x` of an event `e` enabled in `s`
///   faces `e`'s guard `x ≥ δl(e)` (when `e` fires) and the state invariant
///   `x ≤ δu(e)` (while time elapses in `s`), so it seeds `L = δl(e)`,
///   `U = δu(e)`. A disabled clock faces nothing and seeds `(0, 0)`.
/// * **Propagation** — for every transition `s --f--> t` that `x` survives
///   un-reset (in this semantics `x` is reset exactly when `e` is freshly
///   enabled in `t`, i.e. `e == f` or `e` was disabled in `s`), the bounds
///   at `t` flow back into the bounds at `s`.
///
/// Bounds only grow and are capped by the global per-clock constants, so the
/// backward sweep loop converges; the result never under-approximates the
/// global vector (every seed is ≤ the global constant and joins preserve
/// that). Local bounds subsume active-clock reduction statically: a disabled
/// clock's bounds are `(0, 0)`, so extrapolation erases whatever stale value
/// it carries.
pub struct LuBoundsProvider {
    /// The whole-model vector (also the fallback under [`Bounds::Global`]).
    global: LuBounds,
    /// The per-state analysis result (`None` under [`Bounds::Global`]).
    local: Option<LocalBounds>,
}

impl LuBoundsProvider {
    /// Builds the provider for `timed` under the given [`Bounds`] choice.
    pub fn new(timed: &TimedTransitionSystem, bounds: Bounds) -> LuBoundsProvider {
        let global = LuBounds::of(timed);
        let local = match bounds {
            Bounds::Global => None,
            Bounds::Local => Some(Self::analyze(timed, &global)),
        };
        LuBoundsProvider { global, local }
    }

    /// The backward fixpoint over the untimed transition structure.
    fn analyze(timed: &TimedTransitionSystem, global: &LuBounds) -> LocalBounds {
        let ts = timed.underlying();
        let events = ts.alphabet().len();
        let states = ts.state_count();
        let clocks = events + 1;

        // Enabledness bitmap (`active[s * events + e]`), computed once: the
        // sweep loop consults it per edge per clock.
        let mut active = vec![false; states * events];
        for s in 0..states {
            for &e in &ts.enabled(StateId::from_index(s)) {
                active[s * events + e.index()] = true;
            }
        }

        // Seeds, in two flat row-major `states × clocks` arrays.
        let mut lower = vec![0i64; states * clocks];
        let mut upper = vec![0i64; states * clocks];
        for s in 0..states {
            for index in 0..events {
                if active[s * events + index] {
                    let delay = timed.delay(EventId::from_index(index));
                    lower[s * clocks + index + 1] = delay.lower().as_i64();
                    if let Bound::Finite(u) = delay.upper() {
                        upper[s * clocks + index + 1] = u.as_i64();
                    }
                }
            }
        }

        // Backward sweeps to the least fixpoint. Reverse state order pays
        // off because state ids follow breadth-first discovery order, so
        // most edges point id-upward and one sweep propagates a whole
        // chain.
        let mut sweeps = 0;
        loop {
            sweeps += 1;
            let mut changed = false;
            for s in (0..states).rev() {
                for &(fired, target) in ts.transitions_from(StateId::from_index(s)) {
                    let t = target.index();
                    for index in 0..events {
                        // The clock survives the edge un-reset unless its
                        // event is freshly enabled in the target.
                        let fresh = active[t * events + index]
                            && (index == fired.index() || !active[s * events + index]);
                        if fresh {
                            continue;
                        }
                        let clock = index + 1;
                        let (tl, tu) = (lower[t * clocks + clock], upper[t * clocks + clock]);
                        if tl > lower[s * clocks + clock] {
                            lower[s * clocks + clock] = tl;
                            changed = true;
                        }
                        if tu > upper[s * clocks + clock] {
                            upper[s * clocks + clock] = tu;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Intern the per-state vectors (a handful of distinct vectors cover
        // hundreds of thousands of states) and take the tightening census
        // against the global constants.
        let mut interned: std::collections::HashMap<LuBounds, u32> =
            std::collections::HashMap::new();
        let mut table = Vec::new();
        let mut index = Vec::with_capacity(states);
        let mut tightened_states = 0;
        let mut tightened_clock_bounds = 0;
        for s in 0..states {
            let row = LuBounds {
                lower: lower[s * clocks..(s + 1) * clocks].to_vec(),
                upper: upper[s * clocks..(s + 1) * clocks].to_vec(),
            };
            let tightened = (1..clocks)
                .filter(|&c| row.lower[c] < global.lower[c] || row.upper[c] < global.upper[c])
                .count();
            if tightened > 0 {
                tightened_states += 1;
                tightened_clock_bounds += tightened;
            }
            let id = match interned.get(&row) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(table.len()).expect("bound table fits u32");
                    table.push(row.clone());
                    interned.insert(row, id);
                    id
                }
            };
            index.push(id);
        }
        LocalBounds {
            table,
            index,
            tightened_states,
            tightened_clock_bounds,
            sweeps,
        }
    }

    /// The bound vectors in effect at `state`.
    fn for_state(&self, state: StateId) -> &LuBounds {
        match &self.local {
            Some(local) => &local.table[local.index[state.index()] as usize],
            None => &self.global,
        }
    }

    /// The per-clock `L` vector at `state` (index 0 is the reference clock).
    pub fn lower(&self, state: StateId) -> &[i64] {
        &self.for_state(state).lower
    }

    /// The per-clock `U` vector at `state` (index 0 is the reference clock).
    pub fn upper(&self, state: StateId) -> &[i64] {
        &self.for_state(state).upper
    }

    /// States whose local vectors are strictly tighter than the global
    /// constants (0 under [`Bounds::Global`]).
    pub fn local_bound_states(&self) -> usize {
        self.local.as_ref().map_or(0, |l| l.tightened_states)
    }

    /// Total `(state, clock)` bound entries tightened below their global
    /// constants (0 under [`Bounds::Global`]).
    pub fn tightened_clock_bounds(&self) -> usize {
        self.local.as_ref().map_or(0, |l| l.tightened_clock_bounds)
    }

    /// Backward sweeps until the static analysis converged (0 under
    /// [`Bounds::Global`]).
    pub fn sweeps(&self) -> usize {
        self.local.as_ref().map_or(0, |l| l.sweeps)
    }
}

/// Active-clock reduction: pins the clocks of events disabled in `state` to
/// zero. Sound because a disabled clock is never consulted again before it
/// is reset (guards only read the fired — hence enabled — event's clock and
/// invariants only enabled events' clocks), and canonical-form preserving
/// (DBM reset keeps canonicity), so projected zones need no
/// re-canonicalisation. Pure per configuration, which lets it run in the
/// parallel expansion phase.
fn project_inactive(timed: &TimedTransitionSystem, zone: &mut Dbm, state: StateId) {
    let ts = timed.underlying();
    let enabled = ts.enabled(state);
    for index in 0..ts.alphabet().len() {
        let clock = index + 1;
        if !enabled.contains(&EventId::from_index(index)) && !zone.pins_to_zero(clock) {
            zone.reset(clock);
        }
    }
}

/// Lets time elapse only as far as the upper delay bounds of the events
/// enabled in `state` allow (the state's invariant). The zone may have more
/// clocks than the alphabet (the witness replay adds an absolute-time clock);
/// extra clocks are simply never constrained.
fn apply_invariant(timed: &TimedTransitionSystem, zone: &mut Dbm, state: StateId) {
    let ts = timed.underlying();
    for &event in &ts.enabled(state) {
        if let Bound::Finite(upper) = timed.delay(event).upper() {
            zone.constrain_upper(clock_of(event), upper.as_i64());
        }
    }
}

/// The zone reached by firing `event` from a state whose enabled events are
/// `enabled_here` into `target`: guard on the fired clock, reset of freshly
/// enabled clocks, time elapse and the target invariant. Returns `None` when
/// the firing is not timed-feasible (the guard or the target invariant
/// empties the zone). `enabled_here` is passed in so callers expanding
/// several transitions of one configuration compute it once.
///
/// This single function defines the timed successor relation; the explorer
/// and the witness replay both go through it, so a reconstructed trace
/// replays to exactly the zones the search stored. Under
/// [`Extrapolation::LuActive`] the successor is additionally projected onto
/// the clocks active in `target` (see [`project_inactive`]); the LU widening
/// itself happens later, at interning time, because it must only apply to
/// *stored* zones (it is a widening, so storing it keeps subsumption sound,
/// whereas candidates must stay exact for the inclusion checks).
fn timed_successor(
    timed: &TimedTransitionSystem,
    zone: &Dbm,
    enabled_here: &std::collections::BTreeSet<EventId>,
    event: EventId,
    target: StateId,
    extrapolation: Extrapolation,
) -> Option<Dbm> {
    let ts = timed.underlying();
    // Guard: the event's clock has reached its lower bound.
    let lower = timed.delay(event).lower().as_i64();
    let mut next = zone.clone();
    next.constrain(0, clock_of(event), Entry::le(-lower));
    if next.is_empty() {
        return None;
    }
    // Fire: reset the clocks of freshly enabled occurrences.
    for &e in &ts.enabled(target) {
        let freshly_enabled = e == event || !enabled_here.contains(&e);
        if freshly_enabled {
            next.reset(clock_of(e));
        }
    }
    next.canonicalize();
    // Let time elapse under the target invariant.
    next.up();
    apply_invariant(timed, &mut next, target);
    next.canonicalize();
    if next.is_empty() {
        return None;
    }
    if extrapolation == Extrapolation::LuActive {
        project_inactive(timed, &mut next, target);
    }
    Some(next)
}

/// The interner's mutable state: the canonical-zone table, the DBM arena
/// backing its clones, and the abstraction counters. One lock, only taken
/// from the driver's single-threaded merge, so every field is deterministic
/// for every thread count.
struct InternerState {
    /// Canonical-DBM interning table: equal zones share one allocation, so
    /// bucket storage and queued clones are reference bumps.
    zones: HashSet<InternedZone>,
    /// Inserts since the last sweep of dead entries (zones no longer
    /// referenced by any bucket or queue, e.g. after subsumption pruning).
    inserts: usize,
    /// Free list of retired DBM buffers, reused by extrapolation clones.
    arena: DbmArena,
    /// Stored zones that LU extrapolation actually widened.
    extrapolated: usize,
    /// Dead clock dimensions summed over stored configurations.
    projected: usize,
    /// Pop-time skips not explained by convex inclusion (see
    /// [`ZoneReport::alu_subsumed`]).
    alu_subsumed: usize,
}

impl InternerState {
    fn new() -> Mutex<InternerState> {
        Mutex::new(InternerState {
            zones: HashSet::new(),
            inserts: 0,
            arena: DbmArena::new(),
            extrapolated: 0,
            projected: 0,
            alu_subsumed: 0,
        })
    }
}

/// The timed search space: configurations pair a discrete state with an
/// interned clock zone.
struct ZoneSpace<'a> {
    timed: &'a TimedTransitionSystem,
    subsumption: Subsumption,
    extrapolation: Extrapolation,
    /// The LU bound vectors feeding extrapolation and the aLU check (unused
    /// under [`Extrapolation::None`] with a non-aLU policy).
    bounds: LuBoundsProvider,
    /// Halt the search at the first committed configuration whose discrete
    /// state satisfies this goal (the witness search); `None` explores
    /// exhaustively.
    goal: Option<WitnessGoal>,
    /// The exploration's resource meter: [`intern`](SearchSpace::intern)
    /// charges the bytes of every distinct stored zone into it (from the
    /// driver's merge, so the running total is deterministic). Inert unless
    /// the caller set a `max_zone_bytes` budget.
    budget: BudgetMeter,
    interner: Mutex<InternerState>,
}

impl<'a> ZoneSpace<'a> {
    fn new(
        timed: &'a TimedTransitionSystem,
        spec: &ExploreSpec,
        goal: Option<WitnessGoal>,
    ) -> ZoneSpace<'a> {
        ZoneSpace {
            timed,
            subsumption: spec.subsumption,
            extrapolation: spec.extrapolation,
            bounds: LuBoundsProvider::new(timed, spec.bounds),
            goal,
            budget: spec.budget.clone(),
            interner: InternerState::new(),
        }
    }

    /// The abstraction counters accumulated so far (consumed once the
    /// exploration is over).
    fn abstraction_stats(self) -> AbstractionStats {
        let state = self.interner.into_inner().expect("zone interner poisoned");
        AbstractionStats {
            extrapolated_zones: state.extrapolated,
            projected_clocks: state.projected,
            alu_subsumed: state.alu_subsumed,
            local_bound_states: self.bounds.local_bound_states(),
            tightened_clock_bounds: self.bounds.tightened_clock_bounds(),
            arena: state.arena.stats(),
        }
    }
}

/// The abstraction counters a finished [`ZoneSpace`] hands to
/// [`aggregate_report`].
struct AbstractionStats {
    extrapolated_zones: usize,
    projected_clocks: usize,
    alu_subsumed: usize,
    local_bound_states: usize,
    tightened_clock_bounds: usize,
    arena: ArenaStats,
}

/// Inserts between sweeps of unreferenced interner entries.
const INTERNER_SWEEP_INTERVAL: usize = 4096;

impl SearchSpace for ZoneSpace<'_> {
    type Config = (StateId, Arc<Dbm>);
    /// With subsumption the key is the discrete state (zones of one state
    /// form the bucket); without it the zone joins the key, giving exact
    /// `(state, zone)` deduplication.
    type Key = (StateId, Option<Arc<Dbm>>);
    type Edge = EventId;
    type Error = Infallible;

    fn initial(&self) -> Result<Vec<Self::Config>, Infallible> {
        let ts = self.timed.underlying();
        let clock_count = ts.alphabet().len();
        let mut initial = Vec::new();
        for &s0 in ts.initial_states() {
            let mut zone = Dbm::zero(clock_count);
            zone.up();
            apply_invariant(self.timed, &mut zone, s0);
            zone.canonicalize();
            if !zone.is_empty() {
                if self.extrapolation == Extrapolation::LuActive {
                    project_inactive(self.timed, &mut zone, s0);
                }
                initial.push((s0, Arc::new(zone)));
            }
        }
        Ok(initial)
    }

    fn key(&self, (state, zone): &Self::Config) -> Self::Key {
        if self.subsumption == Subsumption::Exact {
            (*state, Some(zone.clone()))
        } else {
            (*state, None)
        }
    }

    fn expand(
        &self,
        (state, zone): &Self::Config,
    ) -> Result<Vec<(EventId, Self::Config)>, Infallible> {
        let ts = self.timed.underlying();
        let enabled_here = ts.enabled(*state);
        let mut successors = Vec::new();
        for &(event, target) in ts.transitions_from(*state) {
            if let Some(next) = timed_successor(
                self.timed,
                zone,
                &enabled_here,
                event,
                target,
                self.extrapolation,
            ) {
                successors.push((event, (target, Arc::new(next))));
            }
        }
        Ok(successors)
    }

    fn should_halt(
        &self,
        &(state, _): &Self::Config,
        _successors: &[(EventId, Self::Config)],
    ) -> bool {
        let ts = self.timed.underlying();
        match self.goal {
            None => false,
            Some(WitnessGoal::Violation) => !ts.violations(state).is_empty(),
            Some(WitnessGoal::Deadlock) => ts.transitions_from(state).is_empty(),
        }
    }

    fn subsumes(&self, stored: &Self::Config, candidate: &Self::Config) -> bool {
        match self.subsumption {
            // Equal keys imply equal zones: exact deduplication.
            Subsumption::Exact => true,
            Subsumption::Inclusion => stored.1.includes(&candidate.1),
            Subsumption::Alu => {
                // Both zones sit at the candidate's discrete state, so the
                // relation is judged under that state's bounds.
                let bounds = self.bounds.for_state(candidate.0);
                candidate
                    .1
                    .included_in_alu(&stored.1, &bounds.lower, &bounds.upper)
            }
        }
    }

    fn uses_subsumption(&self) -> bool {
        self.subsumption != Subsumption::Exact
    }

    fn note_pop_skip(&self, skipped: &Self::Config, stored: &[Self::Config]) {
        // Attribute the skip to the non-convex relation when no stored zone
        // of the state contains the skipped zone convexly — sound because
        // the pruning arrival aLU-covered the skipped zone, and by
        // transitivity so does whatever zone pruned *it*, i.e. some zone in
        // the current bucket.
        if self.subsumption == Subsumption::Alu
            && !stored.iter().any(|(_, zone)| zone.includes(&skipped.1))
        {
            self.interner
                .lock()
                .expect("zone interner poisoned")
                .alu_subsumed += 1;
        }
    }

    fn intern(&self, (state, zone): Self::Config) -> Self::Config {
        let mut guard = self.interner.lock().expect("zone interner poisoned");
        let st = &mut *guard;
        // LU-bounds extrapolation: widen the zone about to be stored. The
        // widened zone subsumes the candidate, exactly what the intern
        // contract allows for subsumption spaces; exact-dedup spaces key
        // buckets by the pre-intern (exact) zone, so distinct exact zones
        // that widen to one representative still dedup against each other's
        // successors. The clone goes through the arena so an unchanged zone
        // costs only a recycled buffer.
        let zone = if self.extrapolation == Extrapolation::None {
            zone
        } else {
            if self.extrapolation == Extrapolation::LuActive {
                let ts = self.timed.underlying();
                st.projected += ts.alphabet().len() - ts.enabled(state).len();
            }
            let bounds = self.bounds.for_state(state);
            let mut widened = st.arena.clone_dbm(&zone);
            if widened.extrapolate_lu(&bounds.lower, &bounds.upper) {
                widened.canonicalize();
                st.extrapolated += 1;
                Arc::new(widened)
            } else {
                st.arena.recycle(widened);
                zone
            }
        };
        let probe = InternedZone(zone.clone());
        if let Some(shared) = st.zones.get(&probe) {
            let shared = shared.0.clone();
            // The candidate hit an existing entry; if its matrix is
            // otherwise unreferenced (a widened clone nothing else holds),
            // reclaim the buffer.
            drop(probe);
            if let Ok(dead) = Arc::try_unwrap(zone) {
                st.arena.recycle(dead);
            }
            return (state, shared);
        }
        // A genuinely new zone: account its entry storage. The arena keeps
        // the monotone byte census for the report; the meter lets a
        // `max_zone_bytes` budget abort the search deterministically.
        self.budget
            .charge_zone_bytes(st.arena.charge_zone(&probe.0));
        st.zones.insert(probe);
        st.inserts += 1;
        if st.inserts >= INTERNER_SWEEP_INTERVAL {
            // Drop entries only the interner still references (their zones
            // were pruned from every bucket and queue), so peak memory
            // follows the live antichain rather than every zone ever seen —
            // and hand the reclaimed buffers back to the arena.
            let retired = std::mem::take(&mut st.zones);
            for entry in retired {
                if Arc::strong_count(&entry.0) > 1 {
                    st.zones.insert(entry);
                } else if let Ok(dead) = Arc::try_unwrap(entry.0) {
                    st.arena.recycle(dead);
                }
            }
            st.inserts = 0;
        }
        (state, zone)
    }
}

/// Explores the timed state space of `timed` with default options.
///
/// # Examples
///
/// ```
/// use dbm::explore_timed;
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // A fast event and a slow event race; the state reached by the slow event
/// // firing first is unreachable in the timed semantics.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let s_fast = b.add_state("fast-first");
/// let s_slow = b.add_state("slow-first");
/// b.add_transition(s0, "fast", s_fast);
/// b.add_transition(s0, "slow", s_slow);
/// b.mark_violation(s_slow, "slow overtook fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
/// let report = explore_timed(&timed).report().unwrap().clone();
/// assert!(report.violating_states.is_empty());
/// assert_eq!(report.reachable_states.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explore_timed(timed: &TimedTransitionSystem) -> ZoneOutcome {
    explore_timed_with(timed, ZoneExplorationOptions::default())
}

/// Explores the timed state space with explicit options.
pub fn explore_timed_with(
    timed: &TimedTransitionSystem,
    options: ZoneExplorationOptions,
) -> ZoneOutcome {
    let space = ZoneSpace::new(timed, &options.spec, None);
    let outcome = match explore::explore(
        &space,
        &ExploreOptions {
            threads: options.spec.threads,
            expanded_limit: options.spec.limit_or(DEFAULT_CONFIGURATION_LIMIT),
            cancel: options.spec.cancel.clone(),
            progress: options.spec.progress.clone(),
            budget: options.spec.budget.clone(),
            ..ExploreOptions::default()
        },
    ) {
        Ok(outcome) => outcome,
        Err(infallible) => match infallible {},
    };
    let report = match outcome {
        ExploreOutcome::Completed(report) => report,
        ExploreOutcome::LimitExceeded {
            expanded,
            subsumption_skips,
            ..
        } => {
            return ZoneOutcome::LimitExceeded {
                explored: expanded,
                subsumed: subsumption_skips,
            }
        }
        ExploreOutcome::Cancelled {
            expanded,
            subsumption_skips,
            ..
        } => {
            return ZoneOutcome::Cancelled {
                explored: expanded,
                subsumed: subsumption_skips,
            }
        }
    };
    ZoneOutcome::Completed(aggregate_report(timed, &report, space.abstraction_stats()))
}

/// Folds the raw exploration report into the state-level [`ZoneReport`].
fn aggregate_report(
    timed: &TimedTransitionSystem,
    report: &explore::ExploreReport<(StateId, Arc<Dbm>), EventId>,
    stats: AbstractionStats,
) -> ZoneReport {
    let ts = timed.underlying();
    let reachable: BTreeSet<StateId> = report.nodes.iter().map(|node| node.config.0).collect();
    let violating_states = reachable
        .iter()
        .copied()
        .filter(|&s| !ts.violations(s).is_empty())
        .collect();
    let deadlock_states = reachable
        .iter()
        .copied()
        .filter(|&s| ts.transitions_from(s).is_empty())
        .collect();
    ZoneReport {
        reachable_states: reachable.iter().copied().collect(),
        violating_states,
        deadlock_states,
        configurations: report.expanded,
        subsumed_configurations: report.subsumption_skips,
        alu_subsumed: stats.alu_subsumed,
        extrapolated_zones: stats.extrapolated_zones,
        projected_clocks: stats.projected_clocks,
        local_bound_states: stats.local_bound_states,
        tightened_clock_bounds: stats.tightened_clock_bounds,
        arena: stats.arena,
    }
}

/// The kind of state a symbolic witness search targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessGoal {
    /// The first reachable state carrying a violation mark.
    Violation,
    /// The first reachable state with no outgoing transitions.
    Deadlock,
}

/// A symbolic timed trace: the `(state, zone)` configurations along a
/// breadth-first path of the zone graph, each zone carrying the clock bounds
/// that hold on entry to its state.
///
/// Produced by [`find_witness`]; the path is a genuine timed execution (every
/// step was generated by the timed successor relation), replayable with
/// [`replay`](Self::replay) and annotatable with absolute firing-time windows
/// through [`firing_windows`](Self::firing_windows).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicTrace {
    start: (StateId, Arc<Dbm>),
    steps: Vec<(EventId, StateId, Arc<Dbm>)>,
    /// The abstraction the search stored its zones under; the replay applies
    /// the same normalisation so recomputed zones match the recorded ones.
    extrapolation: Extrapolation,
    /// The LU bound vectors the search extrapolated with, mirrored by the
    /// replay for the same reason.
    bounds: Bounds,
}

/// The absolute-time window in which one step of a [`SymbolicTrace`] can
/// fire, given everything that happened before it on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiringWindow {
    /// Earliest absolute time the step can fire.
    pub earliest: Time,
    /// Latest absolute time the step can fire (`Bound::Infinite` when the
    /// prefix places no deadline on it).
    pub latest: Bound,
}

impl std::fmt::Display for FiringWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.latest {
            Bound::Finite(latest) => write!(f, "[{}, {}]", self.earliest, latest),
            Bound::Infinite => write!(f, "[{}, inf)", self.earliest),
        }
    }
}

impl SymbolicTrace {
    /// The initial configuration of the trace.
    pub fn start(&self) -> (StateId, &Dbm) {
        (self.start.0, &self.start.1)
    }

    /// The `(fired event, reached state, entry zone)` steps.
    pub fn steps(&self) -> &[(EventId, StateId, Arc<Dbm>)] {
        &self.steps
    }

    /// Number of fired events.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the trace fires no event (the goal holds initially).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final (goal) state of the trace.
    pub fn end_state(&self) -> StateId {
        self.steps
            .last()
            .map_or(self.start.0, |&(_, state, _)| state)
    }

    /// The discrete `(event, target)` run underlying the trace, in the shape
    /// the untimed trace utilities (e.g. `tts::EnablingTrace`) consume.
    pub fn run(&self) -> Vec<(EventId, StateId)> {
        self.steps
            .iter()
            .map(|&(event, state, _)| (event, state))
            .collect()
    }

    /// Replays the trace through the timed successor relation — under the
    /// same abstraction the search used, so a recomputed zone must equal the
    /// stored one exactly. Returns the end state on success, `None` if any
    /// step is infeasible or drifts from the recorded zones (which would
    /// indicate a reconstruction bug).
    pub fn replay(&self, timed: &TimedTransitionSystem) -> Option<StateId> {
        let ts = timed.underlying();
        let bounds = LuBoundsProvider::new(timed, self.bounds);
        let mut state = self.start.0;
        let mut zone = self.start.1.clone();
        for (event, target, recorded) in &self.steps {
            if !ts.successors(state, *event).contains(target) {
                return None;
            }
            let enabled_here = ts.enabled(state);
            let mut next = timed_successor(
                timed,
                &zone,
                &enabled_here,
                *event,
                *target,
                self.extrapolation,
            )?;
            // The search widens stored zones at interning time under the
            // target state's bounds; mirror it.
            let target_bounds = bounds.for_state(*target);
            if self.extrapolation != Extrapolation::None
                && next.extrapolate_lu(&target_bounds.lower, &target_bounds.upper)
            {
                next.canonicalize();
            }
            if next != **recorded {
                return None;
            }
            zone = recorded.clone();
            state = *target;
        }
        Some(state)
    }

    /// Absolute firing-time windows of the steps, computed by replaying the
    /// path with one extra clock that is never reset (so its bounds at each
    /// firing are the earliest and latest absolute times the step can happen
    /// given the prefix). Returns `None` only if the path is infeasible,
    /// which cannot happen for traces produced by [`find_witness`].
    pub fn firing_windows(&self, timed: &TimedTransitionSystem) -> Option<Vec<FiringWindow>> {
        path_firing_windows(timed, self.start.0, &self.run())
    }
}

/// Computes the absolute firing-time window of every step of a discrete run
/// through the timed semantics (see [`SymbolicTrace::firing_windows`]).
///
/// Works for any run of the underlying transition system, e.g. the failure
/// trace of the relative-timing engine; returns `None` when some step is not
/// a transition of the system or is not timed-feasible after its prefix.
///
/// # Examples
///
/// ```
/// use dbm::path_firing_windows;
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// let mut b = TsBuilder::new("chain");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let s2 = b.add_state("s2");
/// let a = b.add_transition(s0, "a", s1);
/// let c = b.add_transition(s1, "b", s2);
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("a", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("b", DelayInterval::new(Time::new(3), Time::new(4))?);
/// let windows = path_firing_windows(&timed, s0, &[(a, s1), (c, s2)]).unwrap();
/// // `a` fires at [1,2]; `b` fires 3 to 4 time units later.
/// assert_eq!(windows[0].to_string(), "[1, 2]");
/// assert_eq!(windows[1].to_string(), "[4, 6]");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn path_firing_windows(
    timed: &TimedTransitionSystem,
    start: StateId,
    run: &[(EventId, StateId)],
) -> Option<Vec<FiringWindow>> {
    let ts = timed.underlying();
    // One clock per event plus the absolute-time clock, which is never reset.
    let absolute = ts.alphabet().len() + 1;
    let mut zone = Dbm::zero(absolute);
    zone.up();
    apply_invariant(timed, &mut zone, start);
    zone.canonicalize();
    if zone.is_empty() {
        return None;
    }
    let mut state = start;
    let mut windows = Vec::with_capacity(run.len());
    for &(event, target) in run {
        if !ts.successors(state, event).contains(&target) {
            return None;
        }
        // Constrain to the firing moment and read off the absolute clock.
        let lower = timed.delay(event).lower().as_i64();
        zone.constrain(0, clock_of(event), Entry::le(-lower));
        if zone.is_empty() {
            return None;
        }
        windows.push(FiringWindow {
            earliest: Time::new(zone.lower_bound(absolute)),
            latest: match zone.upper_bound(absolute) {
                Some(value) => Bound::Finite(Time::new(value)),
                None => Bound::Infinite,
            },
        });
        // Commit the firing exactly as the successor relation does.
        let enabled_here = ts.enabled(state);
        for &e in &ts.enabled(target) {
            if e == event || !enabled_here.contains(&e) {
                zone.reset(clock_of(e));
            }
        }
        zone.canonicalize();
        zone.up();
        apply_invariant(timed, &mut zone, target);
        zone.canonicalize();
        if zone.is_empty() {
            return None;
        }
        state = target;
    }
    Some(windows)
}

/// Outcome of [`find_witness`].
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessOutcome {
    /// A goal state is timed-reachable; the trace ends at the first such
    /// state in breadth-first order.
    Found(SymbolicTrace),
    /// The exploration completed without reaching the goal; the exact report
    /// is attached.
    Unreachable(ZoneReport),
    /// The configuration limit was exceeded before the goal was decided.
    LimitExceeded {
        /// Number of configurations explored before aborting.
        explored: usize,
        /// Enqueued configurations skipped by zone subsumption (0 when
        /// subsumption is disabled).
        subsumed: usize,
    },
    /// The [`ExploreSpec::cancel`](explore::ExploreSpec::cancel) token fired before the goal
    /// was decided.
    Cancelled {
        /// Number of configurations explored before the cancellation.
        explored: usize,
        /// Enqueued configurations skipped by zone subsumption (0 when
        /// subsumption is disabled).
        subsumed: usize,
    },
}

impl WitnessOutcome {
    /// The witness trace, if one was found.
    pub fn trace(&self) -> Option<&SymbolicTrace> {
        match self {
            WitnessOutcome::Found(trace) => Some(trace),
            _ => None,
        }
    }
}

/// Searches the timed state space for the first goal state in deterministic
/// breadth-first order and reconstructs the symbolic trace leading to it.
///
/// The search runs on the shared exploration engine with parent tracking, so
/// the returned trace — not just the verdict — is identical for every
/// [`ExploreSpec::threads`](explore::ExploreSpec::threads) value, and subsumption only prunes
/// configurations covered by already-found ones (the trace stays a genuine
/// timed execution).
///
/// # Examples
///
/// ```
/// use dbm::{find_witness, WitnessGoal, WitnessOutcome, ZoneExplorationOptions};
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // With overlapping delays the slow event can overtake the fast one.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let sf = b.add_state("fast-first");
/// let ss = b.add_state("slow-first");
/// b.add_transition(s0, "fast", sf);
/// b.add_transition(s0, "slow", ss);
/// b.mark_violation(ss, "slow overtook fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(4))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(2), Time::new(9))?);
///
/// let outcome = find_witness(
///     &timed,
///     ZoneExplorationOptions::default(),
///     WitnessGoal::Violation,
/// );
/// let trace = outcome.trace().expect("violation is reachable");
/// assert_eq!(trace.end_state(), ss);
/// assert_eq!(trace.replay(&timed), Some(ss));
/// let windows = trace.firing_windows(&timed).unwrap();
/// // `slow` can fire first anywhere in [2, 4].
/// assert_eq!(windows[0].to_string(), "[2, 4]");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_witness(
    timed: &TimedTransitionSystem,
    options: ZoneExplorationOptions,
    goal: WitnessGoal,
) -> WitnessOutcome {
    let space = ZoneSpace::new(timed, &options.spec, Some(goal));
    let outcome = match explore::explore(
        &space,
        &ExploreOptions {
            threads: options.spec.threads,
            expanded_limit: options.spec.limit_or(DEFAULT_CONFIGURATION_LIMIT),
            trace: TraceOptions::parents(),
            cancel: options.spec.cancel.clone(),
            progress: options.spec.progress.clone(),
            budget: options.spec.budget.clone(),
            ..ExploreOptions::default()
        },
    ) {
        Ok(outcome) => outcome,
        Err(infallible) => match infallible {},
    };
    let report = match outcome {
        ExploreOutcome::Completed(report) => report,
        ExploreOutcome::LimitExceeded {
            expanded,
            subsumption_skips,
            ..
        } => {
            return WitnessOutcome::LimitExceeded {
                explored: expanded,
                subsumed: subsumption_skips,
            }
        }
        ExploreOutcome::Cancelled {
            expanded,
            subsumption_skips,
            ..
        } => {
            return WitnessOutcome::Cancelled {
                explored: expanded,
                subsumed: subsumption_skips,
            }
        }
    };
    if !report.halted {
        return WitnessOutcome::Unreachable(aggregate_report(
            timed,
            &report,
            space.abstraction_stats(),
        ));
    }
    let goal_node = report.nodes.len() - 1;
    let (root, steps) = report
        .path_to(goal_node)
        .expect("witness search records parents");
    let start = report.nodes[root].config.clone();
    let steps = steps
        .into_iter()
        .map(|(event, node)| {
            let (state, zone) = report.nodes[node].config.clone();
            (event, state, zone)
        })
        .collect();
    WitnessOutcome::Found(SymbolicTrace {
        start,
        steps,
        extrapolation: options.spec.extrapolation,
        bounds: options.spec.bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore::CancelToken;
    use tts::{DelayInterval, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// Options with the given spec fields overridden.
    fn with_spec(spec: ExploreSpec) -> ZoneExplorationOptions {
        ZoneExplorationOptions { spec }
    }

    /// All three abstraction modes.
    const MODES: [Extrapolation; 3] = [
        Extrapolation::None,
        Extrapolation::Lu,
        Extrapolation::LuActive,
    ];

    /// All three subsumption policies.
    const POLICIES: [Subsumption; 3] =
        [Subsumption::Exact, Subsumption::Inclusion, Subsumption::Alu];

    fn sorted(ids: &[StateId]) -> bool {
        ids.windows(2).all(|w| w[0] < w[1])
    }

    fn assert_sorted(report: &ZoneReport) {
        assert!(sorted(&report.reachable_states), "reachable unsorted");
        assert!(sorted(&report.violating_states), "violating unsorted");
        assert!(sorted(&report.deadlock_states), "deadlocks unsorted");
    }

    /// The race example: fast [1,2] vs slow [5,9].
    fn race() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        let sboth = b.add_state("both");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.add_transition(sf, "slow", sboth);
        b.add_transition(ss, "fast", sboth);
        b.mark_violation(ss, "slow overtook fast");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("fast", d(1, 2));
        timed.set_delay_by_name("slow", d(5, 9));
        timed
    }

    #[test]
    fn timed_semantics_prunes_slow_first() {
        let outcome = explore_timed(&race());
        let report = outcome.report().unwrap();
        assert!(report.violating_states.is_empty());
        // s0, fast-first and both are reachable; slow-first is not.
        assert_eq!(report.reachable_states.len(), 3);
        // `both` has no outgoing transitions.
        assert_eq!(report.deadlock_states.len(), 1);
        assert!(!report.is_safe());
        assert_sorted(report);
    }

    #[test]
    fn untimed_delays_allow_both_orders() {
        let mut b = TsBuilder::new("untimed-race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.set_initial(s0);
        let timed = TimedTransitionSystem::new(b.build().unwrap());
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 3);
    }

    #[test]
    fn cyclic_systems_terminate() {
        // A two-event oscillator: a [1,2] then b [1,2] forever.
        let mut b = TsBuilder::new("osc");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", d(1, 2));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 2);
        assert!(report.deadlock_states.is_empty());
        assert!(report.is_safe());
    }

    #[test]
    fn configuration_limit_aborts() {
        let outcome = explore_timed_with(
            &race(),
            with_spec(ExploreSpec {
                limit: Some(1),
                ..ExploreSpec::default()
            }),
        );
        assert!(matches!(outcome, ZoneOutcome::LimitExceeded { .. }));
        assert!(outcome.report().is_none());
    }

    #[test]
    fn urgency_is_respected_in_chains() {
        // a [0,1] enables c [3,4]; independent g [1,1] must fire before c
        // (its deadline 1 is below c's earliest enabling+lower = 0+3). The
        // state where c fires while g is still pending is unreachable.
        let mut b = TsBuilder::new("chain");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s_bad = b.add_state("bad");
        let s_ok = b.add_state("ok");
        let s_done = b.add_state("done");
        let a = b.add_transition(s0, "a", s1);
        let c = b.add_transition(s1, "c", s_bad);
        let g = b.add_transition(s1, "g", s_ok);
        b.add_transition_by_id(s_ok, c, s_done);
        b.add_transition_by_id(s_bad, g, s_done);
        let _ = (a, g);
        b.mark_violation(s_bad, "c before g");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(0, 1));
        timed.set_delay_by_name("c", d(3, 4));
        timed.set_delay_by_name("g", d(1, 1));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert!(report.violating_states.is_empty());
    }

    /// An oscillator with a reconvergent choice: both branches re-enter the
    /// same state with different clock histories, so inclusion between
    /// same-state zones actually occurs.
    fn reconvergent() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("reconv");
        let s0 = b.add_state("s0");
        let sa = b.add_state("a-first");
        let sb = b.add_state("b-first");
        let s1 = b.add_state("joined");
        let a = b.add_transition(s0, "a", sa);
        let bb = b.add_transition(s0, "b", sb);
        b.add_transition_by_id(sa, bb, s1);
        b.add_transition_by_id(sb, a, s1);
        b.add_transition(s1, "r", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 5));
        timed.set_delay_by_name("b", d(1, 5));
        timed.set_delay_by_name("r", d(0, 3));
        timed
    }

    #[test]
    fn subsumption_explores_no_more_than_exact_dedup() {
        let timed = reconvergent();
        let run = |subsumption| {
            explore_timed_with(
                &timed,
                with_spec(ExploreSpec {
                    subsumption,
                    ..ExploreSpec::default()
                }),
            )
            .report()
            .unwrap()
            .clone()
        };
        let alu = run(Subsumption::Alu);
        let inclusion = run(Subsumption::Inclusion);
        let exact = run(Subsumption::Exact);
        // Each policy is at least as reducing as the finer one.
        assert!(alu.configurations <= inclusion.configurations);
        assert!(inclusion.configurations <= exact.configurations);
        assert_eq!(exact.subsumed_configurations, 0);
        // The attribution counter only fires under Alu.
        assert_eq!(exact.alu_subsumed, 0);
        assert_eq!(inclusion.alu_subsumed, 0);
        assert!(alu.alu_subsumed <= alu.subsumed_configurations);
        // Verdict-bearing sets agree.
        for report in [&alu, &inclusion] {
            assert_eq!(report.reachable_states, exact.reachable_states);
            assert_eq!(report.violating_states, exact.violating_states);
            assert_eq!(report.deadlock_states, exact.deadlock_states);
            assert_sorted(report);
        }
        assert_sorted(&exact);
    }

    /// The race with overlapping delays: the violating interleaving is
    /// timed-reachable.
    fn overlapping_race() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.mark_violation(ss, "slow overtook fast");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("fast", d(1, 4));
        timed.set_delay_by_name("slow", d(2, 9));
        timed
    }

    #[test]
    fn witness_reaches_the_violating_state_and_replays() {
        let timed = overlapping_race();
        let outcome = find_witness(
            &timed,
            ZoneExplorationOptions::default(),
            WitnessGoal::Violation,
        );
        let trace = outcome.trace().expect("violation reachable");
        assert_eq!(trace.len(), 1);
        let end = trace.end_state();
        assert!(!timed.underlying().violations(end).is_empty());
        assert_eq!(trace.replay(&timed), Some(end));
        let windows = trace.firing_windows(&timed).unwrap();
        assert_eq!(windows.len(), 1);
        // `slow` must fire before `fast`'s deadline of 4 and after its own
        // lower bound of 2.
        assert_eq!(windows[0].earliest, Time::new(2));
        assert_eq!(windows[0].latest, Bound::Finite(Time::new(4)));
    }

    #[test]
    fn witness_is_identical_for_every_thread_count_and_subsumption() {
        let timed = overlapping_race();
        let base = find_witness(
            &timed,
            ZoneExplorationOptions::default(),
            WitnessGoal::Violation,
        );
        for threads in [1, 2, 4] {
            for subsumption in POLICIES {
                for extrapolation in MODES {
                    let outcome = find_witness(
                        &timed,
                        with_spec(ExploreSpec {
                            threads,
                            subsumption,
                            extrapolation,
                            ..ExploreSpec::default()
                        }),
                        WitnessGoal::Violation,
                    );
                    let trace = outcome.trace().expect("violation reachable");
                    assert_eq!(trace.run(), base.trace().unwrap().run());
                    assert_eq!(trace.end_state(), base.trace().unwrap().end_state());
                }
            }
        }
    }

    #[test]
    fn unreachable_goal_returns_the_exact_report() {
        let timed = race();
        let outcome = find_witness(
            &timed,
            ZoneExplorationOptions::default(),
            WitnessGoal::Violation,
        );
        match outcome {
            WitnessOutcome::Unreachable(report) => {
                let full = explore_timed(&timed).report().unwrap().clone();
                assert_eq!(report, full);
            }
            other => panic!("expected unreachable, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_witness_walks_the_whole_race() {
        let timed = race();
        let outcome = find_witness(
            &timed,
            ZoneExplorationOptions::default(),
            WitnessGoal::Deadlock,
        );
        let trace = outcome.trace().expect("deadlock reachable");
        // fast then slow into the terminal `both` state.
        assert_eq!(trace.len(), 2);
        let end = trace.end_state();
        assert!(timed.underlying().transitions_from(end).is_empty());
        assert_eq!(trace.replay(&timed), Some(end));
        let windows = trace.firing_windows(&timed).unwrap();
        assert!(windows[0].earliest <= windows[1].earliest);
    }

    #[test]
    fn witness_respects_the_configuration_limit() {
        let timed = race();
        let outcome = find_witness(
            &timed,
            with_spec(ExploreSpec {
                limit: Some(1),
                ..ExploreSpec::default()
            }),
            WitnessGoal::Deadlock,
        );
        assert!(matches!(outcome, WitnessOutcome::LimitExceeded { .. }));
        assert!(outcome.trace().is_none());
    }

    #[test]
    fn pre_cancelled_exploration_reports_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let options = with_spec(ExploreSpec {
            cancel: token.clone(),
            ..ExploreSpec::default()
        });
        let outcome = explore_timed_with(&race(), options.clone());
        assert_eq!(
            outcome,
            ZoneOutcome::Cancelled {
                explored: 0,
                subsumed: 0
            }
        );
        let witness = find_witness(&race(), options, WitnessGoal::Deadlock);
        assert!(matches!(witness, WitnessOutcome::Cancelled { .. }));
        assert!(witness.trace().is_none());
    }

    #[test]
    fn config_budget_cancels_at_the_same_count_for_every_thread_count() {
        use explore::BudgetMeter;
        let mut counts = Vec::new();
        for threads in [1, 4] {
            let budget = BudgetMeter::new(Some(2), None);
            let outcome = explore_timed_with(
                &reconvergent(),
                with_spec(ExploreSpec {
                    threads,
                    cancel: CancelToken::new(),
                    budget: budget.clone(),
                    ..ExploreSpec::default()
                }),
            );
            match outcome {
                ZoneOutcome::Cancelled { explored, .. } => counts.push(explored),
                other => panic!("expected budget cancellation, got {other:?}"),
            }
            assert!(budget.breach().is_some());
        }
        assert_eq!(
            counts[0], counts[1],
            "budget abort count differs by threads"
        );
        assert_eq!(counts[0], 3, "aborts on the configuration over the budget");
    }

    #[test]
    fn zone_byte_budget_cancels_and_charges_the_arena_census() {
        use explore::BudgetMeter;
        // The interner charges every distinct stored zone, so a one-byte
        // budget must trip almost immediately — and the arena census must
        // have counted at least the breaching bytes.
        let budget = BudgetMeter::new(None, Some(1));
        let outcome = explore_timed_with(
            &race(),
            with_spec(ExploreSpec {
                cancel: CancelToken::new(),
                budget: budget.clone(),
                ..ExploreSpec::default()
            }),
        );
        assert!(matches!(outcome, ZoneOutcome::Cancelled { .. }));
        let breach = budget.breach().expect("breach recorded");
        assert_eq!(breach.resource, explore::BudgetResource::ZoneBytes);
        assert!(breach.used > 1);
        assert_eq!(budget.zone_bytes(), breach.used);
        // An unbudgeted run of the same model reports the byte census.
        let report = explore_timed(&race()).report().unwrap().clone();
        assert!(report.arena.zone_bytes >= breach.used);
    }

    #[test]
    fn parallel_exploration_matches_sequential_exactly() {
        for timed in [race(), reconvergent()] {
            for subsumption in POLICIES {
                for extrapolation in MODES {
                    let base = ExploreSpec {
                        subsumption,
                        extrapolation,
                        ..ExploreSpec::default()
                    };
                    let sequential = explore_timed_with(&timed, with_spec(base.clone()));
                    for threads in [2, 4] {
                        let parallel = explore_timed_with(
                            &timed,
                            with_spec(ExploreSpec {
                                threads,
                                ..base.clone()
                            }),
                        );
                        // `ZoneOutcome` equality covers the verdict sets,
                        // the configuration counters *and* the abstraction /
                        // arena counters, so this pins them all as
                        // thread-count independent.
                        assert_eq!(sequential, parallel, "threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn extrapolation_modes_agree_on_verdicts() {
        for timed in [race(), reconvergent(), overlapping_race()] {
            let exact = explore_timed(&timed).report().unwrap().clone();
            for extrapolation in MODES {
                for subsumption in POLICIES {
                    let report = explore_timed_with(
                        &timed,
                        with_spec(ExploreSpec {
                            subsumption,
                            extrapolation,
                            ..ExploreSpec::default()
                        }),
                    )
                    .report()
                    .unwrap()
                    .clone();
                    assert_eq!(report.reachable_states, exact.reachable_states);
                    assert_eq!(report.violating_states, exact.violating_states);
                    assert_eq!(report.deadlock_states, exact.deadlock_states);
                    assert_sorted(&report);
                }
            }
        }
    }

    /// A consumer that may lag unboundedly behind a bounded producer: the
    /// producer's clock stays bounded by its invariant, but the consumer has
    /// no upper delay bound, so under exact zones the difference between the
    /// two clocks grows without bound and the zone count diverges.
    fn unbounded_drift() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("drift");
        let s0 = b.add_state("s0");
        b.add_transition(s0, "tick", s0);
        b.add_transition(s0, "work", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("tick", d(1, 1));
        timed.set_delay_by_name("work", DelayInterval::at_least(Time::new(3)).unwrap());
        timed
    }

    #[test]
    fn lu_extrapolation_terminates_where_exact_zones_diverge() {
        let timed = unbounded_drift();
        // Convex subsumption pinned: under the default aLU policy even the
        // unextrapolated exploration converges (the drifting clock has no
        // upper comparison, so U = 0 makes its growth invisible to the
        // relation) — see `alu_subsumption_terminates_unextrapolated_drift`.
        let exact = explore_timed_with(
            &timed,
            with_spec(ExploreSpec {
                subsumption: Subsumption::Inclusion,
                extrapolation: Extrapolation::None,
                limit: Some(200),
                ..ExploreSpec::default()
            }),
        );
        assert!(
            matches!(exact, ZoneOutcome::LimitExceeded { .. }),
            "exact zones were expected to diverge, got {exact:?}"
        );
        for extrapolation in [Extrapolation::Lu, Extrapolation::LuActive] {
            let abstracted = explore_timed_with(
                &timed,
                with_spec(ExploreSpec {
                    extrapolation,
                    limit: Some(200),
                    ..ExploreSpec::default()
                }),
            );
            let report = abstracted
                .report()
                .unwrap_or_else(|| panic!("{extrapolation} should terminate, got {abstracted:?}"));
            assert_eq!(report.reachable_states.len(), 1);
            assert!(report.extrapolated_zones > 0, "widening never fired");
        }
    }

    #[test]
    fn alu_subsumption_terminates_unextrapolated_drift() {
        // The non-convex relation alone tames the drift that defeats convex
        // inclusion: the drifting clock faces no upper comparison (U = 0),
        // so zones differing only in its age aLU-cover each other without
        // any zone ever being widened.
        let timed = unbounded_drift();
        let outcome = explore_timed_with(
            &timed,
            with_spec(ExploreSpec {
                subsumption: Subsumption::Alu,
                extrapolation: Extrapolation::None,
                limit: Some(200),
                ..ExploreSpec::default()
            }),
        );
        let report = outcome
            .report()
            .unwrap_or_else(|| panic!("aLU subsumption should terminate, got {outcome:?}"));
        assert_eq!(report.reachable_states.len(), 1);
        assert_eq!(report.extrapolated_zones, 0);
        // On this tiny fixture every aLU win happens at the push-time
        // prefilter (the covered successor is never enqueued), so no
        // pop-time skip is attributed; the counter invariant still holds.
        // The `alu_subsumed > 0` behaviour is exercised on the pipeline
        // models in the workspace-level `engine_vs_zones` tests.
        assert!(report.alu_subsumed <= report.subsumed_configurations);
    }

    #[test]
    fn witness_found_under_extrapolation_replays_and_is_exactly_feasible() {
        let timed = overlapping_race();
        let outcome = find_witness(
            &timed,
            ZoneExplorationOptions::default(),
            WitnessGoal::Violation,
        );
        let trace = outcome.trace().expect("violation reachable");
        let end = trace.end_state();
        // Replays under the abstraction it was found with...
        assert_eq!(trace.replay(&timed), Some(end));
        // ...and its discrete run is exactly feasible: the firing windows go
        // through the unabstracted semantics (with the extra absolute-time
        // clock) and must agree with the exact engine's windows.
        let windows = trace.firing_windows(&timed).expect("exactly feasible");
        assert_eq!(windows[0].earliest, Time::new(2));
        assert_eq!(windows[0].latest, Bound::Finite(Time::new(4)));
    }

    #[test]
    fn default_exploration_reports_abstraction_work() {
        // The default mode is LuActive: the race's disabled clocks get
        // projected and at least the unbounded-invariant-free zones widen.
        let report = explore_timed(&race()).report().unwrap().clone();
        assert!(report.projected_clocks > 0);
        // Arena counters are wired through: every intern clones via the
        // arena under LuActive.
        assert!(report.arena.allocated + report.arena.reused > 0);
    }

    // ---- static guard analysis (per-state LU bounds) battery ----

    /// A three-event linear chain: a [1,2] then b [3,4] then c [5,6], each
    /// event enabled in exactly one state.
    fn chain3() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("chain3");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s2);
        b.add_transition(s2, "c", s3);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", d(3, 4));
        timed.set_delay_by_name("c", d(5, 6));
        timed
    }

    /// The a/b oscillator with one unbounded event: a [1,2] and b [3,∞)
    /// alternate forever. The cycle is where a naive backward analysis
    /// would widen without bound; ours is capped by the global constants
    /// and must converge.
    fn osc_unbounded() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("osc-unbounded");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", DelayInterval::at_least(Time::new(3)).unwrap());
        timed
    }

    fn state_of(timed: &TimedTransitionSystem, name: &str) -> StateId {
        let ts = timed.underlying();
        (0..ts.state_count())
            .map(StateId::from_index)
            .find(|&s| ts.state_name(s) == name)
            .unwrap_or_else(|| panic!("no state named {name}"))
    }

    /// Chain: each state's vectors carry exactly its own enabled event's
    /// delay window; everything else is pinned to (0, 0) — including the
    /// clocks of events already fired and not yet re-enabled.
    #[test]
    fn local_bounds_on_linear_chain_match_hand_computation() {
        let timed = chain3();
        let bounds = LuBoundsProvider::new(&timed, Bounds::Local);
        // Clock layout: 0 = reference, 1 = a, 2 = b, 3 = c.
        let expect = [
            ("s0", [0, 1, 0, 0], [0, 2, 0, 0]),
            ("s1", [0, 0, 3, 0], [0, 0, 4, 0]),
            ("s2", [0, 0, 0, 5], [0, 0, 0, 6]),
            ("s3", [0, 0, 0, 0], [0, 0, 0, 0]),
        ];
        for (name, lower, upper) in expect {
            let s = state_of(&timed, name);
            assert_eq!(bounds.lower(s), lower, "L at {name}");
            assert_eq!(bounds.upper(s), upper, "U at {name}");
        }
        // The seed is already the fixpoint (propagation adds nothing in
        // this semantics): exactly one sweep, no widening.
        assert_eq!(bounds.sweeps(), 1);
        // Census: every state lacks two of the three events (s3 all
        // three), so 4 tightened states covering 2+2+2+3 clock bounds.
        assert_eq!(bounds.local_bound_states(), 4);
        assert_eq!(bounds.tightened_clock_bounds(), 9);
    }

    /// Branching: on the race diamond a clock that survives a branch
    /// un-reset (slow across s0 --fast--> fast-first) keeps its full
    /// window on both sides, while the branch that *fires* an event drops
    /// that event's bounds in the target.
    #[test]
    fn local_bounds_on_branches_follow_resets() {
        let timed = race(); // fast [1,2] vs slow [5,9], diamond to `both`
        let bounds = LuBoundsProvider::new(&timed, Bounds::Local);
        let fast = 1; // clock indices follow alphabet order
        let slow = 2;
        let s0 = state_of(&timed, "s0");
        // Both events enabled at the root: the local vector IS the global
        // vector there.
        assert_eq!(bounds.lower(s0), &[0, 1, 5]);
        assert_eq!(bounds.upper(s0), &[0, 2, 9]);
        // After `fast` fires, only `slow` is pending: fast's clock is
        // (0, 0) even though it just ran — it is never consulted again
        // before its next (re-)enabling resets it.
        let sf = state_of(&timed, "fast-first");
        assert_eq!(bounds.lower(sf)[fast], 0);
        assert_eq!(bounds.upper(sf)[fast], 0);
        assert_eq!(bounds.lower(sf)[slow], 5);
        assert_eq!(bounds.upper(sf)[slow], 9);
        // Mirror image on the other branch.
        let ss = state_of(&timed, "slow-first");
        assert_eq!(bounds.lower(ss)[slow], 0);
        assert_eq!(bounds.upper(ss)[fast], 2);
        // The join state has nothing enabled: all-zero vectors.
        let sboth = state_of(&timed, "both");
        assert_eq!(bounds.lower(sboth), &[0, 0, 0]);
        assert_eq!(bounds.upper(sboth), &[0, 0, 0]);
        assert_eq!(bounds.sweeps(), 1);
        assert_eq!(bounds.local_bound_states(), 3);
        assert_eq!(bounds.tightened_clock_bounds(), 4);
    }

    /// Cycle: the backward sweep terminates on loops (bounds only grow and
    /// are capped by the global constants), and an event without an upper
    /// delay bound keeps U = 0 everywhere — unbounded growth of its clock
    /// stays invisible to extrapolation and to aLU.
    #[test]
    fn local_bounds_on_cycles_converge_without_widening() {
        let timed = osc_unbounded();
        let bounds = LuBoundsProvider::new(&timed, Bounds::Local);
        let s0 = state_of(&timed, "s0");
        let s1 = state_of(&timed, "s1");
        assert_eq!(bounds.lower(s0), &[0, 1, 0]);
        assert_eq!(bounds.upper(s0), &[0, 2, 0]);
        assert_eq!(bounds.lower(s1), &[0, 0, 3]);
        // b has no upper delay bound: U stays 0 on the whole cycle.
        assert_eq!(bounds.upper(s1), &[0, 0, 0]);
        assert_eq!(bounds.sweeps(), 1);
    }

    /// Soundness floor of the analysis: on every fixture the local vectors
    /// never exceed the global constants entrywise, and an *enabled*
    /// event's clock always carries its full delay window (dropping it
    /// would unsoundly widen zones against the state's own invariant).
    #[test]
    fn local_bounds_never_exceed_global_and_keep_enabled_windows() {
        for timed in [race(), chain3(), osc_unbounded(), overlapping_race()] {
            let local = LuBoundsProvider::new(&timed, Bounds::Local);
            let global = LuBoundsProvider::new(&timed, Bounds::Global);
            let ts = timed.underlying();
            for s in 0..ts.state_count() {
                let s = StateId::from_index(s);
                let (l, u) = (local.lower(s), local.upper(s));
                let (gl, gu) = (global.lower(s), global.upper(s));
                for c in 0..l.len() {
                    assert!(l[c] <= gl[c] && u[c] <= gu[c], "over-approx at {s:?}");
                }
                for &e in &ts.enabled(s) {
                    let c = clock_of(e);
                    let delay = timed.delay(e);
                    assert_eq!(l[c], delay.lower().as_i64(), "enabled L at {s:?}");
                    if let Bound::Finite(upper) = delay.upper() {
                        assert_eq!(u[c], upper.as_i64(), "enabled U at {s:?}");
                    }
                }
            }
        }
    }

    /// Under [`Bounds::Global`] the provider is the constant global vector
    /// and reports an empty census.
    #[test]
    fn global_bounds_provider_is_constant() {
        let timed = chain3();
        let bounds = LuBoundsProvider::new(&timed, Bounds::Global);
        for s in 0..timed.underlying().state_count() {
            let s = StateId::from_index(s);
            assert_eq!(bounds.lower(s), &[0, 1, 3, 5]);
            assert_eq!(bounds.upper(s), &[0, 2, 4, 6]);
        }
        assert_eq!(bounds.local_bound_states(), 0);
        assert_eq!(bounds.tightened_clock_bounds(), 0);
        assert_eq!(bounds.sweeps(), 0);
    }

    /// The policy-agreement core: `global` and `local` bounds explore the
    /// same reachable/violating/deadlocked state sets under every
    /// extrapolation × subsumption combination, and local bounds never
    /// enlarge the configuration count (both are sound abstractions of the
    /// same timed semantics; local is entrywise ≤ global).
    #[test]
    fn local_and_global_bounds_agree_on_verdicts() {
        for timed in [race(), chain3(), osc_unbounded(), overlapping_race()] {
            for extrapolation in MODES {
                for subsumption in POLICIES {
                    let run = |bounds| {
                        explore_timed_with(
                            &timed,
                            with_spec(ExploreSpec {
                                subsumption,
                                extrapolation,
                                bounds,
                                limit: Some(10_000),
                                ..ExploreSpec::default()
                            }),
                        )
                    };
                    let global = run(Bounds::Global);
                    let local = run(Bounds::Local);
                    let (Some(g), Some(l)) = (global.report(), local.report()) else {
                        // Exact zones may diverge on the unbounded cycle
                        // under `Extrapolation::None` with convex
                        // subsumption — for both bound choices alike.
                        assert_eq!(global.report().is_none(), local.report().is_none());
                        continue;
                    };
                    assert_eq!(g.reachable_states, l.reachable_states);
                    assert_eq!(g.violating_states, l.violating_states);
                    assert_eq!(g.deadlock_states, l.deadlock_states);
                    assert!(
                        l.configurations <= g.configurations,
                        "local enlarged the zone graph under {extrapolation:?}/{subsumption:?}"
                    );
                }
            }
        }
    }
}
