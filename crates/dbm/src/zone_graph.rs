//! Zone-graph exploration of the timed semantics of a timed transition
//! system.
//!
//! This is the *conventional* approach the paper contrasts with: enumerate
//! the exact timed state space symbolically, pairing each discrete state with
//! a clock zone (one clock per event, measuring the time since the event's
//! current enabling). It serves two purposes in this repository:
//!
//! 1. **Ground truth** — on small models it decides exactly which marked
//!    (violating) states are reachable when delays are taken into account,
//!    which cross-checks the relative-timing engine.
//! 2. **Baseline** — its blow-up with pipeline depth quantifies the paper's
//!    motivation for abstraction and relative timing (the scaling benchmark).
//!
//! The frontier/dedup loop itself lives in the [`explore`] crate; this module
//! contributes the search space: configurations are `(state, zone)` pairs,
//! and — with [`ZoneExplorationOptions::subsumption`] enabled — a
//! configuration whose zone is *included* in an already-seen zone of the same
//! state is skipped entirely, including configurations that were already
//! enqueued when the wider zone arrived (the pop-time subsumption check the
//! hand-rolled loop lacked). Zones are interned behind [`Arc`]s, so the many
//! configurations sharing a zone after clock resets share one canonical DBM
//! allocation.

use std::collections::{BTreeSet, HashSet};
use std::convert::Infallible;
use std::sync::{Arc, Mutex};

use explore::{ExploreOptions, ExploreOutcome, SearchSpace};
use tts::{Bound, EventId, StateId, TimedTransitionSystem};

use crate::entry::Entry;
use crate::matrix::Dbm;

/// Options for the zone-graph exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneExplorationOptions {
    /// Maximum number of symbolic configurations to explore before aborting.
    pub configuration_limit: usize,
    /// Number of worker threads (`1` = sequential; any value produces the
    /// identical report).
    pub threads: usize,
    /// Skip a `(state, zone)` configuration when an already-seen zone for
    /// that state includes it. Sound (inclusion preserves reachability) and
    /// strictly reduces the configuration count on models with converging
    /// timing; disable to enumerate exact-duplicate zones only.
    pub subsumption: bool,
}

impl Default for ZoneExplorationOptions {
    fn default() -> Self {
        ZoneExplorationOptions {
            configuration_limit: 200_000,
            threads: 1,
            subsumption: true,
        }
    }
}

/// Result of a completed zone-graph exploration.
///
/// All state lists are sorted by state id on construction, so reports are
/// order-stable however the exploration was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneReport {
    /// Discrete states reachable in the timed semantics (sorted).
    pub reachable_states: Vec<StateId>,
    /// Reachable states that carry violation marks (sorted).
    pub violating_states: Vec<StateId>,
    /// Reachable states from which no event can fire (sorted).
    pub deadlock_states: Vec<StateId>,
    /// Number of symbolic configurations (state, zone) explored.
    pub configurations: usize,
    /// Enqueued configurations skipped because a subsuming zone for the same
    /// state arrived before their turn (0 when subsumption is disabled).
    pub subsumed_configurations: usize,
}

impl ZoneReport {
    /// Returns `true` if no violating state is timed-reachable and no
    /// reachable state deadlocks.
    pub fn is_safe(&self) -> bool {
        self.violating_states.is_empty() && self.deadlock_states.is_empty()
    }
}

/// Outcome of [`explore_timed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneOutcome {
    /// Exploration finished; the exact set of timed-reachable states is in
    /// the report.
    Completed(ZoneReport),
    /// The configuration limit was exceeded (state explosion); only a partial
    /// count is available.
    LimitExceeded {
        /// Number of configurations explored before aborting.
        explored: usize,
        /// Enqueued configurations skipped by zone subsumption before the
        /// abort (0 when subsumption is disabled).
        subsumed: usize,
    },
}

impl ZoneOutcome {
    /// The report, if the exploration completed.
    pub fn report(&self) -> Option<&ZoneReport> {
        match self {
            ZoneOutcome::Completed(r) => Some(r),
            ZoneOutcome::LimitExceeded { .. } => None,
        }
    }
}

/// Interner entry with a cheap sampled hash: hashing every entry of a large
/// canonical DBM costs more than the lookup saves, so only a stride of the
/// matrix feeds the hasher. Equality stays exact, so collisions merely cost
/// a probe.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InternedZone(Arc<Dbm>);

impl std::hash::Hash for InternedZone {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.sample_hash(state);
    }
}

/// The timed search space: configurations pair a discrete state with an
/// interned clock zone.
struct ZoneSpace<'a> {
    timed: &'a TimedTransitionSystem,
    subsumption: bool,
    /// Canonical-DBM interning table: equal zones share one allocation, so
    /// bucket storage and queued clones are reference bumps. Only locked
    /// from the driver's single-threaded merge. The usize counts inserts
    /// since the last sweep of dead entries (zones no longer referenced by
    /// any bucket or queue, e.g. after subsumption pruning).
    interner: Mutex<(HashSet<InternedZone>, usize)>,
}

/// Inserts between sweeps of unreferenced interner entries.
const INTERNER_SWEEP_INTERVAL: usize = 4096;

impl ZoneSpace<'_> {
    fn clock_of(event: EventId) -> usize {
        event.index() + 1
    }

    /// Lets time elapse only as far as the upper delay bounds of the events
    /// enabled in `state` allow (the state's invariant).
    fn apply_invariant(&self, zone: &mut Dbm, state: StateId) {
        let ts = self.timed.underlying();
        for &event in &ts.enabled(state) {
            if let Bound::Finite(upper) = self.timed.delay(event).upper() {
                zone.constrain_upper(Self::clock_of(event), upper.as_i64());
            }
        }
    }
}

impl SearchSpace for ZoneSpace<'_> {
    type Config = (StateId, Arc<Dbm>);
    /// With subsumption the key is the discrete state (zones of one state
    /// form the bucket); without it the zone joins the key, giving exact
    /// `(state, zone)` deduplication.
    type Key = (StateId, Option<Arc<Dbm>>);
    type Edge = ();
    type Error = Infallible;

    fn initial(&self) -> Result<Vec<Self::Config>, Infallible> {
        let ts = self.timed.underlying();
        let clock_count = ts.alphabet().len();
        let mut initial = Vec::new();
        for &s0 in ts.initial_states() {
            let mut zone = Dbm::zero(clock_count);
            zone.up();
            self.apply_invariant(&mut zone, s0);
            zone.canonicalize();
            if !zone.is_empty() {
                initial.push((s0, Arc::new(zone)));
            }
        }
        Ok(initial)
    }

    fn key(&self, (state, zone): &Self::Config) -> Self::Key {
        if self.subsumption {
            (*state, None)
        } else {
            (*state, Some(zone.clone()))
        }
    }

    fn expand(&self, (state, zone): &Self::Config) -> Result<Vec<((), Self::Config)>, Infallible> {
        let ts = self.timed.underlying();
        let enabled_here = ts.enabled(*state);
        let mut successors = Vec::new();
        for &(event, target) in ts.transitions_from(*state) {
            // Guard: the event's clock has reached its lower bound.
            let lower = self.timed.delay(event).lower().as_i64();
            let mut next = (**zone).clone();
            next.constrain(0, Self::clock_of(event), Entry::le(-lower));
            if next.is_empty() {
                continue;
            }
            // Fire: reset the clocks of freshly enabled occurrences.
            let enabled_after = ts.enabled(target);
            for &e in &enabled_after {
                let freshly_enabled = e == event || !enabled_here.contains(&e);
                if freshly_enabled {
                    next.reset(Self::clock_of(e));
                }
            }
            next.canonicalize();
            // Let time elapse under the target invariant.
            next.up();
            self.apply_invariant(&mut next, target);
            next.canonicalize();
            if next.is_empty() {
                continue;
            }
            successors.push(((), (target, Arc::new(next))));
        }
        Ok(successors)
    }

    fn subsumes(&self, stored: &Self::Config, candidate: &Self::Config) -> bool {
        if self.subsumption {
            stored.1.includes(&candidate.1)
        } else {
            // Equal keys imply equal zones: exact deduplication.
            true
        }
    }

    fn uses_subsumption(&self) -> bool {
        self.subsumption
    }

    fn intern(&self, (state, zone): Self::Config) -> Self::Config {
        let mut guard = self.interner.lock().expect("zone interner poisoned");
        let (interner, inserts) = &mut *guard;
        let probe = InternedZone(zone.clone());
        if let Some(shared) = interner.get(&probe) {
            return (state, shared.0.clone());
        }
        interner.insert(probe);
        *inserts += 1;
        if *inserts >= INTERNER_SWEEP_INTERVAL {
            // Drop entries only the interner still references (their zones
            // were pruned from every bucket and queue), so peak memory
            // follows the live antichain rather than every zone ever seen.
            interner.retain(|entry| Arc::strong_count(&entry.0) > 1);
            *inserts = 0;
        }
        (state, zone)
    }
}

/// Explores the timed state space of `timed` with default options.
///
/// # Examples
///
/// ```
/// use dbm::explore_timed;
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // A fast event and a slow event race; the state reached by the slow event
/// // firing first is unreachable in the timed semantics.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let s_fast = b.add_state("fast-first");
/// let s_slow = b.add_state("slow-first");
/// b.add_transition(s0, "fast", s_fast);
/// b.add_transition(s0, "slow", s_slow);
/// b.mark_violation(s_slow, "slow overtook fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
/// let report = explore_timed(&timed).report().unwrap().clone();
/// assert!(report.violating_states.is_empty());
/// assert_eq!(report.reachable_states.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explore_timed(timed: &TimedTransitionSystem) -> ZoneOutcome {
    explore_timed_with(timed, ZoneExplorationOptions::default())
}

/// Explores the timed state space with explicit options.
pub fn explore_timed_with(
    timed: &TimedTransitionSystem,
    options: ZoneExplorationOptions,
) -> ZoneOutcome {
    let space = ZoneSpace {
        timed,
        subsumption: options.subsumption,
        interner: Mutex::new((HashSet::new(), 0)),
    };
    let outcome = match explore::explore(
        &space,
        &ExploreOptions {
            threads: options.threads,
            expanded_limit: options.configuration_limit,
            ..ExploreOptions::default()
        },
    ) {
        Ok(outcome) => outcome,
        Err(infallible) => match infallible {},
    };
    let report = match outcome {
        ExploreOutcome::Completed(report) => report,
        ExploreOutcome::LimitExceeded {
            expanded,
            subsumption_skips,
            ..
        } => {
            return ZoneOutcome::LimitExceeded {
                explored: expanded,
                subsumed: subsumption_skips,
            }
        }
    };

    let ts = timed.underlying();
    let reachable: BTreeSet<StateId> = report.nodes.iter().map(|node| node.config.0).collect();
    let violating_states = reachable
        .iter()
        .copied()
        .filter(|&s| !ts.violations(s).is_empty())
        .collect();
    let deadlock_states = reachable
        .iter()
        .copied()
        .filter(|&s| ts.transitions_from(s).is_empty())
        .collect();
    ZoneOutcome::Completed(ZoneReport {
        reachable_states: reachable.iter().copied().collect(),
        violating_states,
        deadlock_states,
        configurations: report.expanded,
        subsumed_configurations: report.subsumption_skips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    fn sorted(ids: &[StateId]) -> bool {
        ids.windows(2).all(|w| w[0] < w[1])
    }

    fn assert_sorted(report: &ZoneReport) {
        assert!(sorted(&report.reachable_states), "reachable unsorted");
        assert!(sorted(&report.violating_states), "violating unsorted");
        assert!(sorted(&report.deadlock_states), "deadlocks unsorted");
    }

    /// The race example: fast [1,2] vs slow [5,9].
    fn race() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        let sboth = b.add_state("both");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.add_transition(sf, "slow", sboth);
        b.add_transition(ss, "fast", sboth);
        b.mark_violation(ss, "slow overtook fast");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("fast", d(1, 2));
        timed.set_delay_by_name("slow", d(5, 9));
        timed
    }

    #[test]
    fn timed_semantics_prunes_slow_first() {
        let outcome = explore_timed(&race());
        let report = outcome.report().unwrap();
        assert!(report.violating_states.is_empty());
        // s0, fast-first and both are reachable; slow-first is not.
        assert_eq!(report.reachable_states.len(), 3);
        // `both` has no outgoing transitions.
        assert_eq!(report.deadlock_states.len(), 1);
        assert!(!report.is_safe());
        assert_sorted(report);
    }

    #[test]
    fn untimed_delays_allow_both_orders() {
        let mut b = TsBuilder::new("untimed-race");
        let s0 = b.add_state("s0");
        let sf = b.add_state("fast-first");
        let ss = b.add_state("slow-first");
        b.add_transition(s0, "fast", sf);
        b.add_transition(s0, "slow", ss);
        b.set_initial(s0);
        let timed = TimedTransitionSystem::new(b.build().unwrap());
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 3);
    }

    #[test]
    fn cyclic_systems_terminate() {
        // A two-event oscillator: a [1,2] then b [1,2] forever.
        let mut b = TsBuilder::new("osc");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", d(1, 2));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert_eq!(report.reachable_states.len(), 2);
        assert!(report.deadlock_states.is_empty());
        assert!(report.is_safe());
    }

    #[test]
    fn configuration_limit_aborts() {
        let outcome = explore_timed_with(
            &race(),
            ZoneExplorationOptions {
                configuration_limit: 1,
                ..ZoneExplorationOptions::default()
            },
        );
        assert!(matches!(outcome, ZoneOutcome::LimitExceeded { .. }));
        assert!(outcome.report().is_none());
    }

    #[test]
    fn urgency_is_respected_in_chains() {
        // a [0,1] enables c [3,4]; independent g [1,1] must fire before c
        // (its deadline 1 is below c's earliest enabling+lower = 0+3). The
        // state where c fires while g is still pending is unreachable.
        let mut b = TsBuilder::new("chain");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s_bad = b.add_state("bad");
        let s_ok = b.add_state("ok");
        let s_done = b.add_state("done");
        let a = b.add_transition(s0, "a", s1);
        let c = b.add_transition(s1, "c", s_bad);
        let g = b.add_transition(s1, "g", s_ok);
        b.add_transition_by_id(s_ok, c, s_done);
        b.add_transition_by_id(s_bad, g, s_done);
        let _ = (a, g);
        b.mark_violation(s_bad, "c before g");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(0, 1));
        timed.set_delay_by_name("c", d(3, 4));
        timed.set_delay_by_name("g", d(1, 1));
        let report = explore_timed(&timed).report().unwrap().clone();
        assert!(report.violating_states.is_empty());
    }

    /// An oscillator with a reconvergent choice: both branches re-enter the
    /// same state with different clock histories, so inclusion between
    /// same-state zones actually occurs.
    fn reconvergent() -> TimedTransitionSystem {
        let mut b = TsBuilder::new("reconv");
        let s0 = b.add_state("s0");
        let sa = b.add_state("a-first");
        let sb = b.add_state("b-first");
        let s1 = b.add_state("joined");
        let a = b.add_transition(s0, "a", sa);
        let bb = b.add_transition(s0, "b", sb);
        b.add_transition_by_id(sa, bb, s1);
        b.add_transition_by_id(sb, a, s1);
        b.add_transition(s1, "r", s0);
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("a", d(1, 5));
        timed.set_delay_by_name("b", d(1, 5));
        timed.set_delay_by_name("r", d(0, 3));
        timed
    }

    #[test]
    fn subsumption_explores_no_more_than_exact_dedup() {
        let timed = reconvergent();
        let on = explore_timed(&timed).report().unwrap().clone();
        let off = explore_timed_with(
            &timed,
            ZoneExplorationOptions {
                subsumption: false,
                ..ZoneExplorationOptions::default()
            },
        )
        .report()
        .unwrap()
        .clone();
        assert!(on.configurations <= off.configurations);
        assert_eq!(off.subsumed_configurations, 0);
        // Verdict-bearing sets agree.
        assert_eq!(on.reachable_states, off.reachable_states);
        assert_eq!(on.violating_states, off.violating_states);
        assert_eq!(on.deadlock_states, off.deadlock_states);
        assert_sorted(&on);
        assert_sorted(&off);
    }

    #[test]
    fn parallel_exploration_matches_sequential_exactly() {
        for timed in [race(), reconvergent()] {
            for subsumption in [true, false] {
                let base = ZoneExplorationOptions {
                    subsumption,
                    ..ZoneExplorationOptions::default()
                };
                let sequential = explore_timed_with(&timed, base);
                for threads in [2, 4] {
                    let parallel =
                        explore_timed_with(&timed, ZoneExplorationOptions { threads, ..base });
                    assert_eq!(sequential, parallel, "threads={threads}");
                }
            }
        }
    }
}
