//! Causal event structures (CES) and lazy event structures (LzCES).
//!
//! A CES is an acyclic graph whose nodes are *event occurrences* (an event
//! name plus an occurrence index) related by AND-causality: an occurrence can
//! fire only after all of its direct predecessors have fired, and its firing
//! time lies within a delay interval of its enabling time (the latest
//! predecessor firing time). A *lazy* event structure additionally carries
//! timing arcs — relative-timing constraints that delay the firing of an
//! occurrence until another occurrence has fired, without changing its
//! enabling time (§2.1 of the paper).

use std::collections::{HashMap, HashSet};
use std::fmt;

use tts::{DelayInterval, EventId};

/// Index of a node (event occurrence) within a [`Ces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An event occurrence: the `occurrence`-th firing (0-based) of `event` since
/// the start of the trace the structure was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occurrence {
    /// The event.
    pub event: EventId,
    /// 0-based occurrence index of the event within the trace.
    pub occurrence: u32,
}

impl Occurrence {
    /// Creates an occurrence.
    pub fn new(event: EventId, occurrence: u32) -> Self {
        Occurrence { event, occurrence }
    }

    /// The first occurrence of `event`.
    pub fn first(event: EventId) -> Self {
        Occurrence::new(event, 0)
    }
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.event, self.occurrence)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeData {
    occurrence: Occurrence,
    label: String,
    delay: DelayInterval,
}

/// Error returned when a [`CesBuilder`] would produce an invalid structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCesError {
    /// The causality relation contains a cycle involving the named node.
    Cyclic(String),
    /// An arc references a node that does not exist.
    UnknownNode(NodeId),
}

impl fmt::Display for BuildCesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCesError::Cyclic(label) => {
                write!(f, "event structure has a causality cycle through `{label}`")
            }
            BuildCesError::UnknownNode(n) => write!(f, "arc references unknown node {n}"),
        }
    }
}

impl std::error::Error for BuildCesError {}

/// Builder for [`Ces`].
#[derive(Debug, Clone, Default)]
pub struct CesBuilder {
    nodes: Vec<NodeData>,
    causal: Vec<(NodeId, NodeId)>,
    timing: Vec<(NodeId, NodeId)>,
}

impl CesBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CesBuilder::default()
    }

    /// Adds an occurrence with a display label and delay interval; returns its
    /// node id.
    pub fn add_node(
        &mut self,
        occurrence: Occurrence,
        label: impl Into<String>,
        delay: DelayInterval,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            occurrence,
            label: label.into(),
            delay,
        });
        id
    }

    /// Adds a causal (AND) arc: `to` is enabled only after `from` fires.
    pub fn add_causal_arc(&mut self, from: NodeId, to: NodeId) {
        if !self.causal.contains(&(from, to)) {
            self.causal.push((from, to));
        }
    }

    /// Adds a timing arc (relative-timing constraint): `to` must not fire
    /// before `from` has fired, but its enabling time is unchanged.
    pub fn add_timing_arc(&mut self, from: NodeId, to: NodeId) {
        if !self.timing.contains(&(from, to)) {
            self.timing.push((from, to));
        }
    }

    /// Finalises the structure.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCesError`] if an arc references an unknown node or the
    /// combined (causal + timing) graph has a cycle.
    pub fn build(self) -> Result<Ces, BuildCesError> {
        let n = self.nodes.len();
        for &(a, b) in self.causal.iter().chain(self.timing.iter()) {
            if a.index() >= n || b.index() >= n {
                return Err(BuildCesError::UnknownNode(if a.index() >= n {
                    a
                } else {
                    b
                }));
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in &self.causal {
            if !preds[b.index()].contains(&a) {
                preds[b.index()].push(a);
                succs[a.index()].push(b);
            }
        }
        let mut timing_preds = vec![Vec::new(); n];
        for &(a, b) in &self.timing {
            if !timing_preds[b.index()].contains(&a) {
                timing_preds[b.index()].push(a);
            }
        }
        let ces = Ces {
            nodes: self.nodes,
            preds,
            succs,
            timing_preds,
        };
        match ces.topological_order() {
            Some(_) => Ok(ces),
            None => {
                // Find some node on a cycle for the error message.
                let label = ces
                    .nodes
                    .first()
                    .map(|d| d.label.clone())
                    .unwrap_or_default();
                Err(BuildCesError::Cyclic(label))
            }
        }
    }
}

/// A (lazy) causal event structure.
///
/// # Examples
///
/// ```
/// use ces::{CesBuilder, Occurrence};
/// use tts::{DelayInterval, EventId, Time};
///
/// let e = |i| EventId::from_index(i);
/// let d = DelayInterval::new(Time::new(1), Time::new(2))?;
/// let mut b = CesBuilder::new();
/// let a = b.add_node(Occurrence::first(e(0)), "a", d);
/// let c = b.add_node(Occurrence::first(e(1)), "c", d);
/// b.add_causal_arc(a, c);
/// let ces = b.build()?;
/// assert_eq!(ces.node_count(), 2);
/// assert_eq!(ces.predecessors(c), &[a]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ces {
    nodes: Vec<NodeData>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    timing_preds: Vec<Vec<NodeId>>,
}

impl Ces {
    /// Number of occurrences.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the structure has no occurrences.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// The occurrence carried by a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this structure.
    pub fn occurrence(&self, node: NodeId) -> Occurrence {
        self.nodes[node.index()].occurrence
    }

    /// The display label of a node (usually the event name).
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].label
    }

    /// The delay interval of a node.
    pub fn delay(&self, node: NodeId) -> DelayInterval {
        self.nodes[node.index()].delay
    }

    /// Direct causal predecessors of a node.
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.preds[node.index()]
    }

    /// Direct causal successors of a node.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node.index()]
    }

    /// Timing-arc predecessors of a node (relative-timing constraints
    /// targeting it).
    pub fn timing_predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.timing_preds[node.index()]
    }

    /// All timing arcs as `(before, after)` pairs.
    pub fn timing_arcs(&self) -> Vec<(NodeId, NodeId)> {
        self.timing_preds
            .iter()
            .enumerate()
            .flat_map(|(to, froms)| froms.iter().map(move |&f| (f, NodeId(to as u32))))
            .collect()
    }

    /// Number of timing arcs.
    pub fn timing_arc_count(&self) -> usize {
        self.timing_preds.iter().map(Vec::len).sum()
    }

    /// Finds the node carrying a given occurrence.
    pub fn node_of(&self, occurrence: Occurrence) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|d| d.occurrence == occurrence)
            .map(NodeId::from_index)
    }

    /// Returns a copy of the structure with an extra timing arc.
    #[must_use]
    pub fn with_timing_arc(&self, from: NodeId, to: NodeId) -> Ces {
        let mut copy = self.clone();
        if !copy.timing_preds[to.index()].contains(&from) {
            copy.timing_preds[to.index()].push(from);
        }
        copy
    }

    /// A topological order of the combined causal + timing graph, or `None`
    /// if it has a cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for (to, froms) in self.preds.iter().enumerate() {
            indegree[to] += froms.len();
            indegree[to] += self.timing_preds[to].len();
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        // Successor map that includes timing arcs.
        let mut all_succs = vec![Vec::new(); n];
        for (to, froms) in self.preds.iter().enumerate() {
            for f in froms {
                all_succs[f.index()].push(to);
            }
        }
        for (to, froms) in self.timing_preds.iter().enumerate() {
            for f in froms {
                all_succs[f.index()].push(to);
            }
        }
        while let Some(i) = stack.pop() {
            order.push(NodeId(i as u32));
            for &s in &all_succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    stack.push(s);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// The set of causal ancestors of `node` (not including `node`).
    pub fn ancestors(&self, node: NodeId) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            for &p in &self.preds[x.index()] {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Returns `true` if `a` causally precedes `b` (transitively).
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.ancestors(b).contains(&a)
    }

    /// Renders the structure with labels and arcs, for diagnostics and
    /// reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for node in self.nodes() {
            let preds: Vec<&str> = self
                .predecessors(node)
                .iter()
                .map(|&p| self.label(p))
                .collect();
            let timing: Vec<&str> = self
                .timing_predecessors(node)
                .iter()
                .map(|&p| self.label(p))
                .collect();
            out.push_str(&format!(
                "{} {}  <- causal {:?}  <- timing {:?}\n",
                self.label(node),
                self.delay(node),
                preds,
                timing
            ));
        }
        out
    }

    /// Builds a map from occurrence to node id.
    pub fn occurrence_index(&self) -> HashMap<Occurrence, NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, d)| (d.occurrence, NodeId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::Time;

    fn delay(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    fn ev(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn build_simple_chain() {
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", delay(1, 2));
        let c = b.add_node(Occurrence::first(ev(1)), "c", delay(2, 3));
        let d = b.add_node(Occurrence::first(ev(2)), "d", delay(0, 1));
        b.add_causal_arc(a, c);
        b.add_causal_arc(c, d);
        let ces = b.build().unwrap();
        assert_eq!(ces.node_count(), 3);
        assert!(ces.precedes(a, d));
        assert!(!ces.precedes(d, a));
        assert_eq!(ces.successors(a), &[c]);
        assert_eq!(ces.ancestors(d).len(), 2);
        assert_eq!(ces.topological_order().unwrap().len(), 3);
        assert!(ces.render().contains("a [1,2]"));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", delay(1, 1));
        let c = b.add_node(Occurrence::first(ev(1)), "c", delay(1, 1));
        b.add_causal_arc(a, c);
        b.add_causal_arc(c, a);
        assert!(matches!(b.build(), Err(BuildCesError::Cyclic(_))));
    }

    #[test]
    fn timing_arcs_count_towards_cycles() {
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", delay(1, 1));
        let c = b.add_node(Occurrence::first(ev(1)), "c", delay(1, 1));
        b.add_causal_arc(a, c);
        b.add_timing_arc(c, a);
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", delay(1, 1));
        b.add_causal_arc(a, NodeId::from_index(7));
        assert!(matches!(b.build(), Err(BuildCesError::UnknownNode(_))));
    }

    #[test]
    fn with_timing_arc_is_nondestructive() {
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", delay(1, 1));
        let c = b.add_node(Occurrence::first(ev(1)), "c", delay(1, 1));
        b.add_causal_arc(a, c);
        let ces = b.build().unwrap();
        assert_eq!(ces.timing_arc_count(), 0);
        let lazy = ces.with_timing_arc(a, c);
        assert_eq!(lazy.timing_arc_count(), 1);
        assert_eq!(ces.timing_arc_count(), 0);
        assert_eq!(lazy.timing_arcs(), vec![(a, c)]);
        assert_eq!(lazy.timing_predecessors(c), &[a]);
    }

    #[test]
    fn occurrence_lookup() {
        let mut b = CesBuilder::new();
        let a0 = b.add_node(Occurrence::new(ev(0), 0), "a", delay(1, 1));
        let a1 = b.add_node(Occurrence::new(ev(0), 1), "a", delay(1, 1));
        b.add_causal_arc(a0, a1);
        let ces = b.build().unwrap();
        assert_eq!(ces.node_of(Occurrence::new(ev(0), 1)), Some(a1));
        assert_eq!(ces.node_of(Occurrence::new(ev(3), 0)), None);
        assert_eq!(ces.occurrence_index().len(), 2);
    }
}
