//! Extraction of causal event structures from failure traces.
//!
//! Following §2.1 of the paper, the causal event structure generated from a
//! trace with enabling information orders two occurrences `e_i ≺ e_j` iff
//! `i < j` and they are never simultaneously enabled — equivalently, the
//! occurrence of `e_j` only became enabled after `e_i` fired.
//!
//! The structure contains one node per *pendency span*: a maximal interval of
//! trace states over which an event is continuously enabled. A span either
//! ends with the event firing (a fired occurrence), with the event being
//! disabled by another firing, or with the end of the trace (a pending
//! occurrence). Unfired spans matter because a failure typically consists of
//! some event firing "too early" while another event (e.g. `Z+` in Fig. 13 of
//! the paper) is still pending; it is precisely the separation between the
//! fired and the pending occurrence that proves the trace
//! timing-inconsistent.

use std::collections::HashMap;

use tts::{EnablingTrace, EventId, TimedTransitionSystem};

use crate::structure::{BuildCesError, Ces, CesBuilder, NodeId, Occurrence};

/// A causal event structure extracted from a trace, with bookkeeping that
/// links nodes back to trace positions.
#[derive(Debug, Clone)]
pub struct ExtractedCes {
    ces: Ces,
    /// `fired[k]` is the node of the occurrence fired at trace step `k`.
    fired: Vec<NodeId>,
    /// For every span: `(event, first state index, last state index,
    /// fired?)`. Used to answer "which occurrence of `e` was pending at step
    /// `k`".
    spans: Vec<SpanInfo>,
    /// Occurrences still pending (enabled, unfired) in the final state.
    pending: Vec<(EventId, NodeId)>,
}

#[derive(Debug, Clone, Copy)]
struct SpanInfo {
    event: EventId,
    node: NodeId,
    /// First trace-state index at which the span is enabled.
    start: usize,
    /// Last trace-state index at which the span is enabled.
    end: usize,
    /// Step index at which the span fired, if it did.
    fire_step: Option<usize>,
}

impl ExtractedCes {
    /// The extracted structure.
    pub fn ces(&self) -> &Ces {
        &self.ces
    }

    /// Consumes the extraction and returns the structure.
    pub fn into_ces(self) -> Ces {
        self.ces
    }

    /// Node corresponding to the occurrence fired at trace step `k`.
    pub fn fired_node(&self, step: usize) -> Option<NodeId> {
        self.fired.get(step).copied()
    }

    /// Node of the occurrence of `event` that is pending (enabled, unfired)
    /// or about to fire at trace step `k` (i.e. in the state the step fires
    /// from).
    pub fn node_active_at(&self, step: usize, event: EventId) -> Option<NodeId> {
        self.spans
            .iter()
            .find(|s| s.event == event && s.start <= step && step <= s.end)
            .map(|s| s.node)
    }

    /// Nodes of occurrences pending (enabled, unfired) in the final state.
    pub fn pending_nodes(&self) -> &[(EventId, NodeId)] {
        &self.pending
    }

    /// Node of the pending occurrence of `event` in the final state, if any.
    pub fn pending_node_of(&self, event: EventId) -> Option<NodeId> {
        self.pending
            .iter()
            .find(|(e, _)| *e == event)
            .map(|&(_, n)| n)
    }
}

/// Extracts the causal event structure of a trace (§2.1), including unfired
/// pendency spans.
///
/// Delay intervals are taken from `timed`; events without explicit intervals
/// get `[0, ∞)`.
///
/// # Errors
///
/// Returns [`BuildCesError`] if the derived precedence relation is cyclic,
/// which cannot happen for traces produced by the exploration engine but is
/// checked defensively.
///
/// # Examples
///
/// ```
/// use ces::extract_ces;
/// use tts::{DelayInterval, EnablingTrace, Time, TimedTransitionSystem, TsBuilder};
///
/// let mut b = TsBuilder::new("t");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let s2 = b.add_state("s2");
/// let a = b.add_transition(s0, "a", s1);
/// let c = b.add_transition(s1, "c", s2);
/// b.set_initial(s0);
/// let ts = b.build()?;
/// let mut timed = TimedTransitionSystem::new(ts);
/// timed.set_delay_by_name("a", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("c", DelayInterval::new(Time::new(1), Time::new(2))?);
/// let trace = EnablingTrace::from_run(timed.underlying(), s0, &[(a, s1), (c, s2)])?;
/// let extracted = extract_ces(&trace, &timed)?;
/// // `c` became enabled by the firing of `a`, so the structure has the arc a -> c.
/// let a_node = extracted.fired_node(0).unwrap();
/// let c_node = extracted.fired_node(1).unwrap();
/// assert!(extracted.ces().precedes(a_node, c_node));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract_ces(
    trace: &EnablingTrace,
    timed: &TimedTransitionSystem,
) -> Result<ExtractedCes, BuildCesError> {
    let ts = timed.underlying();
    let steps = trace.steps();
    let n = steps.len();

    // Enabled set per trace state 0..=n.
    let enabled_at = |state_index: usize| -> Vec<EventId> {
        if state_index < n {
            steps[state_index].enabled.iter().copied().collect()
        } else {
            ts.enabled(trace.last_state()).into_iter().collect()
        }
    };

    // Compute pendency spans per event.
    struct RawSpan {
        event: EventId,
        start: usize,
        end: usize,
        fire_step: Option<usize>,
    }
    let mut raw_spans: Vec<RawSpan> = Vec::new();
    let mut open: HashMap<EventId, usize> = HashMap::new();
    // Index-driven on purpose: state `n` is the virtual post-trace state with
    // no entry in `steps`, and span ends refer back to `state_index - 1`.
    #[allow(clippy::needless_range_loop)]
    for state_index in 0..=n {
        let here: Vec<EventId> = enabled_at(state_index);
        // Close spans of events no longer enabled (disabled without firing).
        let closed: Vec<EventId> = open.keys().copied().filter(|e| !here.contains(e)).collect();
        for event in closed {
            let start = open.remove(&event).expect("span is open");
            raw_spans.push(RawSpan {
                event,
                start,
                end: state_index - 1,
                fire_step: None,
            });
        }
        // Open spans for newly enabled events.
        for &event in &here {
            open.entry(event).or_insert(state_index);
        }
        // If this state fires an event, its span closes here (and may reopen
        // at the next state if it stays enabled).
        if state_index < n {
            let fired = steps[state_index].event;
            if let Some(start) = open.remove(&fired) {
                raw_spans.push(RawSpan {
                    event: fired,
                    start,
                    end: state_index,
                    fire_step: Some(state_index),
                });
            }
        }
    }
    // Whatever is still open is pending at the end of the trace.
    for (event, start) in open {
        raw_spans.push(RawSpan {
            event,
            start,
            end: n,
            fire_step: None,
        });
    }
    // Deterministic order: by start state, then event id.
    raw_spans.sort_by_key(|s| (s.start, s.fire_step.unwrap_or(usize::MAX), s.event));

    // Build nodes.
    let mut builder = CesBuilder::new();
    let mut occurrence_counter: HashMap<EventId, u32> = HashMap::new();
    let mut spans: Vec<SpanInfo> = Vec::with_capacity(raw_spans.len());
    for raw in &raw_spans {
        let counter = occurrence_counter.entry(raw.event).or_insert(0);
        let label = ts.alphabet().name(raw.event).to_owned();
        let node = builder.add_node(
            Occurrence::new(raw.event, *counter),
            label,
            timed.delay(raw.event),
        );
        *counter += 1;
        spans.push(SpanInfo {
            event: raw.event,
            node,
            start: raw.start,
            end: raw.end,
            fire_step: raw.fire_step,
        });
    }

    // Precedence: span i precedes span j iff i fired before j became enabled.
    let precedes = |i: usize, j: usize| -> bool {
        match spans[i].fire_step {
            Some(fire) => fire < spans[j].start,
            None => false,
        }
    };
    // Transitive reduction (valid because delays are non-negative: implied
    // orderings do not change the max-plus semantics).
    for j in 0..spans.len() {
        for i in 0..spans.len() {
            if i == j || !precedes(i, j) {
                continue;
            }
            let transitive =
                (0..spans.len()).any(|k| k != i && k != j && precedes(i, k) && precedes(k, j));
            if !transitive {
                builder.add_causal_arc(spans[i].node, spans[j].node);
            }
        }
    }

    let ces = builder.build()?;
    let mut fired = vec![NodeId::from_index(0); n];
    let mut have_fired = vec![false; n];
    for span in &spans {
        if let Some(step) = span.fire_step {
            fired[step] = span.node;
            have_fired[step] = true;
        }
    }
    debug_assert!(have_fired.iter().all(|&b| b), "every step has a fired span");
    let pending = spans
        .iter()
        .filter(|s| s.fire_step.is_none() && s.end == n)
        .map(|s| (s.event, s.node))
        .collect();
    Ok(ExtractedCes {
        ces,
        fired,
        spans,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// s0 --a--> s1 --b--> s2, with `c` enabled from s0 all along (pending).
    fn trace_with_pending() -> (TimedTransitionSystem, EnablingTrace) {
        let mut b = TsBuilder::new("t");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        let s4 = b.add_state("s4");
        let a = b.add_transition(s0, "a", s1);
        let bb = b.add_transition(s1, "b", s2);
        let c = b.add_transition(s0, "c", s3);
        b.add_transition_by_id(s1, c, s4);
        b.add_transition_by_id(s2, c, s4);
        b.set_initial(s0);
        let ts = b.build().unwrap();
        let mut timed = TimedTransitionSystem::new(ts);
        timed.set_delay_by_name("a", d(1, 2));
        timed.set_delay_by_name("b", d(1, 2));
        timed.set_delay_by_name("c", d(5, 9));
        let trace = EnablingTrace::from_run(timed.underlying(), s0, &[(a, s1), (bb, s2)]).unwrap();
        (timed, trace)
    }

    #[test]
    fn fired_and_pending_nodes_are_extracted() {
        let (timed, trace) = trace_with_pending();
        let extracted = extract_ces(&trace, &timed).unwrap();
        assert_eq!(extracted.ces().node_count(), 3);
        let a_node = extracted.fired_node(0).unwrap();
        let b_node = extracted.fired_node(1).unwrap();
        assert!(extracted.ces().precedes(a_node, b_node));
        // `c` is pending and was enabled from the initial state, so it has no
        // causal predecessors.
        let alphabet = timed.underlying().alphabet();
        let c_id = alphabet.lookup("c").unwrap();
        let c_node = extracted.pending_node_of(c_id).unwrap();
        assert!(extracted.ces().predecessors(c_node).is_empty());
        assert_eq!(extracted.pending_nodes().len(), 1);
        // The same node is reported as active at both steps.
        assert_eq!(extracted.node_active_at(0, c_id), Some(c_node));
        assert_eq!(extracted.node_active_at(1, c_id), Some(c_node));
    }

    #[test]
    fn co_enabled_events_are_not_ordered() {
        let (timed, trace) = trace_with_pending();
        let extracted = extract_ces(&trace, &timed).unwrap();
        // `c` was co-enabled with `a` (both enabled in s0), so `a` must not be
        // a causal predecessor of `c` even though it fired earlier.
        let alphabet = timed.underlying().alphabet();
        let c_id = alphabet.lookup("c").unwrap();
        let c_node = extracted.pending_node_of(c_id).unwrap();
        let a_node = extracted.fired_node(0).unwrap();
        assert!(!extracted.ces().precedes(a_node, c_node));
    }

    #[test]
    fn disabled_spans_still_get_nodes() {
        // `victim` is enabled in s0 but firing `killer` disables it.
        let mut b = TsBuilder::new("kill");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let victim = b.add_transition(s0, "victim", s1);
        let killer = b.add_transition(s0, "killer", s2);
        let _ = victim;
        b.set_initial(s0);
        let ts = b.build().unwrap();
        let mut timed = TimedTransitionSystem::new(ts);
        timed.set_delay_by_name("victim", d(1, 2));
        timed.set_delay_by_name("killer", d(5, 9));
        let trace = EnablingTrace::from_run(timed.underlying(), s0, &[(killer, s2)]).unwrap();
        let extracted = extract_ces(&trace, &timed).unwrap();
        // Two nodes: the fired killer span and the disabled victim span.
        assert_eq!(extracted.ces().node_count(), 2);
        let victim_id = timed.underlying().alphabet().lookup("victim").unwrap();
        let victim_node = extracted.node_active_at(0, victim_id).unwrap();
        assert_eq!(extracted.ces().delay(victim_node), d(1, 2));
        // It is not pending at the end (it was disabled), so it is not listed
        // as pending.
        assert!(extracted.pending_node_of(victim_id).is_none());
    }

    #[test]
    fn repeated_events_get_distinct_occurrences() {
        let mut b = TsBuilder::new("loop");
        let s0 = b.add_state("s0");
        let a = b.add_transition(s0, "a", s0);
        b.set_initial(s0);
        let ts = b.build().unwrap();
        let mut timed = TimedTransitionSystem::new(ts);
        timed.set_delay_by_name("a", d(1, 1));
        let trace = EnablingTrace::from_run(timed.underlying(), s0, &[(a, s0), (a, s0)]).unwrap();
        let extracted = extract_ces(&trace, &timed).unwrap();
        // Two fired occurrences plus the pending third occurrence.
        assert_eq!(extracted.ces().node_count(), 3);
        let first = extracted.fired_node(0).unwrap();
        let second = extracted.fired_node(1).unwrap();
        assert_ne!(first, second);
        assert!(extracted.ces().precedes(first, second));
        let a_id = timed.underlying().alphabet().lookup("a").unwrap();
        assert!(extracted.pending_node_of(a_id).is_some());
    }

    #[test]
    fn delays_are_carried_from_the_timed_system() {
        let (timed, trace) = trace_with_pending();
        let extracted = extract_ces(&trace, &timed).unwrap();
        let a_node = extracted.fired_node(0).unwrap();
        assert_eq!(extracted.ces().delay(a_node), d(1, 2));
        let alphabet = timed.underlying().alphabet();
        let c_id = alphabet.lookup("c").unwrap();
        let c_node = extracted.pending_node_of(c_id).unwrap();
        assert_eq!(extracted.ces().delay(c_node), d(5, 9));
    }

    #[test]
    fn empty_trace_yields_only_pending_nodes() {
        let (timed, _) = trace_with_pending();
        let s0 = timed.underlying().initial_states()[0];
        let trace = EnablingTrace::from_run(timed.underlying(), s0, &[]).unwrap();
        let extracted = extract_ces(&trace, &timed).unwrap();
        assert_eq!(extracted.fired_node(0), None);
        assert_eq!(
            extracted.ces().node_count(),
            extracted.pending_nodes().len()
        );
    }
}
