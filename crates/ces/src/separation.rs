//! Maximum-separation analysis on causal event structures.
//!
//! Given an acyclic event structure with AND-causality and per-occurrence
//! delay intervals, the firing time of an occurrence `e` is
//! `t(e) = enab(e) + d(e)` with `d(e) ∈ [δl(e), δu(e)]` and
//! `enab(e) = max{ t(p) | p direct predecessor }` (0 for sources). The
//! *maximum separation* between two occurrences `a` and `b` is
//! `max over all admissible delay choices of (t(a) − t(b))`.
//!
//! If `max(t(a) − t(b)) < 0` then `a` fires strictly before `b` in every
//! timed execution consistent with the structure — this is how absolute
//! delay information is abstracted into relative-timing constraints
//! (McMillan & Dill [10], Peña et al. [13]).
//!
//! The implementation enumerates source-to-`a` paths: for a fixed path `π`
//! the adversary's optimal choice is `d(v) = δu(v)` on `π` and `d(v) = δl(v)`
//! elsewhere (raising a delay on `π` increases `t(a)` at least as much as
//! `t(b)`, lowering one off `π` can only decrease `t(b)`), so the optimum is
//! attained at one of those box vertices. Infinite upper bounds are handled by
//! evaluating the bound at two large finite caps and detecting growth.

use std::collections::HashMap;
use std::fmt;

use tts::{Bound, Time};

use crate::structure::{Ces, NodeId};

/// Result of a separation query: `max(t(a) − t(b))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Separation {
    /// The separation is bounded by the contained value.
    Finite(Time),
    /// The separation can grow without bound.
    Unbounded,
}

impl Separation {
    /// Returns `true` if the separation is strictly negative, i.e. `a` always
    /// fires strictly before `b`.
    pub fn is_negative(&self) -> bool {
        matches!(self, Separation::Finite(t) if *t < Time::ZERO)
    }

    /// Returns the finite value, if any.
    pub fn finite(&self) -> Option<Time> {
        match self {
            Separation::Finite(t) => Some(*t),
            Separation::Unbounded => None,
        }
    }
}

impl fmt::Display for Separation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Separation::Finite(t) => write!(f, "{t}"),
            Separation::Unbounded => write!(f, "inf"),
        }
    }
}

/// Options for the separation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparationOptions {
    /// Maximum number of source-to-target paths to enumerate before falling
    /// back to the conservative (over-approximate) bound.
    pub path_limit: usize,
}

impl Default for SeparationOptions {
    fn default() -> Self {
        SeparationOptions { path_limit: 20_000 }
    }
}

/// Analysis object caching per-structure data for repeated separation
/// queries.
///
/// # Examples
///
/// ```
/// use ces::{CesBuilder, Occurrence, SeparationAnalysis};
/// use tts::{DelayInterval, EventId, Time};
///
/// // a -> c, b independent: c fires at least 2 after a, b within [1,2] of
/// // time 0, so max(t(b) - t(c)) = 2 - (1 + 2) = -1 < 0: b always precedes c.
/// let d12 = DelayInterval::new(Time::new(1), Time::new(2))?;
/// let d23 = DelayInterval::new(Time::new(2), Time::new(3))?;
/// let mut builder = CesBuilder::new();
/// let a = builder.add_node(Occurrence::first(EventId::from_index(0)), "a", d12.clone());
/// let b = builder.add_node(Occurrence::first(EventId::from_index(1)), "b", d12);
/// let c = builder.add_node(Occurrence::first(EventId::from_index(2)), "c", d23);
/// builder.add_causal_arc(a, c);
/// let ces = builder.build()?;
/// let analysis = SeparationAnalysis::new(&ces);
/// assert!(analysis.max_separation(b, c).is_negative());
/// assert!(!analysis.max_separation(c, b).is_negative());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SeparationAnalysis<'a> {
    ces: &'a Ces,
    options: SeparationOptions,
    /// Sum of all finite upper bounds plus slack, used to cap infinite bounds.
    base_cap: i64,
    cache: std::cell::RefCell<HashMap<(NodeId, NodeId), Separation>>,
}

impl<'a> SeparationAnalysis<'a> {
    /// Creates an analysis with default options.
    pub fn new(ces: &'a Ces) -> Self {
        Self::with_options(ces, SeparationOptions::default())
    }

    /// Creates an analysis with explicit options.
    pub fn with_options(ces: &'a Ces, options: SeparationOptions) -> Self {
        let mut base_cap: i64 = 1;
        for node in ces.nodes() {
            let d = ces.delay(node);
            match d.upper() {
                Bound::Finite(u) => base_cap = base_cap.saturating_add(u.as_i64().max(1)),
                Bound::Infinite => base_cap = base_cap.saturating_add(d.lower().as_i64().max(1)),
            }
        }
        SeparationAnalysis {
            ces,
            options,
            base_cap: base_cap.max(16),
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// Computes `max(t(a) − t(b))` over all timings admitted by the
    /// structure. Results are cached per `(a, b)` pair.
    pub fn max_separation(&self, a: NodeId, b: NodeId) -> Separation {
        if let Some(&s) = self.cache.borrow().get(&(a, b)) {
            return s;
        }
        let s = self.compute(a, b);
        self.cache.borrow_mut().insert((a, b), s);
        s
    }

    /// Returns `true` if `a` fires strictly before `b` in every admissible
    /// timing, i.e. `max(t(a) − t(b)) < 0` (the value `t(a) − t(b)` is
    /// negative for every delay choice).
    pub fn always_precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.max_separation(a, b).is_negative()
    }

    fn compute(&self, a: NodeId, b: NodeId) -> Separation {
        let cap1 = self.base_cap;
        let cap2 = self.base_cap.saturating_mul(2).saturating_add(7);
        let v1 = self.max_sep_with_cap(a, b, cap1);
        let v2 = self.max_sep_with_cap(a, b, cap2);
        if v2 > v1 {
            Separation::Unbounded
        } else {
            Separation::Finite(Time::new(v1))
        }
    }

    fn upper_capped(&self, node: NodeId, cap: i64) -> i64 {
        match self.ces.delay(node).upper() {
            Bound::Finite(u) => u.as_i64(),
            Bound::Infinite => cap,
        }
    }

    fn lower(&self, node: NodeId) -> i64 {
        self.ces.delay(node).lower().as_i64()
    }

    /// Longest (max-plus) arrival time of `target` under the node weights
    /// `weight`.
    fn arrival(&self, weights: &[i64], target: NodeId) -> i64 {
        // Memoised recursion over the DAG (iterative, reverse topological
        // order restricted to ancestors of target).
        let order = self
            .ces
            .topological_order()
            .expect("event structures are acyclic by construction");
        let mut dist = vec![i64::MIN; self.ces.node_count()];
        for &node in &order {
            let preds = self.ces.predecessors(node);
            let enab = if preds.is_empty() {
                0
            } else {
                preds
                    .iter()
                    .map(|p| dist[p.index()])
                    .max()
                    .unwrap_or(0)
                    .max(0)
            };
            dist[node.index()] = enab.saturating_add(weights[node.index()]);
            if node == target {
                break;
            }
        }
        dist[target.index()]
    }

    /// Exact maximum separation with infinite bounds replaced by `cap`.
    fn max_sep_with_cap(&self, a: NodeId, b: NodeId, cap: i64) -> i64 {
        let n = self.ces.node_count();
        // Enumerate all source-to-`a` paths (over causal predecessors).
        let mut paths: Vec<Vec<NodeId>> = Vec::new();
        let mut stack: Vec<Vec<NodeId>> = vec![vec![a]];
        let mut truncated = false;
        while let Some(path) = stack.pop() {
            let head = *path.last().expect("paths are non-empty");
            let preds = self.ces.predecessors(head);
            if preds.is_empty() {
                paths.push(path);
            } else {
                for &p in preds {
                    let mut next = path.clone();
                    next.push(p);
                    stack.push(next);
                }
            }
            if paths.len() + stack.len() > self.options.path_limit {
                truncated = true;
                break;
            }
        }
        if truncated {
            // Conservative over-approximation: latest arrival of `a` minus the
            // earliest guaranteed arrival of `b`.
            let upper_weights: Vec<i64> = (0..n)
                .map(|i| self.upper_capped(NodeId::from_index(i), cap))
                .collect();
            let lower_weights: Vec<i64> =
                (0..n).map(|i| self.lower(NodeId::from_index(i))).collect();
            return self.arrival(&upper_weights, a) - self.arrival(&lower_weights, b);
        }

        let mut best = i64::MIN;
        let mut weights: Vec<i64> = (0..n).map(|i| self.lower(NodeId::from_index(i))).collect();
        for path in &paths {
            // Weight vector: upper bound on the path, lower bound elsewhere.
            for &v in path {
                weights[v.index()] = self.upper_capped(v, cap);
            }
            let t_a: i64 = path.iter().map(|&v| self.upper_capped(v, cap)).sum();
            let t_b = self.arrival(&weights, b);
            best = best.max(t_a - t_b);
            for &v in path {
                weights[v.index()] = self.lower(v);
            }
        }
        best
    }
}

/// Brute-force oracle: enumerates every vertex of the delay box (each delay at
/// its lower or upper bound) and returns the maximum observed separation.
///
/// Only intended for tests on small structures (the cost is `O(2^n)`); the
/// maximum separation is always attained at such a vertex, so on structures
/// without infinite bounds this is exact.
///
/// # Panics
///
/// Panics if the structure has more than 20 nodes or an infinite upper bound.
pub fn brute_force_max_separation(ces: &Ces, a: NodeId, b: NodeId) -> Time {
    let n = ces.node_count();
    assert!(n <= 20, "brute-force oracle limited to 20 nodes");
    let lowers: Vec<i64> = ces.nodes().map(|v| ces.delay(v).lower().as_i64()).collect();
    let uppers: Vec<i64> = ces
        .nodes()
        .map(|v| match ces.delay(v).upper() {
            Bound::Finite(u) => u.as_i64(),
            Bound::Infinite => panic!("brute-force oracle requires finite upper bounds"),
        })
        .collect();
    let order = ces.topological_order().expect("acyclic");
    let mut best = i64::MIN;
    for mask in 0u32..(1 << n) {
        let mut t = vec![0i64; n];
        for &node in &order {
            let i = node.index();
            let d = if mask & (1 << i) != 0 {
                uppers[i]
            } else {
                lowers[i]
            };
            let enab = ces
                .predecessors(node)
                .iter()
                .map(|p| t[p.index()])
                .fold(0i64, i64::max);
            t[i] = enab + d;
        }
        best = best.max(t[a.index()] - t[b.index()]);
    }
    Time::new(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{CesBuilder, Occurrence};
    use tts::{DelayInterval, EventId};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    fn ev(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn independent_events_bounds() {
        // a in [1,2], b in [4,6]: max(t(a)-t(b)) = 2-4 = -2, max(t(b)-t(a)) = 6-1 = 5.
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", d(1, 2));
        let bb = b.add_node(Occurrence::first(ev(1)), "b", d(4, 6));
        let ces = b.build().unwrap();
        let an = SeparationAnalysis::new(&ces);
        assert_eq!(an.max_separation(a, bb), Separation::Finite(Time::new(-2)));
        assert_eq!(an.max_separation(bb, a), Separation::Finite(Time::new(5)));
        assert!(an.always_precedes(a, bb));
        assert!(!an.always_precedes(bb, a));
    }

    #[test]
    fn shared_prefix_is_not_double_counted() {
        // source v [0,10]; a and b both children with delay [0,0]:
        // t(a) == t(b) for every delay choice, so both separations are 0.
        let mut b = CesBuilder::new();
        let v = b.add_node(Occurrence::first(ev(0)), "v", d(0, 10));
        let a = b.add_node(Occurrence::first(ev(1)), "a", d(0, 0));
        let c = b.add_node(Occurrence::first(ev(2)), "c", d(0, 0));
        b.add_causal_arc(v, a);
        b.add_causal_arc(v, c);
        let ces = b.build().unwrap();
        let an = SeparationAnalysis::new(&ces);
        assert_eq!(an.max_separation(a, c), Separation::Finite(Time::ZERO));
        assert_eq!(an.max_separation(c, a), Separation::Finite(Time::ZERO));
        // The naive "longest minus shortest" bound would report 10 here.
    }

    #[test]
    fn chains_accumulate() {
        // a[1,2] -> c[2,3]; independent g[1,1].
        // max(t(g) - t(c)) = 1 - (1+2) = -2 -> g always before c.
        let mut b = CesBuilder::new();
        let a = b.add_node(Occurrence::first(ev(0)), "a", d(1, 2));
        let c = b.add_node(Occurrence::first(ev(1)), "c", d(2, 3));
        let g = b.add_node(Occurrence::first(ev(2)), "g", d(1, 1));
        b.add_causal_arc(a, c);
        let ces = b.build().unwrap();
        let an = SeparationAnalysis::new(&ces);
        assert_eq!(an.max_separation(g, c), Separation::Finite(Time::new(-2)));
        assert!(an.always_precedes(g, c));
    }

    #[test]
    fn unbounded_delays_are_detected() {
        let mut b = CesBuilder::new();
        let a = b.add_node(
            Occurrence::first(ev(0)),
            "a",
            DelayInterval::at_least(Time::new(1)).unwrap(),
        );
        let g = b.add_node(Occurrence::first(ev(1)), "g", d(1, 1));
        let ces = b.build().unwrap();
        let an = SeparationAnalysis::new(&ces);
        assert_eq!(an.max_separation(a, g), Separation::Unbounded);
        // But the other direction is bounded: g never fires later than a's
        // earliest possible firing time 1, so max(t(g)-t(a)) = 1 - 1 = 0.
        assert_eq!(an.max_separation(g, a), Separation::Finite(Time::ZERO));
        assert!(!an.max_separation(a, g).is_negative());
    }

    #[test]
    fn matches_brute_force_on_diamond() {
        let mut b = CesBuilder::new();
        let s = b.add_node(Occurrence::first(ev(0)), "s", d(1, 3));
        let x = b.add_node(Occurrence::first(ev(1)), "x", d(2, 5));
        let y = b.add_node(Occurrence::first(ev(2)), "y", d(1, 8));
        let t = b.add_node(Occurrence::first(ev(3)), "t", d(0, 2));
        b.add_causal_arc(s, x);
        b.add_causal_arc(s, y);
        b.add_causal_arc(x, t);
        b.add_causal_arc(y, t);
        let ces = b.build().unwrap();
        let an = SeparationAnalysis::new(&ces);
        for (p, q) in [(x, y), (y, x), (s, t), (t, s), (x, t), (t, x)] {
            let exact = brute_force_max_separation(&ces, p, q);
            assert_eq!(an.max_separation(p, q), Separation::Finite(exact));
        }
    }

    #[test]
    fn separation_display() {
        assert_eq!(Separation::Finite(Time::new(-3)).to_string(), "-3");
        assert_eq!(Separation::Unbounded.to_string(), "inf");
        assert_eq!(
            Separation::Finite(Time::new(4)).finite(),
            Some(Time::new(4))
        );
        assert_eq!(Separation::Unbounded.finite(), None);
    }
}
