//! Timing consistency of traces.
//!
//! A run of the underlying transition system is *timing consistent* with the
//! timed system (§2.1) if real-valued time stamps can be assigned to its
//! firings such that
//!
//! 1. time stamps are non-decreasing along the trace,
//! 2. every fired event fires within `[enab + δl, enab + δu]` of its enabling
//!    time, and
//! 3. no firing happens later than the deadline `enab(x) + δu(x)` of any event
//!    `x` that is still enabled at that point (an enabled event cannot be
//!    overtaken past its upper bound — the inertial-delay/urgency semantics).
//!
//! These are difference constraints over the firing times, so feasibility is
//! decided by negative-cycle detection (Bellman–Ford).

use std::collections::HashMap;

use tts::{Bound, EnablingTrace, EventId, TimedTransitionSystem};

/// Outcome of a timing-consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// The trace admits a consistent time-stamp assignment; one witness
    /// assignment (a time per trace step) is returned.
    Consistent(Vec<i64>),
    /// No consistent time-stamp assignment exists.
    Inconsistent,
}

impl Consistency {
    /// Returns `true` for [`Consistency::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent(_))
    }
}

/// A single difference constraint `var_hi − var_lo ≤ bound`.
#[derive(Debug, Clone, Copy)]
struct DiffConstraint {
    lo: usize,
    hi: usize,
    bound: i64,
}

/// Checks whether `trace` is timing consistent with the delays of `timed`.
///
/// # Examples
///
/// ```
/// use ces::{check_consistency, Consistency};
/// use tts::{DelayInterval, EnablingTrace, Time, TimedTransitionSystem, TsBuilder};
///
/// // `slow` and `fast` race from the initial state: `slow` takes at least 5
/// // time units, `fast` at most 2, so a trace where `slow` fires first is
/// // timing inconsistent.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let s2 = b.add_state("s2");
/// let slow = b.add_transition(s0, "slow", s1);
/// let fast = b.add_transition(s0, "fast", s2);
/// b.set_initial(s0);
/// let ts = b.build()?;
/// let mut timed = TimedTransitionSystem::new(ts);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
///
/// let slow_first = EnablingTrace::from_run(timed.underlying(), s0, &[(slow, s1)])?;
/// assert_eq!(check_consistency(&slow_first, &timed), Consistency::Inconsistent);
///
/// let fast_first = EnablingTrace::from_run(timed.underlying(), s0, &[(fast, s2)])?;
/// assert!(check_consistency(&fast_first, &timed).is_consistent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_consistency(trace: &EnablingTrace, timed: &TimedTransitionSystem) -> Consistency {
    let steps = trace.steps();
    let n = steps.len();
    if n == 0 {
        return Consistency::Consistent(Vec::new());
    }

    // Variables: T_0 (entering the start state, fixed conceptually at 0) and
    // T_{k+1} = firing time of step k. All constraints are differences, so no
    // anchoring is required for feasibility.
    let var_count = n + 1;
    let mut constraints: Vec<DiffConstraint> = Vec::new();

    // 1. Non-decreasing time stamps along the trace: T_k − T_{k+1} ≤ 0.
    for k in 0..n {
        constraints.push(DiffConstraint {
            lo: k + 1,
            hi: k,
            bound: 0,
        });
    }

    // Enabling points of the *current pendency* of each enabled event, per
    // state of the trace. `pendency_start[m][event]` is the state index at
    // which the occurrence of `event` pending in state `m` became enabled.
    let mut pendency_start: Vec<HashMap<EventId, usize>> = Vec::with_capacity(n);
    for (m, step) in steps.iter().enumerate() {
        let mut map = HashMap::new();
        for &event in &step.enabled {
            let start = if m == 0 {
                0
            } else {
                let prev = &pendency_start[m - 1];
                let prev_step = &steps[m - 1];
                if prev_step.enabled.contains(&event) && prev_step.event != event {
                    *prev.get(&event).unwrap_or(&m)
                } else {
                    m
                }
            };
            map.insert(event, start);
        }
        pendency_start.push(map);
    }

    for (k, step) in steps.iter().enumerate() {
        let fire_var = k + 1;
        // 2. Firing window of the fired event relative to its enabling point.
        let enab_var = step.enabled_since;
        let delay = timed.delay(step.event);
        // T_fire − T_enab ≥ δl  ⇔  T_enab − T_fire ≤ −δl
        constraints.push(DiffConstraint {
            lo: fire_var,
            hi: enab_var,
            bound: -delay.lower().as_i64(),
        });
        // 3. Deadlines of every event enabled in the source state (including
        // the fired event itself, which yields its upper-bound constraint).
        for (&event, &start) in &pendency_start[k] {
            if let Bound::Finite(upper) = timed.delay(event).upper() {
                constraints.push(DiffConstraint {
                    lo: start,
                    hi: fire_var,
                    bound: upper.as_i64(),
                });
            }
        }
    }

    match solve_difference_constraints(var_count, &constraints) {
        Some(solution) => {
            // Normalise so that T_0 = 0 and report only firing times.
            let offset = solution[0];
            Consistency::Consistent(solution[1..].iter().map(|t| t - offset).collect())
        }
        None => Consistency::Inconsistent,
    }
}

/// Solves a system of difference constraints `x_hi − x_lo ≤ bound` by
/// Bellman–Ford from a virtual source. Returns a satisfying assignment or
/// `None` if the system is infeasible.
fn solve_difference_constraints(
    var_count: usize,
    constraints: &[DiffConstraint],
) -> Option<Vec<i64>> {
    // Edge lo -> hi with weight `bound`; virtual source var_count -> all with 0.
    let mut dist = vec![0i64; var_count];
    for _ in 0..var_count {
        let mut changed = false;
        for c in constraints {
            let candidate = dist[c.lo].saturating_add(c.bound);
            if candidate < dist[c.hi] {
                dist[c.hi] = candidate;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
    }
    // One more relaxation round detects negative cycles.
    for c in constraints {
        if dist[c.lo].saturating_add(c.bound) < dist[c.hi] {
            return None;
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, EnablingTrace, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// Two events racing from the initial state, with delays chosen by the
    /// caller.
    fn race(
        slow: DelayInterval,
        fast: DelayInterval,
    ) -> (TimedTransitionSystem, Vec<tts::EventId>) {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        let e_slow = b.add_transition(s0, "slow", s1);
        let e_fast = b.add_transition(s0, "fast", s2);
        b.add_transition_by_id(s1, e_fast, s3);
        b.add_transition_by_id(s2, e_slow, s3);
        b.set_initial(s0);
        let ts = b.build().unwrap();
        let mut timed = TimedTransitionSystem::new(ts);
        timed.set_delay_by_name("slow", slow);
        timed.set_delay_by_name("fast", fast);
        (timed, vec![e_slow, e_fast])
    }

    #[test]
    fn overtaking_a_deadline_is_inconsistent() {
        let (timed, events) = race(d(5, 9), d(1, 2));
        let ts = timed.underlying();
        let s0 = ts.initial_states()[0];
        let s1 = ts.successors(s0, events[0])[0];
        let trace = EnablingTrace::from_run(ts, s0, &[(events[0], s1)]).unwrap();
        assert_eq!(check_consistency(&trace, &timed), Consistency::Inconsistent);
    }

    #[test]
    fn respecting_the_deadline_is_consistent() {
        let (timed, events) = race(d(5, 9), d(1, 2));
        let ts = timed.underlying();
        let s0 = ts.initial_states()[0];
        let s2 = ts.successors(s0, events[1])[0];
        let trace = EnablingTrace::from_run(ts, s0, &[(events[1], s2)]).unwrap();
        let result = check_consistency(&trace, &timed);
        assert!(result.is_consistent());
    }

    #[test]
    fn overlapping_windows_allow_either_order() {
        let (timed, events) = race(d(1, 4), d(2, 6));
        let ts = timed.underlying();
        let s0 = ts.initial_states()[0];
        for &e in &events {
            let to = ts.successors(s0, e)[0];
            let trace = EnablingTrace::from_run(ts, s0, &[(e, to)]).unwrap();
            assert!(check_consistency(&trace, &timed).is_consistent());
        }
    }

    #[test]
    fn full_interleavings_respect_cumulative_windows() {
        let (timed, events) = race(d(5, 9), d(1, 2));
        let ts = timed.underlying();
        let s0 = ts.initial_states()[0];
        // fast then slow is fine.
        let s2 = ts.successors(s0, events[1])[0];
        let s3 = ts.successors(s2, events[0])[0];
        let trace = EnablingTrace::from_run(ts, s0, &[(events[1], s2), (events[0], s3)]).unwrap();
        let result = check_consistency(&trace, &timed);
        match result {
            Consistency::Consistent(times) => {
                assert_eq!(times.len(), 2);
                assert!(times[0] <= times[1]);
            }
            Consistency::Inconsistent => panic!("expected consistent trace"),
        }
    }

    #[test]
    fn unbounded_events_never_force_deadlines() {
        let (timed, events) = race(DelayInterval::unbounded(), d(1, 2));
        let ts = timed.underlying();
        let s0 = ts.initial_states()[0];
        // Even though `fast` has a tight window, the unbounded `slow` event
        // firing first at time ~0 is consistent.
        let s1 = ts.successors(s0, events[0])[0];
        let trace = EnablingTrace::from_run(ts, s0, &[(events[0], s1)]).unwrap();
        assert!(check_consistency(&trace, &timed).is_consistent());
    }

    #[test]
    fn empty_trace_is_consistent() {
        let (timed, _) = race(d(1, 2), d(1, 2));
        let s0 = timed.underlying().initial_states()[0];
        let trace = EnablingTrace::from_run(timed.underlying(), s0, &[]).unwrap();
        assert_eq!(
            check_consistency(&trace, &timed),
            Consistency::Consistent(vec![])
        );
    }
}
