//! Causal event structures, max-separation timing analysis and
//! relative-timing constraints.
//!
//! This crate implements the timing side of the relative-timing verification
//! methodology used in the IPCMOS case study (Peña et al., DATE 2002):
//!
//! * [`Ces`] — (lazy) causal event structures: acyclic AND-causality graphs
//!   over event occurrences with per-occurrence delay intervals and optional
//!   timing arcs.
//! * [`extract_ces`] — extraction of a CES from a failure trace with enabling
//!   information (§2.1 of the paper), including the occurrences still pending
//!   at the failure point.
//! * [`SeparationAnalysis`] — exact maximum-separation analysis
//!   (`max(t(a) − t(b))`) in the style of McMillan & Dill, used to discover
//!   event orderings implied by the absolute delay bounds.
//! * [`check_consistency`] — timing-consistency check of a trace against the
//!   delay intervals (difference-constraint feasibility), used to distinguish
//!   real counterexamples from timing-inconsistent interleavings.
//! * [`RelativeTimingConstraint`] — the constraints derived from negative
//!   separations; these are both the pruning rules of the refinement loop and
//!   the back-annotation reported to the designer.
//!
//! # Example
//!
//! ```
//! use ces::{CesBuilder, Occurrence, RelativeTimingConstraint, SeparationAnalysis};
//! use tts::{DelayInterval, EventId, Time};
//!
//! // Fig. 13(b)-style situation: ACK+ responds in [8,11] to an input, while
//! // Z+ follows the same input within [1,2]; therefore Z+ always precedes
//! // ACK+ and the short-circuit at node Y cannot happen.
//! let input = EventId::from_index(0);
//! let z_plus = EventId::from_index(1);
//! let ack_plus = EventId::from_index(2);
//! let mut builder = CesBuilder::new();
//! let n_in = builder.add_node(
//!     Occurrence::first(input),
//!     "VALID-",
//!     DelayInterval::new(Time::new(0), Time::new(0))?,
//! );
//! let n_z = builder.add_node(
//!     Occurrence::first(z_plus),
//!     "Z+",
//!     DelayInterval::new(Time::new(1), Time::new(2))?,
//! );
//! let n_ack = builder.add_node(
//!     Occurrence::first(ack_plus),
//!     "ACK+",
//!     DelayInterval::new(Time::new(8), Time::new(11))?,
//! );
//! builder.add_causal_arc(n_in, n_z);
//! builder.add_causal_arc(n_in, n_ack);
//! let ces = builder.build()?;
//!
//! let analysis = SeparationAnalysis::new(&ces);
//! let sep = analysis.max_separation(n_z, n_ack);
//! let constraint =
//!     RelativeTimingConstraint::from_separation(z_plus, "Z+", ack_plus, "ACK+", sep)
//!         .expect("Z+ always precedes ACK+");
//! assert_eq!(constraint.slack(), Some(Time::new(6)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod constraint;
mod extract;
mod separation;
mod structure;

pub use consistency::{check_consistency, Consistency};
pub use constraint::{Justification, RelativeTimingConstraint};
pub use extract::{extract_ces, ExtractedCes};
pub use separation::{
    brute_force_max_separation, Separation, SeparationAnalysis, SeparationOptions,
};
pub use structure::{BuildCesError, Ces, CesBuilder, NodeId, Occurrence};
