//! Relative-timing constraints.
//!
//! A relative-timing constraint `a ⋖ b` records that, under the given
//! absolute delay bounds, event `a` always fires before event `b` whenever
//! both are pending. The verification engine uses constraints to prune
//! timing-inconsistent interleavings (the *lazy* semantics: the firing of `b`
//! is delayed, its enabling is untouched), and the same constraints are the
//! back-annotation reported to the designer — the delay slacks under which
//! the circuit remains correct (Fig. 13 of the paper).

use std::fmt;

use tts::{EventId, Time};

use crate::separation::Separation;

/// A relative-timing constraint: `before` fires before `after` whenever both
/// are pending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeTimingConstraint {
    before: EventId,
    after: EventId,
    before_name: String,
    after_name: String,
    justification: Justification,
}

/// Why a relative-timing constraint holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Justification {
    /// Derived by separation analysis: `max(t(before) − t(after))` is the
    /// contained (negative) value, i.e. `before` leads `after` by at least
    /// that margin in every admissible timing.
    Separation {
        /// `max(t(before) − t(after))` over the analysed event structure.
        max_before_minus_after: Time,
    },
    /// Supplied by the user / environment specification.
    Assumed,
}

impl RelativeTimingConstraint {
    /// Creates a constraint justified by a separation analysis result.
    ///
    /// Returns `None` unless the separation proves the ordering (i.e. it is
    /// finite and strictly negative).
    pub fn from_separation(
        before: EventId,
        before_name: impl Into<String>,
        after: EventId,
        after_name: impl Into<String>,
        max_before_minus_after: Separation,
    ) -> Option<Self> {
        match max_before_minus_after {
            Separation::Finite(t) if t < Time::ZERO => Some(RelativeTimingConstraint {
                before,
                after,
                before_name: before_name.into(),
                after_name: after_name.into(),
                justification: Justification::Separation {
                    max_before_minus_after: t,
                },
            }),
            _ => None,
        }
    }

    /// Creates an assumed (environment-supplied) constraint.
    pub fn assumed(
        before: EventId,
        before_name: impl Into<String>,
        after: EventId,
        after_name: impl Into<String>,
    ) -> Self {
        RelativeTimingConstraint {
            before,
            after,
            before_name: before_name.into(),
            after_name: after_name.into(),
            justification: Justification::Assumed,
        }
    }

    /// The event that must fire first.
    pub fn before(&self) -> EventId {
        self.before
    }

    /// The event whose firing is delayed.
    pub fn after(&self) -> EventId {
        self.after
    }

    /// Name of the event that must fire first.
    pub fn before_name(&self) -> &str {
        &self.before_name
    }

    /// Name of the delayed event.
    pub fn after_name(&self) -> &str {
        &self.after_name
    }

    /// The justification recorded for the constraint.
    pub fn justification(&self) -> &Justification {
        &self.justification
    }

    /// Slack of the constraint: how much the delayed event's earliest firing
    /// leads the required ordering (positive slack means the ordering holds
    /// with margin). `None` for assumed constraints.
    pub fn slack(&self) -> Option<Time> {
        match &self.justification {
            Justification::Separation {
                max_before_minus_after,
            } => Some(-*max_before_minus_after),
            Justification::Assumed => None,
        }
    }
}

impl fmt::Display for RelativeTimingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.justification {
            Justification::Separation {
                max_before_minus_after,
            } => write!(
                f,
                "{} < {} (slack {})",
                self.before_name, self.after_name, -*max_before_minus_after
            ),
            Justification::Assumed => {
                write!(f, "{} < {} (assumed)", self.before_name, self.after_name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn from_negative_separation() {
        let c = RelativeTimingConstraint::from_separation(
            ev(0),
            "Z+",
            ev(1),
            "ACK+",
            Separation::Finite(Time::new(-3)),
        )
        .unwrap();
        assert_eq!(c.before(), ev(0));
        assert_eq!(c.after(), ev(1));
        assert_eq!(c.slack(), Some(Time::new(3)));
        assert_eq!(c.to_string(), "Z+ < ACK+ (slack 3)");
    }

    #[test]
    fn non_negative_separation_is_rejected() {
        assert!(RelativeTimingConstraint::from_separation(
            ev(0),
            "a",
            ev(1),
            "b",
            Separation::Finite(Time::ZERO)
        )
        .is_none());
        assert!(RelativeTimingConstraint::from_separation(
            ev(0),
            "a",
            ev(1),
            "b",
            Separation::Unbounded
        )
        .is_none());
    }

    #[test]
    fn assumed_constraints_have_no_slack() {
        let c = RelativeTimingConstraint::assumed(ev(0), "VALID-", ev(1), "ACK+");
        assert_eq!(c.slack(), None);
        assert!(c.to_string().contains("assumed"));
        assert_eq!(*c.justification(), Justification::Assumed);
        assert_eq!(c.before_name(), "VALID-");
        assert_eq!(c.after_name(), "ACK+");
    }
}
