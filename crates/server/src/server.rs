//! The HTTP front end: socket handling, routing and the worker pool.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bench::json::Value;
use transyt_gate::{GateConfig, Priority};
use transyt_session::{Session, TaskSpec};

use crate::http::{Request, Response};
use crate::state::{JobStatus, JobView, ResultStoreConfig, ServerState, SubmitError};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7171` (port `0` picks a free port —
    /// handy for tests).
    pub addr: String,
    /// Worker threads draining the job queue: at most this many jobs run
    /// concurrently; further submissions queue FIFO. Keep `workers ×
    /// per-job --threads` at or below the machine's cores so concurrent
    /// verifications don't oversubscribe the explorer's own thread pool.
    pub workers: usize,
    /// Admission depth (`serve --queue-depth N`): at most this many jobs
    /// wait in the queue; further submissions are refused with `429 Too
    /// Many Requests` and a load-derived `Retry-After` header.
    pub queue_depth: usize,
    /// Result-store cap: keep at most this many result documents, evicting
    /// the least recently fetched (`serve --keep-results N`).
    pub keep_results: usize,
    /// Result TTL: evict documents this long after completion
    /// (`serve --result-ttl SECS`; `None` = keep until the cap evicts).
    pub result_ttl: Option<Duration>,
    /// Data dir for durable serving (`serve --data-dir DIR`): models,
    /// result documents and the write-ahead job journal live here and the
    /// server recovers its full job table from it on startup. `None` (the
    /// default) serves ephemerally, exactly as before.
    pub data_dir: Option<String>,
    /// Whether journal appends and store writes are fsync'd before being
    /// reported durable (`serve --fsync on|off`; default on). Only
    /// meaningful with `data_dir`.
    pub fsync: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let store = ResultStoreConfig::default();
        ServerConfig {
            addr: "127.0.0.1:7171".to_owned(),
            workers: 4,
            queue_depth: GateConfig::default().depth,
            keep_results: store.keep_results,
            result_ttl: store.result_ttl,
            data_dir: None,
            fsync: true,
        }
    }
}

/// A bound (but not yet serving) verification server.
pub struct Server {
    state: Arc<ServerState>,
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
}

/// Handle to a server running on background threads (see [`Server::spawn`]).
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for in-process inspection in tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Initiates a graceful shutdown and waits for the server to finish.
    pub fn shutdown(self) -> io::Result<()> {
        self.state.shutdown();
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds the listening socket and prepares the shared state around a
    /// fresh embedded [`Session`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, …).
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        Server::bind_with_session(config, Arc::new(Session::new()))
    }

    /// Binds around an existing session (embedders that pre-load models).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, …).
    pub fn bind_with_session(config: &ServerConfig, session: Arc<Session>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = ResultStoreConfig {
            keep_results: config.keep_results,
            result_ttl: config.result_ttl,
        };
        let gate = GateConfig {
            depth: config.queue_depth,
            ..GateConfig::default()
        };
        let workers = config.workers.max(1);
        let state = match &config.data_dir {
            None => ServerState::new(session, store, gate, workers),
            Some(dir) => {
                let (persist, recovery) = transyt_store::Store::open(dir, config.fsync)?;
                ServerState::recovered(session, store, gate, workers, Arc::new(persist), &recovery)
            }
        };
        Ok(Server {
            state: Arc::new(state),
            listener,
            addr,
            workers: config.workers.max(1),
        })
    }

    /// The bound address (the actual port when the config asked for `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until shutdown, blocking the calling thread. SIGTERM and
    /// SIGINT (ctrl-c) trigger the same graceful shutdown as `POST
    /// /shutdown`: the listener stops accepting, queued jobs are cancelled,
    /// running jobs finish (or observe their fired cancel token), the worker
    /// pool drains and `run` returns.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the accept loop.
    pub fn run(self) -> io::Result<()> {
        crate::sys::install_shutdown_signals();
        self.run_inner(true)
    }

    /// Runs the server on a background thread (no signal handlers — for
    /// tests and embedding) and returns a handle to poll and stop it.
    pub fn spawn(self) -> ServerHandle {
        let state = Arc::clone(&self.state);
        let addr = self.addr;
        let thread = thread::spawn(move || self.run_inner(false));
        ServerHandle {
            state,
            addr,
            thread,
        }
    }

    fn run_inner(self, watch_signals: bool) -> io::Result<()> {
        let mut workers = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let state = Arc::clone(&self.state);
            workers.push(thread::spawn(move || state.worker_loop()));
        }

        // Non-blocking accept so the loop can observe shutdown (from a
        // signal or `POST /shutdown`) without another connection arriving.
        self.listener.set_nonblocking(true)?;
        loop {
            if self.state.is_shutdown() || (watch_signals && crate::sys::signal_received()) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }

        // Idempotent: cancels queued jobs and wakes idle workers.
        self.state.shutdown();
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        Ok(())
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;
    let response = match Request::read_from(&mut reader) {
        Ok(Some(request)) => {
            // The events route is the one streaming endpoint: it writes the
            // response incrementally itself instead of returning one.
            let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
            if let ("GET", ["jobs", id, "events"]) = (request.method.as_str(), segments.as_slice())
            {
                let _ = match parse_id(id) {
                    Ok(id) => stream_events(state, &mut stream, id),
                    Err(response) => response.write_to(&mut stream),
                };
                return;
            }
            route(state, &request)
        }
        Ok(None) => return,
        Err(e) => error_response(400, &format!("bad request: {e}")),
    };
    let _ = response.write_to(&mut stream);
}

/// Streams a job's event log as server-sent events (`data: <json>\n\n`
/// frames): a replay of everything logged so far, then live follow until
/// the terminal event. While the job still waits in the queue the stream
/// interleaves synthesized `{"type":"queued","position":N}` frames every
/// time its position improves.
fn stream_events(state: &ServerState, stream: &mut TcpStream, id: usize) -> io::Result<()> {
    let Some(log) = state.job_events(id) else {
        return error_response(404, &format!("no job {id}")).write_to(stream);
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
         Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    let mut last_position = None;
    let mut from = 0;
    loop {
        // Queue-position frames are synthesized per connection (they depend
        // on when the subscriber attached); the log itself holds only the
        // deterministic run lifecycle.
        let position = state.queue_position(id);
        if position.is_some() && position != last_position {
            let at = position.unwrap_or_default();
            write!(
                stream,
                "data: {{\"type\":\"queued\",\"position\":{at}}}\n\n"
            )?;
            stream.flush()?;
            last_position = position;
        }
        let (lines, done) = log.wait(from, Duration::from_millis(100));
        from += lines.len();
        for line in &lines {
            write!(stream, "data: {line}\n\n")?;
        }
        if !lines.is_empty() || done {
            stream.flush()?;
        }
        if done {
            return Ok(());
        }
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        Value::object().field("error", message).render() + "\n",
    )
}

fn job_document(view: &JobView) -> Value {
    let mut doc = Value::object()
        .field("job", view.id)
        .field("status", view.status.to_string())
        .field("command", view.spec.command.name())
        .field("model", view.spec.model.as_str())
        .field("model_name", view.model_name.as_str())
        .field("threads", view.spec.threads)
        .field("trace", view.spec.trace)
        .field("key", view.key.fingerprint())
        .field("explored", view.explored)
        .field("evicted", view.evicted)
        .field("priority", view.priority.name())
        .field("done", view.status.is_terminal());
    // Only on durable servers, so ephemeral documents stay byte-identical
    // to the pre-persistence wire format.
    if view.recovered {
        doc = doc.field("recovered", true);
    }
    if let Some((resource, used, limit)) = &view.breach {
        doc = doc.field(
            "breach",
            Value::object()
                .field("resource", resource.as_str())
                .field("used", *used)
                .field("limit", *limit),
        );
    }
    if let Some(error) = &view.error {
        doc = doc.field("error", error.as_str());
    }
    doc
}

fn route(state: &ServerState, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (queued, running) = state.load();
            let gate = state.gate_stats();
            let mut doc = Value::object()
                .field("status", "ok")
                .field("queued", queued)
                .field("running", running)
                .field(
                    "queue",
                    Value::object()
                        .field("depth", gate.depth)
                        .field("waiting", gate.queued)
                        .field("interactive", gate.interactive)
                        .field("batch", gate.batch)
                        .field("background", gate.background)
                        .field(
                            "avg_run_ms",
                            gate.avg_run.map_or(0, |avg| avg.as_millis() as usize),
                        )
                        .field("samples", gate.samples),
                );
            // The persistence block (and the session counters the recovery
            // tests read) only exists on durable servers: the ephemeral
            // healthz document stays byte-identical to the pre-persistence
            // wire format.
            if let Some(info) = state.persistence() {
                let stats = state.session().stats();
                doc = doc
                    .field(
                        "persistence",
                        Value::object()
                            .field("data_dir", info.data_dir.as_str())
                            .field("journal_entries", info.journal.entries as usize)
                            .field("journal_bytes", info.journal.bytes as usize)
                            .field("compacted_bytes", info.journal.compacted_bytes as usize)
                            .field(
                                "torn_bytes_dropped",
                                info.journal.torn_bytes_dropped as usize,
                            )
                            .field("stored_models", info.disk.models)
                            .field("stored_results", info.disk.results)
                            .field("result_bytes", info.disk.result_bytes as usize),
                    )
                    .field(
                        "stats",
                        Value::object()
                            .field("runs_executed", stats.runs_executed as usize)
                            .field("runs_attached", stats.runs_attached as usize)
                            .field("memo_hits", stats.memo_hits as usize)
                            .field("store_hits", stats.store_hits as usize),
                    );
            }
            Response::json(200, doc.render() + "\n")
        }
        ("POST", ["models"]) => {
            let text = match String::from_utf8(request.body.clone()) {
                Ok(text) => text,
                Err(_) => return error_response(400, "model body is not UTF-8"),
            };
            match state.upload_model(&text) {
                Ok((model, cached)) => Response::json(
                    200,
                    Value::object()
                        .field("hash", model.hash.as_str())
                        .field("name", model.name.as_str())
                        .field("kind", model.kind.as_str())
                        .field("cached", cached)
                        .render()
                        + "\n",
                ),
                Err(message) => error_response(400, &message),
            }
        }
        ("GET", ["models"]) => {
            let models: Vec<Value> = state
                .models()
                .iter()
                .map(|m| {
                    Value::object()
                        .field("hash", m.hash.as_str())
                        .field("name", m.name.as_str())
                        .field("kind", m.kind.as_str())
                        .field("bytes", m.text.len())
                })
                .collect();
            Response::json(200, Value::object().field("models", models).render() + "\n")
        }
        ("POST", ["jobs"]) => {
            let priority = match request.query_param("priority") {
                None => Priority::default(),
                Some(name) => match Priority::parse(name) {
                    Some(priority) => priority,
                    None => {
                        return error_response(
                            400,
                            &format!(
                                "unknown priority `{name}` (interactive, batch or background)"
                            ),
                        )
                    }
                },
            };
            let spec = match parse_job_request(request) {
                Ok(spec) => spec,
                Err(message) => return error_response(400, &message),
            };
            match state.submit(spec, priority) {
                Ok(id) => {
                    let mut doc = Value::object()
                        .field("job", id)
                        .field("status", "queued")
                        .field("priority", priority.name());
                    if let Some(position) = state.queue_position(id) {
                        doc = doc.field("position", position);
                    }
                    Response::json(202, doc.render() + "\n")
                }
                Err(SubmitError::Busy {
                    retry_after,
                    queued,
                }) => {
                    let secs = retry_after.as_secs().max(1);
                    Response::json(
                        429,
                        Value::object()
                            .field("error", "queue full")
                            .field("queued", queued)
                            .field("retry_after", secs as usize)
                            .render()
                            + "\n",
                    )
                    .with_header("Retry-After", secs.to_string())
                }
                Err(SubmitError::Refused(message)) => error_response(400, &message),
            }
        }
        ("GET", ["jobs"]) => {
            let jobs: Vec<Value> = state.jobs().iter().map(job_document).collect();
            let evicted: Vec<Value> = state
                .evicted_jobs()
                .into_iter()
                .map(|id| Value::UInt(id as u128))
                .collect();
            Response::json(
                200,
                Value::object()
                    .field("jobs", jobs)
                    .field("evicted", evicted)
                    .render()
                    + "\n",
            )
        }
        ("GET", ["jobs", id]) => match lookup(state, id) {
            Ok(view) => Response::json(200, job_document(&view).render() + "\n"),
            Err(response) => response,
        },
        ("GET", ["jobs", id, "result"]) => {
            let id = match parse_id(id) {
                Ok(id) => id,
                Err(response) => return response,
            };
            match state.fetch_result(id) {
                // The raw document, byte-identical to the CLI's --json file.
                Some((_, Some(result))) => Response::json(200, result.document.clone()),
                Some((view, None)) => {
                    let reason = match view.status {
                        JobStatus::Done if view.evicted => {
                            return error_response(
                                410,
                                &format!("job {} result evicted (LRU/TTL)", view.id),
                            )
                        }
                        JobStatus::TimedOut => format!(
                            "job {} timed out after {:?}",
                            view.id,
                            view.spec.deadline.unwrap_or_default()
                        ),
                        JobStatus::BudgetExceeded => {
                            let (resource, used, limit) =
                                view.breach.clone().unwrap_or(("configs".to_owned(), 0, 0));
                            format!(
                                "job {} exceeded its {resource} budget (used {used}, limit {limit})",
                                view.id
                            )
                        }
                        status if status.is_terminal() => {
                            format!("job {} produced no document (status {status})", view.id)
                        }
                        status => format!("job {} is still {status}", view.id),
                    };
                    error_response(409, &reason)
                }
                None => error_response(404, &format!("no job {id}")),
            }
        }
        ("GET", ["jobs", id, "text"]) => match lookup(state, id) {
            // Failed runs store a result whose text is empty — serving an
            // empty 200 would read as success, so only non-empty text
            // answers 200.
            Ok(view) => match &view.result {
                Some(result) if !result.text.is_empty() => Response::text(200, result.text.clone()),
                _ => error_response(409, &format!("job {} is {}", view.id, view.status)),
            },
            Err(response) => response,
        },
        ("POST", ["jobs", id, "cancel"]) => {
            let id = match id.parse::<usize>() {
                Ok(id) => id,
                Err(_) => return error_response(400, "job id must be a number"),
            };
            match state.cancel(id) {
                Some(status) => Response::json(
                    200,
                    Value::object()
                        .field("job", id)
                        .field("status", status.to_string())
                        .render()
                        + "\n",
                ),
                None => error_response(404, &format!("no job {id}")),
            }
        }
        ("POST", ["shutdown"]) => {
            state.shutdown();
            Response::json(
                200,
                Value::object().field("status", "shutting down").render() + "\n",
            )
        }
        (_, ["healthz" | "models" | "jobs" | "shutdown", ..]) => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, &format!("no route for {}", request.path)),
    }
}

fn parse_id(id: &str) -> Result<usize, Response> {
    id.parse()
        .map_err(|_| error_response(400, "job id must be a number"))
}

fn lookup(state: &ServerState, id: &str) -> Result<JobView, Response> {
    let id = parse_id(id)?;
    state
        .job(id)
        .ok_or_else(|| error_response(404, &format!("no job {id}")))
}

/// Lowers the query string into a [`TaskSpec`] through the session layer's
/// shared [`TaskSpec::parse`] — the same names, defaults and validity
/// checks the CLI flags lower through, so the two can never drift.
fn parse_job_request(request: &Request) -> Result<TaskSpec, String> {
    let command = request
        .query_param("command")
        .ok_or("missing `command` parameter")?
        .to_owned();
    let model_hash = request
        .query_param("model")
        .ok_or("missing `model` parameter (upload via POST /models first)")?
        .to_owned();
    let params: Vec<(String, String)> = request
        .query
        .iter()
        // `priority` addresses the scheduler, not the task: it must not
        // reach `TaskSpec::parse` (and must not change the task key).
        .filter(|(name, _)| name != "command" && name != "model" && name != "priority")
        .cloned()
        .collect();
    let spec = TaskSpec::parse(&command, &params).map_err(|e| e.to_string())?;
    Ok(spec.for_model(model_hash))
}
