//! A minimal, dependency-free HTTP/1.1 layer: just enough request parsing
//! and response writing for the verification server's JSON API.
//!
//! Connections are one-shot: the server reads a single request, writes a
//! single response carrying `Connection: close`, and closes the stream. The
//! bundled [`client`](crate::client) speaks the same dialect, so no
//! keep-alive, chunked-encoding or pipelining support is needed.

use std::io::{self, BufRead, Write};

/// Largest accepted request body (uploaded model files are a few KB; this is
/// generous headroom, not a streaming limit).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted request line or header line. A connection streaming
/// bytes without a newline hits this cap instead of growing the line buffer
/// without bound.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes.
fn read_limited_line(stream: &mut impl BufRead, line: &mut String) -> io::Result<usize> {
    // `take` caps how much a single malformed line can buffer; a line that
    // hits the cap without a newline is rejected rather than resumed.
    let mut limited = io::Read::take(&mut *stream, MAX_LINE_BYTES as u64);
    let read = limited.read_line(line)?;
    if read == MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(bad_request("header line too long"));
    }
    Ok(read)
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/jobs/3/result`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter called `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// Reads one request from `stream`. Returns `Ok(None)` when the peer
    /// closed the connection before sending a request line.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] (kind `InvalidData`) on malformed requests and
    /// propagates transport errors.
    pub fn read_from(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
        let mut line = String::new();
        if read_limited_line(stream, &mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let (method, target) = match (parts.next(), parts.next(), parts.next()) {
            (Some(method), Some(target), Some(version)) if version.starts_with("HTTP/1") => {
                (method.to_owned(), target.to_owned())
            }
            _ => return Err(bad_request("malformed request line")),
        };

        let mut content_length = 0usize;
        let mut header_bytes = 0usize;
        loop {
            let mut header = String::new();
            let read = read_limited_line(stream, &mut header)?;
            if read == 0 {
                return Err(bad_request("connection closed inside headers"));
            }
            header_bytes += read;
            if header_bytes > 4 * MAX_LINE_BYTES {
                return Err(bad_request("header section too large"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_request("bad content-length"))?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(bad_request("request body too large"));
        }
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body)?;

        let (raw_path, raw_query) = match target.split_once('?') {
            Some((path, query)) => (path, Some(query)),
            None => (target.as_str(), None),
        };
        let query = raw_query
            .map(|q| {
                q.split('&')
                    .filter(|pair| !pair.is_empty())
                    .map(|pair| match pair.split_once('=') {
                        Some((key, value)) => (percent_decode(key), percent_decode(value)),
                        None => (percent_decode(pair), String::new()),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Some(Request {
            method,
            path: percent_decode(raw_path),
            query,
            body,
        }))
    }
}

fn bad_request(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_owned())
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// verbatim (the server never emits them, and erroring would only turn a
/// client typo into a connection error instead of a 404).
pub fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(byte: Option<&u8>) -> Option<u8> {
    (*byte? as char).to_digit(16).map(|d| d as u8)
}

/// Encodes a string for use inside a query-parameter value.
pub fn percent_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, …), written after `Content-Type`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

/// The reason phrase of a status code this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// Writes the response (status line, headers, body) to `stream`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_query_and_body() {
        let raw = b"POST /jobs?model=abc&command=verify&to=C%2B HTTP/1.1\r\n\
                    Host: localhost\r\nContent-Length: 5\r\n\r\nhello";
        let request = Request::read_from(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
        assert_eq!(request.query_param("model"), Some("abc"));
        assert_eq!(request.query_param("to"), Some("C+"));
        assert_eq!(request.query_param("missing"), None);
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn eof_before_a_request_is_none_and_garbage_errors() {
        assert!(Request::read_from(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
        assert!(Request::read_from(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])).is_err());
    }

    #[test]
    fn percent_round_trip() {
        for text in ["plain", "a b+c", "C+", "100%", "snake_case-1.2~"] {
            assert_eq!(percent_decode(&percent_encode(text)), text);
        }
        assert_eq!(percent_decode("a%2Gb"), "a%2Gb");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_owned())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_and_reason_phrases_are_emitted() {
        let mut out = Vec::new();
        Response::json(429, "{}".to_owned())
            .with_header("Retry-After", "7".to_owned())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 7\r\n"));
        assert_eq!(reason_phrase(410), "Gone");
    }
}
