//! Per-job progress event logs behind `GET /jobs/{id}/events`.
//!
//! Every job owns an [`EventLog`]: an append-only sequence of rendered
//! server-sent-event data lines. The worker running the job appends one
//! line per [`explore::ProgressEvent`] (plus lifecycle
//! markers) and closes the log when the job reaches a terminal state;
//! any number of `/events` connections replay the log from the start and
//! then long-poll for more — late subscribers see exactly the same
//! sequence as early ones.
//!
//! Because the exploration driver emits its progress events from the
//! single-threaded merge loop, the logged sequence is deterministic and
//! thread-count-invariant: the same job streams the same events at
//! `threads=1` and `threads=8`.

use explore::ProgressEvent;
use std::sync::{Condvar, Mutex};

/// Renders one driver progress event as the JSON data line streamed over
/// `/jobs/{id}/events`. The grammar is part of the server API (documented
/// in `SERVER.md`), so tests compare whole lines.
pub fn render_progress(event: &ProgressEvent) -> String {
    match event {
        ProgressEvent::Batch {
            expanded,
            discovered,
            subsumption_skips,
        } => format!(
            "{{\"type\":\"batch\",\"expanded\":{expanded},\"discovered\":{discovered},\
             \"subsumption_skips\":{subsumption_skips}}}"
        ),
        ProgressEvent::Level { index, frontier } => {
            format!("{{\"type\":\"level\",\"index\":{index},\"frontier\":{frontier}}}")
        }
        ProgressEvent::Refinement { iteration } => {
            format!("{{\"type\":\"refinement\",\"iteration\":{iteration}}}")
        }
        ProgressEvent::Cancelled { expanded } => {
            format!("{{\"type\":\"cancelled\",\"expanded\":{expanded}}}")
        }
    }
}

struct LogInner {
    lines: Vec<String>,
    closed: bool,
}

/// An append-only, waitable event sequence. Writers [`push`](EventLog::push)
/// and finally [`close`](EventLog::close); readers page through it with
/// [`wait`](EventLog::wait).
pub struct EventLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                lines: Vec::new(),
                closed: false,
            }),
            grew: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogInner> {
        self.inner.lock().expect("event log poisoned")
    }

    /// Appends one event line and wakes waiting readers. Appends to a
    /// closed log are dropped (a cancelled job's straggler events).
    pub fn push(&self, line: String) {
        let mut inner = self.lock();
        if inner.closed {
            return;
        }
        inner.lines.push(line);
        drop(inner);
        self.grew.notify_all();
    }

    /// Marks the sequence complete and wakes waiting readers.
    pub fn close(&self) {
        self.lock().closed = true;
        self.grew.notify_all();
    }

    /// `true` once [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Lines appended so far.
    pub fn len(&self) -> usize {
        self.lock().lines.len()
    }

    /// `true` while no event has been appended.
    pub fn is_empty(&self) -> bool {
        self.lock().lines.is_empty()
    }

    /// Returns the lines from index `from` on, blocking up to `timeout`
    /// for growth when the log is still open and has nothing new. The
    /// boolean is `true` once the log is closed **and** everything has
    /// been returned.
    pub fn wait(&self, from: usize, timeout: std::time::Duration) -> (Vec<String>, bool) {
        let mut inner = self.lock();
        if inner.lines.len() <= from && !inner.closed {
            let (guard, _) = self
                .grew
                .wait_timeout(inner, timeout)
                .expect("event log poisoned");
            inner = guard;
        }
        let fresh = inner.lines.get(from..).unwrap_or_default().to_vec();
        let done = inner.closed && from + fresh.len() == inner.lines.len();
        (fresh, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn readers_replay_then_follow_then_observe_close() {
        let log = Arc::new(EventLog::new());
        log.push("a".to_owned());
        log.push("b".to_owned());
        let (lines, done) = log.wait(0, Duration::from_millis(1));
        assert_eq!(lines, vec!["a", "b"]);
        assert!(!done);

        // A reader at the tip blocks until the writer appends.
        let follower = Arc::clone(&log);
        let handle = std::thread::spawn(move || follower.wait(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        log.push("c".to_owned());
        let (lines, done) = handle.join().unwrap();
        assert_eq!(lines, vec!["c"]);
        assert!(!done);

        log.close();
        let (lines, done) = log.wait(3, Duration::from_millis(1));
        assert!(lines.is_empty());
        assert!(done);
        // Late subscribers still replay the full, identical sequence.
        let (lines, done) = log.wait(0, Duration::from_millis(1));
        assert_eq!(lines, vec!["a", "b", "c"]);
        assert!(done);
        // Stragglers after close are dropped.
        log.push("dropped".to_owned());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn wait_times_out_on_an_idle_open_log() {
        let log = EventLog::new();
        let (lines, done) = log.wait(0, Duration::from_millis(5));
        assert!(lines.is_empty());
        assert!(!done);
        assert!(!log.is_closed());
        assert!(log.is_empty());
    }
}
