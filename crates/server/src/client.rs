//! A tiny blocking HTTP client speaking the server's one-shot dialect, plus
//! field scanners for the server's own JSON responses. Powers the `transyt
//! submit` / `transyt status` client modes and the integration tests; no
//! external tooling (curl, jq) is needed to drive a server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Performs one HTTP request against `addr` (e.g. `127.0.0.1:7171`) and
/// returns `(status, body)`.
///
/// # Errors
///
/// A human-readable message on connection or protocol failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, String), String> {
    let (status, _, body) = request_with_headers(addr, method, path, body)?;
    Ok((status, body))
}

/// Like [`request`], but also returns the response headers as lowercased
/// `(name, value)` pairs — how clients read `Retry-After` off a 429.
///
/// # Errors
///
/// A human-readable message on connection or protocol failures.
#[allow(clippy::type_complexity)]
pub fn request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut reader = open(addr, method, path, body)?;
    let (status, headers) = read_head(&mut reader)?;
    // `Connection: close` semantics: the body runs to EOF.
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok((status, headers, body))
}

/// The value of `name` (case-insensitive) among headers returned by
/// [`request_with_headers`].
pub fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(header, _)| header.eq_ignore_ascii_case(name))
        .map(|(_, value)| value.as_str())
}

/// Opens a connection, writes the request and returns the unread response
/// stream.
fn open(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<BufReader<TcpStream>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let body = body.unwrap_or_default();
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("writing request: {e}"))?;
    writer
        .write_all(body)
        .and_then(|()| writer.flush())
        .map_err(|e| format!("writing request body: {e}"))?;
    Ok(BufReader::new(stream))
}

/// Reads the status line and headers off an open response stream.
fn read_head(reader: &mut BufReader<TcpStream>) -> Result<(u16, Vec<(String, String)>), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading response: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        let read = reader
            .read_line(&mut header)
            .map_err(|e| format!("reading headers: {e}"))?;
        if read == 0 || header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.trim_end().split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok((status, headers))
}

/// Subscribes to `GET /jobs/{id}/events` and calls `on_event` with each
/// decoded `data:` payload until the server closes the stream (the job
/// reached a terminal state) — so it blocks for as long as the job runs.
/// Returns all payloads in order.
///
/// # Errors
///
/// A human-readable message on connection or protocol failures, or when
/// the server answers anything but `200` with an event stream.
pub fn stream_events(
    addr: &str,
    id: u64,
    mut on_event: impl FnMut(&str),
) -> Result<Vec<String>, String> {
    let mut reader = open(addr, "GET", &format!("/jobs/{id}/events"), None)?;
    let (status, headers) = read_head(&mut reader)?;
    if status != 200 {
        let mut body = String::new();
        let _ = reader.read_to_string(&mut body);
        return Err(format!("event stream refused: {status} {}", body.trim()));
    }
    if header(&headers, "content-type") != Some("text/event-stream") {
        return Err("event stream refused: not an event stream".to_owned());
    }
    let mut events = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading events: {e}"))?;
        if read == 0 {
            return Ok(events);
        }
        if let Some(payload) = line.trim_end().strip_prefix("data: ") {
            on_event(payload);
            events.push(payload.to_owned());
        }
    }
}

/// Extracts the string value of a top-level `"name":"value"` field from a
/// JSON document *rendered by this workspace's emitter* (compact, no spaces
/// around separators). Handles the emitter's escapes; not a general parser.
pub fn json_str_field(document: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = document.find(&needle)? + needle.len();
    let mut value = String::new();
    let mut chars = document[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(value),
            '\\' => match chars.next()? {
                'n' => value.push('\n'),
                't' => value.push('\t'),
                'r' => value.push('\r'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&code, 16).ok()?;
                    value.push(char::from_u32(code)?);
                }
                escaped => value.push(escaped),
            },
            other => value.push(other),
        }
    }
}

/// Extracts an unsigned integer `"name":123` field from a JSON document
/// rendered by this workspace's emitter.
pub fn json_uint_field(document: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = document.find(&needle)? + needle.len();
    let digits: String = document[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Extracts a boolean `"name":true|false` field from a JSON document
/// rendered by this workspace's emitter.
pub fn json_bool_field(document: &str, name: &str) -> Option<bool> {
    let needle = format!("\"{name}\":");
    let start = document.find(&needle)? + needle.len();
    let rest = &document[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scanners_read_the_emitter_dialect() {
        let doc = r#"{"hash":"00ff","name":"a \"b\"\nc","job":17,"nested":{"job":99}}"#;
        assert_eq!(json_str_field(doc, "hash").as_deref(), Some("00ff"));
        assert_eq!(json_str_field(doc, "name").as_deref(), Some("a \"b\"\nc"));
        assert_eq!(json_str_field(doc, "missing"), None);
        assert_eq!(json_uint_field(doc, "job"), Some(17));
        assert_eq!(json_uint_field(doc, "hash"), None);
        let doc = r#"{"recovered":true,"evicted":false}"#;
        assert_eq!(json_bool_field(doc, "recovered"), Some(true));
        assert_eq!(json_bool_field(doc, "evicted"), Some(false));
        assert_eq!(json_bool_field(doc, "missing"), None);
    }
}
