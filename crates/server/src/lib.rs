//! `transyt-server` — the long-running verification server behind `transyt
//! serve`.
//!
//! The one-shot CLI parses a model, runs one exploration and exits; this
//! crate turns the same `commands` layer into a service: clients upload
//! textual `.stg` / `.tts` models once (parsed and validated on upload,
//! cached by content hash), submit `verify` / `reach` / `zones` jobs with
//! the same options the CLI takes, poll job status, cancel jobs mid-flight,
//! and fetch results — including replayable witness traces — as JSON
//! documents **byte-identical** to the CLI's `--json` output.
//!
//! The moving parts:
//!
//! * [`http`] — a hand-rolled, dependency-free HTTP/1.1 layer over
//!   [`std::net::TcpListener`]: one request per connection, JSON in and out.
//! * [`ServerState`] — the model cache, the job table and a FIFO queue; a
//!   bounded pool of [`ServerConfig::workers`] threads drains the queue, so
//!   N in-flight verifications share the machine without oversubscribing
//!   the explorer's own thread pool.
//! * [`Backend`] — the seam to the actual tool: the `transyt` binary plugs
//!   in the CLI's parser and command layer; tests plug in stubs. Jobs
//!   receive an [`explore::CancelToken`] that `POST /jobs/{id}/cancel`
//!   fires, so a cancelled job stops its exploration at the next batch
//!   boundary instead of running to its limit.
//! * [`Server`] — the accept loop and graceful shutdown: SIGTERM / ctrl-c
//!   (or `POST /shutdown`) stop the listener, cancel queued jobs, let
//!   running jobs finish and join the pool.
//! * [`client`] — a tiny blocking HTTP client for the `transyt submit` /
//!   `transyt status` modes and the integration tests.
//!
//! The HTTP API is documented in `docs/SERVER.md`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod http;
mod server;
mod state;
mod sys;

pub use explore::CancelToken;
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{
    content_hash, Backend, CachedModel, JobOutput, JobRequest, JobStatus, JobView, ModelInfo,
    ServerState,
};
