//! `transyt-server` — the long-running verification server behind `transyt
//! serve`.
//!
//! The one-shot CLI parses a model, runs one task and exits; this crate
//! turns the shared [`transyt_session::Session`] into a service: clients
//! upload textual `.stg` / `.tts` models once (parsed and validated on
//! upload, interned by content hash), submit `verify` / `reach` / `zones`
//! jobs with the same options the CLI takes, poll job status, cancel jobs
//! mid-flight, and fetch results — including replayable witness traces — as
//! JSON documents **byte-identical** to the CLI's `--json` output.
//!
//! The moving parts:
//!
//! * [`http`] — a hand-rolled, dependency-free HTTP/1.1 layer over
//!   [`std::net::TcpListener`]: one request per connection, JSON in and out.
//! * [`ServerState`] — the job table, an admission-controlled multi-class
//!   queue (the [`transyt_gate`] crate: bounded depth with 429 +
//!   `Retry-After` overflow, strict priority with aging) drained by a
//!   bounded pool of [`ServerConfig::workers`] threads, and the result
//!   store with LRU + TTL eviction ([`ServerConfig::keep_results`] /
//!   [`ServerConfig::result_ttl`]); `GET /jobs` reports evicted ids.
//! * [`events`] — per-job progress event logs: `GET /jobs/{id}/events`
//!   streams queue-position and exploration-progress events (a
//!   deterministic, thread-count-invariant sequence) as server-sent
//!   events until the job reaches a terminal state.
//! * Resource budgets — `max-configs=` / `max-zone-bytes=` parameters bound
//!   a job's exploration; a breach surfaces as status `budget_exceeded`
//!   (with the `(resource, used, limit)` triple) and a 409-with-reason on
//!   the result endpoint.
//! * [`transyt_session::Session`] — models and runs. Query strings lower
//!   into [`transyt_session::TaskSpec`]s through the same
//!   `TaskSpec::parse` the CLI flags lower through, and jobs are scheduled
//!   by their canonical [`transyt_session::TaskKey`]: identical (model,
//!   options) submissions are **batched into one run** — a worker claiming
//!   a duplicate of an in-flight job attaches to that run and both jobs
//!   end up holding the *same* result document.
//! * Cancellation and deadlines — `POST /jobs/{id}/cancel` fires the job's
//!   [`CancelToken`]; a `timeout=SECS` parameter arms a deadline whose
//!   expiry surfaces as status `timed_out` and a 409-with-reason on the
//!   result endpoint.
//! * [`Server`] — the accept loop and graceful shutdown: SIGTERM / ctrl-c
//!   (or `POST /shutdown`) stop the listener, cancel queued jobs, let
//!   running jobs finish and join the pool.
//! * [`client`] — a tiny blocking HTTP client for the `transyt submit` /
//!   `transyt status` modes and the integration tests.
//!
//! The HTTP API is documented in `docs/SERVER.md`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod events;
pub mod http;
mod server;
mod state;
mod sys;

pub use explore::CancelToken;
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{
    content_hash, CachedModel, GateStats, JobStatus, JobView, PersistenceInfo, ResultStoreConfig,
    ServerState, SubmitError,
};
pub use transyt_gate::{GateConfig, Priority};
