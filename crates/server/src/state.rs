//! The server's shared state: the content-addressed model cache, the job
//! table, and the FIFO queue the worker pool drains.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use explore::CancelToken;

/// What the embedding binary supplies: how to validate an uploaded model and
/// how to run a job against it. The `transyt` binary wires in the CLI's own
/// parser and `commands` layer, so server jobs produce byte-identical
/// documents to one-shot CLI runs; tests can plug in stubs.
pub trait Backend: Send + Sync + 'static {
    /// Parses and validates an uploaded model text.
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not a valid model.
    fn validate(&self, text: &str) -> Result<ModelInfo, String>;

    /// Runs one job to completion. Implementations must poll `cancel`
    /// cooperatively (the CLI backend threads it into every exploration) so
    /// a cancelled job stops early instead of running to its limit.
    ///
    /// # Errors
    ///
    /// A human-readable message when the job cannot produce a document
    /// (bad options, expansion limits, …).
    fn run(
        &self,
        model_text: &str,
        request: &JobRequest,
        cancel: &CancelToken,
    ) -> Result<JobOutput, String>;
}

/// Metadata of a successfully validated model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// The model's declared name (from the `stg` / `tts` header).
    pub name: String,
    /// The model kind: `"stg"` or `"tts"`.
    pub kind: String,
}

/// One verification job as submitted over the wire. Field defaults mirror
/// the CLI's option defaults exactly, so an option left out of a submission
/// means the same thing as a flag left off the command line.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The subcommand to run: `verify`, `reach` or `zones`.
    pub command: String,
    /// Content hash of the cached model to run against.
    pub model_hash: String,
    /// Worker threads of the job's own exploration (`--threads`).
    pub threads: usize,
    /// Zone subsumption (`--subsumption`).
    pub subsumption: bool,
    /// Include a witness / counterexample trace (`--trace`).
    pub trace: bool,
    /// Exploration size limit (`--limit`).
    pub limit: Option<usize>,
    /// Target label for `reach` (`--to`).
    pub to_label: Option<String>,
}

/// What a finished job produced.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The JSON document, rendered exactly as the CLI's `--json` file
    /// (including the trailing newline).
    pub document: String,
    /// The human-readable text the CLI would have printed.
    pub text: String,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished with a document.
    Done,
    /// Finished with an error message.
    Failed,
    /// Cancelled before or while running.
    Cancelled,
}

impl JobStatus {
    /// Returns `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        };
        write!(f, "{name}")
    }
}

/// A cached model: the raw text plus validation metadata, addressed by the
/// FNV-1a hash of the text so re-uploads are free and submissions can name
/// models without re-sending them.
#[derive(Debug, Clone)]
pub struct CachedModel {
    /// Content hash (16 hex digits).
    pub hash: String,
    /// The model's declared name.
    pub name: String,
    /// The model kind: `"stg"` or `"tts"`.
    pub kind: String,
    /// The raw model text as uploaded.
    pub text: String,
}

/// A job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job id.
    pub id: usize,
    /// The request as submitted.
    pub request: JobRequest,
    /// The name of the model the job runs against.
    pub model_name: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The output, once `status` is `Done` (or `Cancelled` after producing
    /// a partial document).
    pub output: Option<JobOutput>,
    /// The error message, once `status` is `Failed`.
    pub error: Option<String>,
}

struct Job {
    request: JobRequest,
    model_name: String,
    status: JobStatus,
    output: Option<JobOutput>,
    error: Option<String>,
    cancel: CancelToken,
}

struct Inner {
    models: Vec<CachedModel>,
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    shutdown: bool,
}

/// The shared state behind the HTTP front end and the worker pool.
pub struct ServerState {
    backend: Box<dyn Backend>,
    inner: Mutex<Inner>,
    work: Condvar,
}

/// Content hash of a model text: 64-bit FNV-1a, printed as 16 hex digits.
/// Not cryptographic — it keys a cache of files the operator controls.
pub fn content_hash(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

impl ServerState {
    /// Creates empty state around a backend.
    pub fn new(backend: Box<dyn Backend>) -> ServerState {
        ServerState {
            backend,
            inner: Mutex::new(Inner {
                models: Vec::new(),
                jobs: Vec::new(),
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("server state poisoned")
    }

    /// Validates and caches a model text. Returns the cache entry and
    /// whether it was already cached.
    ///
    /// # Errors
    ///
    /// The backend's validation message for unparseable texts.
    pub fn upload_model(&self, text: &str) -> Result<(CachedModel, bool), String> {
        let info = self.backend.validate(text)?;
        let hash = content_hash(text);
        let mut inner = self.lock();
        if let Some(existing) = inner.models.iter().find(|m| m.hash == hash) {
            return Ok((existing.clone(), true));
        }
        let model = CachedModel {
            hash,
            name: info.name,
            kind: info.kind,
            text: text.to_owned(),
        };
        inner.models.push(model.clone());
        Ok((model, false))
    }

    /// The cached models, oldest first.
    pub fn models(&self) -> Vec<CachedModel> {
        self.lock().models.clone()
    }

    /// Looks a cached model up by content hash.
    pub fn model(&self, hash: &str) -> Option<CachedModel> {
        self.lock().models.iter().find(|m| m.hash == hash).cloned()
    }

    /// Enqueues a job. Returns its id, or an error when the model hash is
    /// unknown, the command is not one of `verify`/`reach`/`zones`, or the
    /// server is shutting down.
    ///
    /// # Errors
    ///
    /// A human-readable message; nothing is enqueued.
    pub fn submit(&self, request: JobRequest) -> Result<usize, String> {
        if !matches!(request.command.as_str(), "verify" | "reach" | "zones") {
            return Err(format!(
                "unknown command `{}` (use verify, reach or zones)",
                request.command
            ));
        }
        let mut inner = self.lock();
        if inner.shutdown {
            return Err("server is shutting down".to_owned());
        }
        let model_name = inner
            .models
            .iter()
            .find(|m| m.hash == request.model_hash)
            .map(|m| m.name.clone())
            .ok_or_else(|| format!("unknown model hash `{}`", request.model_hash))?;
        let id = inner.jobs.len();
        inner.jobs.push(Job {
            request,
            model_name,
            status: JobStatus::Queued,
            output: None,
            error: None,
            cancel: CancelToken::new(),
        });
        inner.queue.push_back(id);
        drop(inner);
        self.work.notify_one();
        Ok(id)
    }

    /// The externally visible state of one job.
    pub fn job(&self, id: usize) -> Option<JobView> {
        let inner = self.lock();
        inner.jobs.get(id).map(|job| JobView {
            id,
            request: job.request.clone(),
            model_name: job.model_name.clone(),
            status: job.status,
            output: job.output.clone(),
            error: job.error.clone(),
        })
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> Vec<JobView> {
        let inner = self.lock();
        (0..inner.jobs.len())
            .map(|id| {
                let job = &inner.jobs[id];
                JobView {
                    id,
                    request: job.request.clone(),
                    model_name: job.model_name.clone(),
                    status: job.status,
                    output: job.output.clone(),
                    error: job.error.clone(),
                }
            })
            .collect()
    }

    /// Cancels a job: a queued job never starts, a running job's cancel
    /// token fires so its exploration stops at the next batch boundary.
    /// Returns the status after the cancellation request, or `None` for
    /// unknown ids.
    pub fn cancel(&self, id: usize) -> Option<JobStatus> {
        let mut inner = self.lock();
        let job = inner.jobs.get_mut(id)?;
        match job.status {
            JobStatus::Queued => {
                job.status = JobStatus::Cancelled;
                job.cancel.cancel();
            }
            JobStatus::Running => {
                // The worker observes the fired token when the command
                // returns and records the terminal `Cancelled` state.
                job.cancel.cancel();
            }
            _ => {}
        }
        Some(inner.jobs[id].status)
    }

    /// Asks the worker pool (and the accept loop polling
    /// [`is_shutdown`](Self::is_shutdown)) to stop. Running jobs finish
    /// (or observe their cancel token); queued jobs are cancelled.
    pub fn shutdown(&self) {
        let mut inner = self.lock();
        inner.shutdown = true;
        while let Some(id) = inner.queue.pop_front() {
            let job = &mut inner.jobs[id];
            if job.status == JobStatus::Queued {
                job.status = JobStatus::Cancelled;
            }
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Returns `true` once [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Counts of (queued, running) jobs.
    pub fn load(&self) -> (usize, usize) {
        let inner = self.lock();
        let queued = inner
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Queued)
            .count();
        let running = inner
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Running)
            .count();
        (queued, running)
    }

    /// One worker's loop: claim jobs off the queue until shutdown. Run by
    /// every thread of the pool.
    pub fn worker_loop(&self) {
        loop {
            let (id, request, model_text, cancel) = {
                let mut inner = self.lock();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    // Skip ids whose job was cancelled while queued.
                    match inner.queue.pop_front() {
                        Some(id) if inner.jobs[id].status == JobStatus::Queued => {
                            inner.jobs[id].status = JobStatus::Running;
                            let job = &inner.jobs[id];
                            let text = inner
                                .models
                                .iter()
                                .find(|m| m.hash == job.request.model_hash)
                                .map(|m| m.text.clone())
                                .expect("submitted jobs reference cached models");
                            break (id, job.request.clone(), text, job.cancel.clone());
                        }
                        Some(_) => continue,
                        None => inner = self.work.wait(inner).expect("server state poisoned"),
                    }
                }
            };

            // A panicking backend must not take the worker (and with it the
            // whole queue) down; it fails the one job instead.
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.backend.run(&model_text, &request, &cancel)
            }))
            .unwrap_or_else(|_| Err("job panicked".to_owned()));

            let mut inner = self.lock();
            let job = &mut inner.jobs[id];
            if cancel.is_cancelled() {
                // Cancel wins any race with completion: a fired token means
                // the client asked for the job to stop, and a run the token
                // interrupted returns a *partial* document (e.g. a zones run
                // with `"cancelled":true`) that must not be served as the
                // job's result. Whatever output exists stays fetchable
                // through the /text endpoint.
                job.status = JobStatus::Cancelled;
                if let Ok(output) = result {
                    job.output = Some(output);
                }
            } else {
                match result {
                    Ok(output) => {
                        job.status = JobStatus::Done;
                        job.output = Some(output);
                    }
                    Err(message) => {
                        job.status = JobStatus::Failed;
                        job.error = Some(message);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A backend that accepts any text and echoes it, cancellably.
    struct Echo;

    impl Backend for Echo {
        fn validate(&self, text: &str) -> Result<ModelInfo, String> {
            if text.is_empty() {
                return Err("empty model".to_owned());
            }
            Ok(ModelInfo {
                name: text.lines().next().unwrap_or("").to_owned(),
                kind: "stub".to_owned(),
            })
        }

        fn run(
            &self,
            model_text: &str,
            request: &JobRequest,
            cancel: &CancelToken,
        ) -> Result<JobOutput, String> {
            if cancel.is_cancelled() {
                return Err("cancelled".to_owned());
            }
            Ok(JobOutput {
                document: format!("{{\"echo\":\"{}\"}}\n", request.command),
                text: model_text.to_owned(),
            })
        }
    }

    fn request(hash: &str) -> JobRequest {
        JobRequest {
            command: "verify".to_owned(),
            model_hash: hash.to_owned(),
            threads: 1,
            subsumption: true,
            trace: false,
            limit: None,
            to_label: None,
        }
    }

    #[test]
    fn content_hash_is_stable_and_distinguishes() {
        assert_eq!(content_hash(""), "cbf29ce484222325");
        assert_ne!(content_hash("a"), content_hash("b"));
        assert_eq!(content_hash("model"), content_hash("model"));
    }

    #[test]
    fn upload_deduplicates_by_content() {
        let state = ServerState::new(Box::new(Echo));
        let (first, cached) = state.upload_model("stub one").unwrap();
        assert!(!cached);
        let (second, cached) = state.upload_model("stub one").unwrap();
        assert!(cached);
        assert_eq!(first.hash, second.hash);
        assert_eq!(state.models().len(), 1);
        assert!(state.upload_model("").is_err());
        assert!(state.model(&first.hash).is_some());
        assert!(state.model("bogus").is_none());
    }

    #[test]
    fn jobs_flow_queued_running_done() {
        let state = ServerState::new(Box::new(Echo));
        let (model, _) = state.upload_model("stub").unwrap();
        assert!(state.submit(request("missing")).is_err());
        let id = state.submit(request(&model.hash)).unwrap();
        assert_eq!(state.job(id).unwrap().status, JobStatus::Queued);
        // Drain the queue on this thread: shutdown pre-arms the exit, so the
        // worker loop processes nothing after the queue empties.
        let copy = state.submit(request(&model.hash)).unwrap();
        state.cancel(copy);
        std::thread::scope(|scope| {
            scope.spawn(|| state.worker_loop());
            while !state.job(id).unwrap().status.is_terminal() {
                std::thread::yield_now();
            }
            state.shutdown();
        });
        let done = state.job(id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        assert_eq!(done.output.unwrap().document, "{\"echo\":\"verify\"}\n");
        // The job cancelled while queued never ran.
        assert_eq!(state.job(copy).unwrap().status, JobStatus::Cancelled);
        assert!(state.job(copy).unwrap().output.is_none());
        // Unknown commands are rejected outright.
        let mut bad = request(&model.hash);
        bad.command = "table1".to_owned();
        assert!(state.submit(bad).is_err());
    }

    #[test]
    fn shutdown_cancels_queued_jobs_and_stops_workers() {
        let state = ServerState::new(Box::new(Echo));
        let (model, _) = state.upload_model("stub").unwrap();
        let id = state.submit(request(&model.hash)).unwrap();
        state.shutdown();
        assert!(state.is_shutdown());
        assert_eq!(state.job(id).unwrap().status, JobStatus::Cancelled);
        // Submissions after shutdown are refused.
        assert!(state.submit(request(&model.hash)).is_err());
        // A worker started after shutdown returns immediately.
        state.worker_loop();
    }
}
