//! The server's shared state: the job table, the admission-controlled
//! multi-class queue ([`transyt_gate::Gate`]) the worker pool drains, and
//! the result store with LRU + TTL eviction.
//!
//! Models and runs themselves live in the embedded
//! [`transyt_session::Session`]: the server schedules [`TaskSpec`]s by
//! their canonical [`TaskKey`], so queued duplicate jobs attach to the
//! in-flight run (or hit the session's memo) and share one result document.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use transyt_gate::{retry_after, Gate, GateConfig, LatencyRing, Priority};
use transyt_session::{
    CancelToken, Completion, Outcome, ProgressEvent, ProgressSink, RestoredOutcome, RunControl,
    Session, StoreHook, TaskKey, TaskResult, TaskSpec,
};
use transyt_store::{
    DiskStats, JournalStats, Record, RecoveredJob, RecoveredStatus, Recovery, Store,
};

use crate::events::{render_progress, EventLog};

pub use transyt_session::CachedModel;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished with a document.
    Done,
    /// Finished with an error message.
    Failed,
    /// Cancelled before or while running.
    Cancelled,
    /// The job's deadline expired before the run finished.
    TimedOut,
    /// The job's resource budget (`max-configs` / `max-zone-bytes`) was
    /// breached and the run aborted deterministically.
    BudgetExceeded,
}

impl JobStatus {
    /// Returns `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed_out",
            JobStatus::BudgetExceeded => "budget_exceeded",
        };
        write!(f, "{name}")
    }
}

/// A job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job id.
    pub id: usize,
    /// The task as submitted.
    pub spec: TaskSpec,
    /// The task's canonical key.
    pub key: TaskKey,
    /// The name of the model the job runs against.
    pub model_name: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The shared result, once the job finished (also present for
    /// `Cancelled` / `TimedOut` jobs that produced a partial document —
    /// fetchable through `/text`, but not served as `/result`).
    pub result: Option<Arc<TaskResult>>,
    /// The error message, once `status` is `Failed`.
    pub error: Option<String>,
    /// `true` once the result store evicted this job's document (LRU cap or
    /// TTL).
    pub evicted: bool,
    /// Configurations explored so far (live progress for running jobs).
    pub explored: usize,
    /// `true` when the job was replayed from the write-ahead journal after
    /// a restart (completed jobs answer from the on-disk store; interrupted
    /// ones were re-enqueued).
    pub recovered: bool,
    /// The job's scheduling class.
    pub priority: Priority,
    /// `(resource, used, limit)` of a budget breach, once `status` is
    /// `BudgetExceeded`.
    pub breach: Option<(String, usize, usize)>,
}

struct Job {
    spec: TaskSpec,
    key: TaskKey,
    model_name: String,
    status: JobStatus,
    result: Option<Arc<TaskResult>>,
    error: Option<String>,
    evicted: bool,
    cancel: CancelToken,
    explored: Arc<AtomicUsize>,
    completed_at: Option<Instant>,
    recovered: bool,
    priority: Priority,
    breach: Option<(String, usize, usize)>,
    events: Arc<EventLog>,
}

impl Job {
    fn new(spec: TaskSpec, model_name: String, priority: Priority) -> Job {
        Job {
            key: spec.key(),
            spec,
            model_name,
            status: JobStatus::Queued,
            result: None,
            error: None,
            evicted: false,
            cancel: CancelToken::new(),
            explored: Arc::new(AtomicUsize::new(0)),
            completed_at: None,
            recovered: false,
            priority,
            breach: None,
            events: Arc::new(EventLog::new()),
        }
    }

    fn view(&self, id: usize) -> JobView {
        JobView {
            id,
            spec: self.spec.clone(),
            key: self.key.clone(),
            model_name: self.model_name.clone(),
            status: self.status,
            result: self.result.clone(),
            error: self.error.clone(),
            evicted: self.evicted,
            explored: self.explored.load(Ordering::Relaxed),
            recovered: self.recovered,
            priority: self.priority,
            breach: self.breach.clone(),
        }
    }

    /// Appends the terminal marker and seals the job's event stream.
    fn close_events(&self) {
        self.events.push(format!(
            "{{\"type\":\"terminal\",\"status\":\"{}\"}}",
            self.status
        ));
        self.events.close();
    }
}

struct Inner {
    jobs: Vec<Job>,
    queue: Gate,
    /// Recently observed run durations, feeding `Retry-After` estimates.
    recent: LatencyRing,
    /// Job ids holding a result, least recently accessed first.
    access: Vec<usize>,
    shutdown: bool,
}

/// Eviction policy of the result store.
#[derive(Debug, Clone, Copy)]
pub struct ResultStoreConfig {
    /// Keep at most this many result documents; beyond it the least
    /// recently fetched is evicted (`serve --keep-results N`).
    pub keep_results: usize,
    /// Evict results older than this, regardless of the cap
    /// (`serve --result-ttl SECS`; `None` = no TTL).
    pub result_ttl: Option<Duration>,
}

impl Default for ResultStoreConfig {
    fn default() -> Self {
        ResultStoreConfig {
            keep_results: 256,
            result_ttl: None,
        }
    }
}

/// Persistence counters of a durable server, served through `/healthz`.
#[derive(Debug, Clone)]
pub struct PersistenceInfo {
    /// The data dir backing the server.
    pub data_dir: String,
    /// Write-ahead journal size counters.
    pub journal: JournalStats,
    /// On-disk model / result counts and byte totals.
    pub disk: DiskStats,
}

/// Why [`ServerState::submit`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission gate is at depth; retry after the estimate.
    Busy {
        /// The load-derived `Retry-After` estimate.
        retry_after: Duration,
        /// Jobs waiting when the submission was refused.
        queued: usize,
    },
    /// Any other rejection (unknown model, shutdown, bad spec).
    Refused(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy {
                retry_after,
                queued,
            } => write!(
                f,
                "queue full ({queued} waiting); retry after {}s",
                retry_after.as_secs()
            ),
            SubmitError::Refused(message) => f.write_str(message),
        }
    }
}

/// Queue and latency counters, served through `/healthz`.
#[derive(Debug, Clone, Copy)]
pub struct GateStats {
    /// Admission depth (max waiting jobs).
    pub depth: usize,
    /// Jobs waiting, total and per class (interactive, batch, background).
    pub queued: usize,
    /// Waiting interactive jobs.
    pub interactive: usize,
    /// Waiting batch jobs.
    pub batch: usize,
    /// Waiting background jobs.
    pub background: usize,
    /// Mean of the recently observed run durations, if any finished yet.
    pub avg_run: Option<Duration>,
    /// Run-duration samples held.
    pub samples: usize,
}

/// The shared state behind the HTTP front end and the worker pool.
pub struct ServerState {
    session: Arc<Session>,
    store: ResultStoreConfig,
    gate: GateConfig,
    workers: usize,
    persist: Option<Arc<Store>>,
    inner: Mutex<Inner>,
    work: Condvar,
}

impl ServerState {
    /// Creates empty state around a session. `workers` is the size of the
    /// pool that will drain the queue (it scales the `Retry-After`
    /// estimates handed to rejected clients).
    pub fn new(
        session: Arc<Session>,
        store: ResultStoreConfig,
        gate: GateConfig,
        workers: usize,
    ) -> ServerState {
        ServerState {
            session,
            store,
            gate,
            workers: workers.max(1),
            persist: None,
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                queue: Gate::new(gate),
                recent: LatencyRing::default(),
                access: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Creates durable state over an opened [`Store`], replaying `recovery`
    /// (the store's own [`Store::open`] result):
    ///
    /// * stored models are re-interned into the session (then the session's
    ///   persistence hook is installed, so new models and results keep
    ///   flowing to disk);
    /// * completed jobs reload their documents from the store —
    ///   byte-identical to what was served before the crash;
    /// * jobs that were queued or running at the kill are **re-enqueued**
    ///   (the stack is deterministic, so the re-run reproduces the same
    ///   document);
    /// * failed / cancelled / timed-out jobs keep their terminal status.
    ///
    /// Ends with the startup GC (the in-memory TTL + LRU rules applied to
    /// the recovered result set, plus an orphan-file sweep) and a journal
    /// compaction.
    pub fn recovered(
        session: Arc<Session>,
        store: ResultStoreConfig,
        gate: GateConfig,
        workers: usize,
        persist: Arc<Store>,
        recovery: &Recovery,
    ) -> ServerState {
        for hash in &recovery.models {
            match persist.model_text(hash) {
                Some(text) => {
                    if let Err(e) = session.add_model(&text) {
                        eprintln!("transyt-server: stored model {hash} no longer parses: {e}");
                    }
                }
                None => eprintln!("transyt-server: stored model {hash} is missing or corrupt"),
            }
        }
        // Installed only after the replay: re-interning stored models must
        // not re-journal them.
        session.set_store_hook(Arc::clone(&persist) as Arc<dyn StoreHook>);

        let now = Instant::now();
        let mut jobs: Vec<Job> = Vec::with_capacity(recovery.jobs.len());
        let mut queue = Gate::new(gate);
        for recovered in &recovery.jobs {
            let id = jobs.len();
            let (spec, spec_error) = match TaskSpec::parse(&recovered.command, &recovered.params) {
                Ok(spec) => (spec.for_model(&recovered.model), None),
                // A journal from a future/older version: keep the job
                // visible (ids stay dense) but terminal.
                Err(e) => (TaskSpec::verify(&recovered.model), Some(e.to_string())),
            };
            let model_name = session
                .model(&recovered.model)
                .map(|m| m.name)
                .unwrap_or_else(|| recovered.model.clone());
            // A pre-priority journal has no class recorded: the default
            // applies, exactly as an unprioritized submission would get.
            let priority = Priority::parse(&recovered.prio).unwrap_or_default();
            let mut job = Job {
                evicted: recovered.evicted,
                recovered: true,
                ..Job::new(spec, model_name, priority)
            };
            match (&recovered.status, spec_error) {
                (_, Some(error)) => {
                    job.status = JobStatus::Failed;
                    job.error = Some(format!("unrecoverable journaled spec: {error}"));
                }
                (RecoveredStatus::Queued | RecoveredStatus::Running, None) => {
                    // Re-admitted in its journaled class, bypassing the
                    // depth check: the job was admitted before the restart.
                    queue.enqueue_unchecked(id, priority);
                }
                (RecoveredStatus::Done { result }, None) => {
                    job.status = JobStatus::Done;
                    if !job.evicted {
                        match persist.result(&job.key) {
                            Some(doc) => {
                                // Age the entry by the result file's mtime so
                                // the TTL keeps counting across the restart.
                                let age = persist.result_age(result).unwrap_or_default();
                                job.completed_at = Some(now.checked_sub(age).unwrap_or(now));
                                job.result = Some(Arc::new(TaskResult {
                                    outcome: Ok(Outcome::Restored(RestoredOutcome {
                                        model: job.model_name.clone(),
                                        command: job.spec.command,
                                    })),
                                    text: doc.text,
                                    document: doc.document,
                                }));
                            }
                            None => job.evicted = true,
                        }
                    }
                }
                (RecoveredStatus::Failed, None) => {
                    job.status = JobStatus::Failed;
                    job.error = recovered.error.clone();
                }
                (RecoveredStatus::Cancelled, None) => job.status = JobStatus::Cancelled,
                (RecoveredStatus::TimedOut, None) => job.status = JobStatus::TimedOut,
                (
                    RecoveredStatus::BudgetExceeded {
                        resource,
                        used,
                        limit,
                    },
                    None,
                ) => {
                    job.status = JobStatus::BudgetExceeded;
                    job.breach = Some((resource.clone(), *used, *limit));
                }
            }
            if job.status.is_terminal() {
                // A terminal recovered job's event stream is already over:
                // subscribers get the terminal marker immediately.
                job.close_events();
            }
            jobs.push(job);
        }

        // LRU order of the recovered results: oldest completion first.
        let mut access: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| job.result.is_some())
            .map(|(id, _)| id)
            .collect();
        access.sort_by_key(|&id| jobs[id].completed_at.unwrap_or(now));

        let state = ServerState {
            session,
            store,
            gate,
            workers: workers.max(1),
            persist: Some(persist),
            inner: Mutex::new(Inner {
                jobs,
                queue,
                recent: LatencyRing::default(),
                access,
                shutdown: false,
            }),
            work: Condvar::new(),
        };

        // Startup GC: the same TTL + LRU rules the live server applies,
        // now also dropping the disk copies; then sweep result files no
        // job references and compact the replayed journal.
        {
            let mut inner = state.lock();
            state.evict_expired(&mut inner);
            while inner.access.len() > state.store.keep_results.max(1) {
                let oldest = inner.access[0];
                state.evict_one(&mut inner, oldest);
            }
            if let Some(persist) = &state.persist {
                let referenced: HashSet<String> = inner
                    .jobs
                    .iter()
                    .filter(|job| job.status == JobStatus::Done && !job.evicted)
                    .map(|job| job.key.fingerprint())
                    .collect();
                persist.remove_unreferenced(&referenced);
                if let Err(e) = persist.compact(&state.snapshot(&inner)) {
                    eprintln!("transyt-server: journal compaction failed: {e}");
                }
            }
        }
        state
    }

    /// Persistence counters (`None` for an ephemeral server).
    pub fn persistence(&self) -> Option<PersistenceInfo> {
        self.persist.as_ref().map(|store| PersistenceInfo {
            data_dir: store.root().display().to_string(),
            journal: store.journal_stats(),
            disk: store.disk_stats(),
        })
    }

    /// Appends one journal record, best effort: a full disk degrades
    /// durability, never availability.
    fn journal(&self, record: &Record) {
        if let Some(store) = &self.persist {
            if let Err(e) = store.append(record) {
                eprintln!("transyt-server: journal write failed: {e}");
            }
        }
    }

    /// The compacted journal image of the current state.
    fn snapshot(&self, inner: &Inner) -> Vec<Record> {
        let models: Vec<String> = self
            .session
            .models()
            .iter()
            .map(|m| m.hash.clone())
            .collect();
        let jobs: Vec<RecoveredJob> = inner
            .jobs
            .iter()
            .enumerate()
            .map(|(id, job)| RecoveredJob {
                id,
                command: job.spec.command.name().to_owned(),
                model: job.spec.model.clone(),
                params: job.spec.to_params(),
                prio: job.priority.name().to_owned(),
                status: match job.status {
                    JobStatus::Queued => RecoveredStatus::Queued,
                    JobStatus::Running => RecoveredStatus::Running,
                    JobStatus::Done => RecoveredStatus::Done {
                        result: job.key.fingerprint(),
                    },
                    JobStatus::Failed => RecoveredStatus::Failed,
                    JobStatus::Cancelled => RecoveredStatus::Cancelled,
                    JobStatus::TimedOut => RecoveredStatus::TimedOut,
                    JobStatus::BudgetExceeded => {
                        let (resource, used, limit) =
                            job.breach.clone().unwrap_or(("configs".to_owned(), 0, 0));
                        RecoveredStatus::BudgetExceeded {
                            resource,
                            used,
                            limit,
                        }
                    }
                },
                error: job.error.clone(),
                evicted: job.evicted,
            })
            .collect();
        Store::compaction_records(&models, &jobs)
    }

    /// Rewrites the journal to the compacted image once its size trigger
    /// fires. Holds the state lock across the rewrite so no job transition
    /// can slip between snapshot and replacement (a concurrently interned
    /// model could — its record lands in the replaced file and is lost —
    /// but recovery re-adopts model files the journal does not mention).
    fn maybe_compact(&self) {
        let Some(store) = &self.persist else {
            return;
        };
        if !store.should_compact() {
            return;
        }
        let inner = self.lock();
        if let Err(e) = store.compact(&self.snapshot(&inner)) {
            eprintln!("transyt-server: journal compaction failed: {e}");
        }
    }

    /// The embedded session (models, dedup stats) — also the seam the tests
    /// use to assert that duplicate submissions shared one run.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("server state poisoned")
    }

    /// Validates and interns a model text. Returns the cache entry and
    /// whether it was already interned.
    ///
    /// # Errors
    ///
    /// The parse error message for unparseable texts.
    pub fn upload_model(&self, text: &str) -> Result<(CachedModel, bool), String> {
        self.session.add_model(text).map_err(|e| e.to_string())
    }

    /// The interned models, oldest first.
    pub fn models(&self) -> Vec<CachedModel> {
        self.session.models()
    }

    /// Looks an interned model up by content hash.
    pub fn model(&self, hash: &str) -> Option<CachedModel> {
        self.session.model(hash)
    }

    /// Enqueues a job in `priority`'s class. Returns its id, or a
    /// [`SubmitError`]: `Busy` (with a `Retry-After` estimate) when the
    /// admission gate is at depth, `Refused` when the model hash is
    /// unknown or the server is shutting down.
    ///
    /// # Errors
    ///
    /// Nothing is enqueued or journaled on any error.
    pub fn submit(&self, spec: TaskSpec, priority: Priority) -> Result<usize, SubmitError> {
        let model_name = self
            .session
            .model(&spec.model)
            .map(|m| m.name)
            .ok_or_else(|| SubmitError::Refused(format!("unknown model hash `{}`", spec.model)))?;
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(SubmitError::Refused("server is shutting down".to_owned()));
        }
        // Admission check before anything is allocated: an over-depth
        // submission costs the server one queue-length comparison and the
        // client gets told when capacity is likely to be back.
        let queued = inner.queue.len();
        if queued >= self.gate.depth.max(1) {
            let running = inner
                .jobs
                .iter()
                .filter(|j| j.status == JobStatus::Running)
                .count();
            return Err(SubmitError::Busy {
                retry_after: retry_after(&inner.recent, queued, running, self.workers),
                queued,
            });
        }
        let id = inner.jobs.len();
        // Journaled under the lock that assigned the id: replay requires
        // `job` records in dense id order, so two racing submissions must
        // not interleave their appends. The record is also durable before
        // the id is revealed to the client.
        self.journal(&Record::Job {
            id,
            command: spec.command.name().to_owned(),
            model: spec.model.clone(),
            params: spec.to_params(),
            prio: priority.name().to_owned(),
        });
        inner.jobs.push(Job::new(spec, model_name, priority));
        let admitted = inner.queue.enqueue(id, priority);
        debug_assert!(admitted, "depth was checked above");
        drop(inner);
        self.work.notify_one();
        self.maybe_compact();
        Ok(id)
    }

    /// How many dispatches happen before `id`'s (0 = next up). `None` once
    /// the job is no longer waiting.
    pub fn queue_position(&self, id: usize) -> Option<usize> {
        self.lock().queue.position(id)
    }

    /// The live event stream of a job, if the id exists.
    pub fn job_events(&self, id: usize) -> Option<Arc<EventLog>> {
        self.lock().jobs.get(id).map(|job| Arc::clone(&job.events))
    }

    /// Queue and latency counters for `/healthz`.
    pub fn gate_stats(&self) -> GateStats {
        let inner = self.lock();
        GateStats {
            depth: self.gate.depth,
            queued: inner.queue.len(),
            interactive: inner.queue.class_len(Priority::Interactive),
            batch: inner.queue.class_len(Priority::Batch),
            background: inner.queue.class_len(Priority::Background),
            avg_run: inner.recent.average(),
            samples: inner.recent.len(),
        }
    }

    /// The externally visible state of one job. Counts as a result-store
    /// access only through [`fetch_result`](Self::fetch_result).
    pub fn job(&self, id: usize) -> Option<JobView> {
        let mut inner = self.lock();
        self.evict_expired(&mut inner);
        inner.jobs.get(id).map(|job| job.view(id))
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> Vec<JobView> {
        let mut inner = self.lock();
        self.evict_expired(&mut inner);
        inner
            .jobs
            .iter()
            .enumerate()
            .map(|(id, job)| job.view(id))
            .collect()
    }

    /// Ids of jobs whose result document has been evicted.
    pub fn evicted_jobs(&self) -> Vec<usize> {
        let mut inner = self.lock();
        self.evict_expired(&mut inner);
        inner
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| job.evicted)
            .map(|(id, _)| id)
            .collect()
    }

    /// Fetches a `Done` job's result document and refreshes its LRU
    /// position. `None` for unknown ids; for known jobs without a servable
    /// document the view tells why (still running, failed, cancelled,
    /// timed out, or evicted).
    pub fn fetch_result(&self, id: usize) -> Option<(JobView, Option<Arc<TaskResult>>)> {
        let mut inner = self.lock();
        self.evict_expired(&mut inner);
        let job = inner.jobs.get(id)?;
        let view = job.view(id);
        let servable = job.status == JobStatus::Done && !job.evicted;
        let result = servable.then(|| job.result.clone()).flatten();
        if result.is_some() {
            inner.access.retain(|&j| j != id);
            inner.access.push(id);
        }
        Some((view, result))
    }

    /// Cancels a job: a queued job never starts, a running job's cancel
    /// token fires so its run stops at the next batch boundary (or, if the
    /// job is attached to a shared run, detaches from it). Returns the
    /// status after the cancellation request, or `None` for unknown ids.
    pub fn cancel(&self, id: usize) -> Option<JobStatus> {
        let mut inner = self.lock();
        let job = inner.jobs.get_mut(id)?;
        match job.status {
            JobStatus::Queued => {
                job.status = JobStatus::Cancelled;
                job.cancel.cancel();
                job.close_events();
                inner.queue.remove(id);
                // A queued job's cancellation is its terminal record (a
                // running one's is written by the worker when the run
                // returns).
                self.journal(&Record::Cancel { id });
            }
            JobStatus::Running => {
                // The worker observes the fired token when the run returns
                // and records the terminal `Cancelled` state.
                job.cancel.cancel();
            }
            _ => {}
        }
        Some(inner.jobs[id].status)
    }

    /// Asks the worker pool (and the accept loop polling
    /// [`is_shutdown`](Self::is_shutdown)) to stop. Running jobs finish
    /// (or observe their cancel token); queued jobs are cancelled.
    pub fn shutdown(&self) {
        let mut inner = self.lock();
        inner.shutdown = true;
        for id in inner.queue.drain() {
            let job = &mut inner.jobs[id];
            if job.status == JobStatus::Queued {
                job.status = JobStatus::Cancelled;
                job.close_events();
                self.journal(&Record::Cancel { id });
            }
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Returns `true` once [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Counts of (queued, running) jobs.
    pub fn load(&self) -> (usize, usize) {
        let inner = self.lock();
        let queued = inner
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Queued)
            .count();
        let running = inner
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Running)
            .count();
        (queued, running)
    }

    /// TTL sweep: drops result documents older than the configured TTL.
    /// Called under the lock from every read path.
    fn evict_expired(&self, inner: &mut Inner) {
        let Some(ttl) = self.store.result_ttl else {
            return;
        };
        let now = Instant::now();
        let expired: Vec<usize> = inner
            .access
            .iter()
            .copied()
            .filter(|&id| {
                inner.jobs[id]
                    .completed_at
                    .is_some_and(|at| now.duration_since(at) >= ttl)
            })
            .collect();
        for id in expired {
            self.evict_one(inner, id);
        }
    }

    /// Drops one job's result from memory — and, on a durable server, from
    /// disk: the stored file goes too (unless another live `done` job
    /// shares the same key) and an `evict` record makes the eviction
    /// survive a restart, so the job answers 410 afterwards instead of
    /// resurrecting.
    fn evict_one(&self, inner: &mut Inner, id: usize) {
        let was_done = inner.jobs[id].status == JobStatus::Done;
        let key = inner.jobs[id].key.clone();
        let job = &mut inner.jobs[id];
        job.result = None;
        job.evicted = true;
        inner.access.retain(|&j| j != id);
        if !was_done {
            // Partial documents of failed / cancelled / timed-out jobs are
            // memory-only: nothing on disk, nothing to journal.
            return;
        }
        if let Some(store) = &self.persist {
            let shared = inner.jobs.iter().enumerate().any(|(other, job)| {
                other != id && job.status == JobStatus::Done && !job.evicted && job.key == key
            });
            if !shared {
                store.remove_result(&key.fingerprint());
            }
            self.journal(&Record::Evict { id });
        }
    }

    /// Records a finished run (status, result, budget breach, duration for
    /// the `Retry-After` estimator), seals the event stream, and enforces
    /// the LRU cap.
    fn finish(
        &self,
        id: usize,
        status: JobStatus,
        result: Option<Arc<TaskResult>>,
        breach: Option<(String, usize, usize)>,
        elapsed: Duration,
    ) {
        let mut inner = self.lock();
        inner.recent.record(elapsed);
        let job = &mut inner.jobs[id];
        job.status = status;
        job.breach = breach;
        if let Some(result) = &result {
            if let Err(error) = &result.outcome {
                job.error = Some(error.to_string());
            }
        }
        job.result = result;
        job.completed_at = Some(Instant::now());
        job.close_events();
        // Every stored result — including the partial documents of failed,
        // cancelled and timed-out jobs — enters the store, so the LRU cap
        // and the TTL bound *all* retained memory, not just `done` jobs.
        if job.result.is_some() {
            inner.access.push(id);
            while inner.access.len() > self.store.keep_results.max(1) {
                let oldest = inner.access[0];
                self.evict_one(&mut inner, oldest);
            }
        }
    }

    /// One worker's loop: claim jobs off the queue until shutdown. Run by
    /// every thread of the pool. Identical (model, options) submissions
    /// resolve to the same [`TaskKey`], so a worker claiming a duplicate of
    /// an in-flight job attaches to that run instead of starting another.
    pub fn worker_loop(&self) {
        loop {
            let (id, spec, cancel, explored, events) = {
                let mut inner = self.lock();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    // Skip ids whose job was cancelled while queued.
                    match inner.queue.pop() {
                        Some((id, _)) if inner.jobs[id].status == JobStatus::Queued => {
                            inner.jobs[id].status = JobStatus::Running;
                            let job = &inner.jobs[id];
                            break (
                                id,
                                job.spec.clone(),
                                job.cancel.clone(),
                                Arc::clone(&job.explored),
                                Arc::clone(&job.events),
                            );
                        }
                        Some(_) => continue,
                        None => inner = self.work.wait(inner).expect("server state poisoned"),
                    }
                }
            };
            // A `run` record turns "queued at the crash" into "running at
            // the crash" — recovery re-enqueues both, but operators see
            // which jobs actually lost work.
            self.journal(&Record::Run { id });
            events.push("{\"type\":\"running\"}".to_owned());
            let started = Instant::now();

            let event_sink = Arc::clone(&events);
            let progress = ProgressSink::new(move |event: &ProgressEvent| {
                if let ProgressEvent::Batch { expanded, .. }
                | ProgressEvent::Cancelled { expanded } = event
                {
                    explored.store(*expanded, Ordering::Relaxed);
                }
                // The driver emits progress from its single-threaded merge
                // loop, so the streamed sequence is deterministic and
                // thread-count-invariant.
                event_sink.push(render_progress(event));
            });
            // The session isolates panics and deduplicates: this either
            // executes the run or attaches to an identical in-flight one.
            let completion = self.session.run_task(
                &spec,
                RunControl {
                    cancel: cancel.clone(),
                    progress,
                },
            );

            let (status, breach, result) = match completion {
                // Attached to a shared run and cancelled out of it.
                Completion::Detached => (JobStatus::Cancelled, None, None),
                Completion::Finished(result) => match &result.outcome {
                    // The deadline watchdog fires the job's own token, so
                    // the timeout classification must precede the cancel
                    // check.
                    Ok(Outcome::TimedOut(_)) => (JobStatus::TimedOut, None, Some(result)),
                    // The budget watchdog fires the token too, and must
                    // also win the cancel check: a breached budget is a
                    // distinct, reportable terminal state.
                    Ok(Outcome::BudgetExceeded(exceeded)) => {
                        let breach = exceeded.breach;
                        (
                            JobStatus::BudgetExceeded,
                            Some((breach.resource.name().to_owned(), breach.used, breach.limit)),
                            Some(result),
                        )
                    }
                    _ if cancel.is_cancelled() => {
                        // Cancel wins any race with completion: a fired
                        // token means the client asked for the job to stop,
                        // and an interrupted run returns a *partial*
                        // document that must not be served as the job's
                        // result. Whatever output exists stays fetchable
                        // through the /text endpoint.
                        (JobStatus::Cancelled, None, Some(result))
                    }
                    Ok(outcome) if outcome.was_cancelled() => {
                        // A shared run another job cancelled: duplicates
                        // share its fate.
                        (JobStatus::Cancelled, None, Some(result))
                    }
                    Ok(_) => (JobStatus::Done, None, Some(result)),
                    // Same sharing for cancellations that surface as errors
                    // (e.g. a cancelled `reach` expansion).
                    Err(transyt_session::SessionError::Cancelled) => {
                        (JobStatus::Cancelled, None, Some(result))
                    }
                    Err(_) => (JobStatus::Failed, None, Some(result)),
                },
            };
            if let Some(store) = &self.persist {
                let record = match status {
                    JobStatus::Done => {
                        // The session's hook already persisted the document
                        // before publishing the result; this re-save is the
                        // heal path for a file lost between then and now
                        // (e.g. a re-run after a disk-side eviction).
                        let key = spec.key();
                        if let Some(result) = &result {
                            if let Err(e) =
                                store.save_result_if_absent(&key, &result.text, &result.document)
                            {
                                eprintln!("transyt-server: persisting result of job {id}: {e}");
                            }
                        }
                        Some(Record::Done {
                            id,
                            result: key.fingerprint(),
                        })
                    }
                    JobStatus::Failed => Some(Record::Fail {
                        id,
                        error: result
                            .as_ref()
                            .and_then(|r| r.outcome.as_ref().err())
                            .map(|e| e.to_string())
                            .unwrap_or_default(),
                    }),
                    JobStatus::Cancelled => Some(Record::Cancel { id }),
                    JobStatus::TimedOut => Some(Record::Timeout { id }),
                    JobStatus::BudgetExceeded => {
                        let (resource, used, limit) =
                            breach.clone().unwrap_or(("configs".to_owned(), 0, 0));
                        Some(Record::Budget {
                            id,
                            resource,
                            used,
                            limit,
                        })
                    }
                    JobStatus::Queued | JobStatus::Running => None,
                };
                if let Some(record) = record {
                    self.journal(&record);
                }
            }
            self.finish(id, status, result, breach, started.elapsed());
            self.maybe_compact();
        }
    }
}

/// Re-exported so the binary and the tests share one hash implementation.
pub use transyt_session::content_hash;

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal verifiable model (the engine's race example).
    const RACE: &str = "tts race\n\
        state s0 s0\n\
        state s1 bad\n\
        state s2 ok\n\
        state s3 done\n\
        initial s0\n\
        violation s1 \"slow overtook fast\"\n\
        trans s0 fast s2\n\
        trans s0 slow s1\n\
        trans s2 slow s3\n\
        trans s1 fast s3\n\
        delay fast [1,2]\n\
        delay slow [5,9]\n\
        property forbid-marked\n";

    fn state_with(store: ResultStoreConfig) -> ServerState {
        ServerState::new(Arc::new(Session::new()), store, GateConfig::default(), 1)
    }

    /// Submits in the default (batch) class.
    fn submit(state: &ServerState, spec: TaskSpec) -> Result<usize, SubmitError> {
        state.submit(spec, Priority::default())
    }

    fn drain(state: &ServerState) {
        std::thread::scope(|scope| {
            scope.spawn(|| state.worker_loop());
            let done = |state: &ServerState| state.jobs().iter().all(|j| j.status.is_terminal());
            while !done(state) {
                std::thread::yield_now();
            }
            state.shutdown();
        });
    }

    #[test]
    fn content_hash_is_stable_and_distinguishes() {
        assert_eq!(content_hash(""), "cbf29ce484222325");
        assert_ne!(content_hash("a"), content_hash("b"));
        assert_eq!(content_hash("model"), content_hash("model"));
    }

    #[test]
    fn upload_deduplicates_by_content() {
        let state = state_with(ResultStoreConfig::default());
        let (first, cached) = state.upload_model(RACE).unwrap();
        assert!(!cached);
        let (second, cached) = state.upload_model(RACE).unwrap();
        assert!(cached);
        assert_eq!(first.hash, second.hash);
        assert_eq!(state.models().len(), 1);
        assert!(state.upload_model("not a model").is_err());
        assert!(state.model(&first.hash).is_some());
        assert!(state.model("bogus").is_none());
    }

    #[test]
    fn jobs_flow_queued_running_done_and_duplicates_share_a_run() {
        let state = state_with(ResultStoreConfig::default());
        let (model, _) = state.upload_model(RACE).unwrap();
        assert!(submit(&state, TaskSpec::verify("missing")).is_err());
        let id = submit(&state, TaskSpec::verify(&model.hash)).unwrap();
        assert_eq!(state.job(id).unwrap().status, JobStatus::Queued);
        let twin = submit(&state, TaskSpec::verify(&model.hash)).unwrap();
        let cancelled = state
            .submit(
                TaskSpec::verify(&model.hash).threads(2),
                Priority::default(),
            )
            .unwrap();
        state.cancel(cancelled);
        drain(&state);

        let done = state.job(id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        let twin_view = state.job(twin).unwrap();
        assert_eq!(twin_view.status, JobStatus::Done);
        // The duplicate shares the very same result allocation.
        assert!(Arc::ptr_eq(
            done.result.as_ref().unwrap(),
            twin_view.result.as_ref().unwrap()
        ));
        let stats = state.session().stats();
        assert_eq!(stats.runs_executed, 1, "{stats:?}");
        assert_eq!(stats.runs_attached + stats.memo_hits, 1, "{stats:?}");
        assert!(done
            .result
            .unwrap()
            .document
            .contains("\"verdict\":\"verified\""));
        // The job cancelled while queued never ran.
        assert_eq!(state.job(cancelled).unwrap().status, JobStatus::Cancelled);
        assert!(state.job(cancelled).unwrap().result.is_none());
    }

    #[test]
    fn shutdown_cancels_queued_jobs_and_stops_workers() {
        let state = state_with(ResultStoreConfig::default());
        let (model, _) = state.upload_model(RACE).unwrap();
        let id = submit(&state, TaskSpec::verify(&model.hash)).unwrap();
        state.shutdown();
        assert!(state.is_shutdown());
        assert_eq!(state.job(id).unwrap().status, JobStatus::Cancelled);
        // Submissions after shutdown are refused.
        assert!(submit(&state, TaskSpec::verify(&model.hash)).is_err());
        // A worker started after shutdown returns immediately.
        state.worker_loop();
    }

    #[test]
    fn lru_cap_evicts_the_oldest_result() {
        let state = state_with(ResultStoreConfig {
            keep_results: 2,
            result_ttl: None,
        });
        let (model, _) = state.upload_model(RACE).unwrap();
        // Three distinct jobs (different thread counts → different keys),
        // drained by a single worker so they complete in submission order.
        let a = state
            .submit(
                TaskSpec::verify(&model.hash).threads(1),
                Priority::default(),
            )
            .unwrap();
        let b = state
            .submit(
                TaskSpec::verify(&model.hash).threads(2),
                Priority::default(),
            )
            .unwrap();
        let c = state
            .submit(
                TaskSpec::verify(&model.hash).threads(3),
                Priority::default(),
            )
            .unwrap();
        drain(&state);
        // Cap 2, three results stored in completion order: the oldest was
        // evicted when the third arrived.
        assert_eq!(state.evicted_jobs(), vec![a]);
        let (view, result) = state.fetch_result(a).unwrap();
        assert!(view.evicted);
        assert!(result.is_none());
        assert_eq!(state.job(a).unwrap().status, JobStatus::Done);
        // The other two still serve.
        assert!(state.fetch_result(b).unwrap().1.is_some());
        assert!(state.fetch_result(c).unwrap().1.is_some());
    }

    #[test]
    fn ttl_evicts_results_after_expiry() {
        let state = state_with(ResultStoreConfig {
            keep_results: 16,
            result_ttl: Some(Duration::from_millis(30)),
        });
        let (model, _) = state.upload_model(RACE).unwrap();
        let id = submit(&state, TaskSpec::verify(&model.hash)).unwrap();
        drain(&state);
        assert!(state.fetch_result(id).unwrap().1.is_some());
        std::thread::sleep(Duration::from_millis(40));
        let (view, result) = state.fetch_result(id).unwrap();
        assert!(view.evicted);
        assert!(result.is_none());
        assert_eq!(state.evicted_jobs(), vec![id]);
        // Status survives eviction; only the document is gone.
        assert_eq!(state.job(id).unwrap().status, JobStatus::Done);
    }

    /// Unique scratch data dir per test.
    fn test_data_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "transyt-server-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_state(dir: &std::path::Path, store: ResultStoreConfig) -> ServerState {
        let (persist, recovery) = Store::open(dir, false).unwrap();
        ServerState::recovered(
            Arc::new(Session::new()),
            store,
            GateConfig::default(),
            1,
            Arc::new(persist),
            &recovery,
        )
    }

    #[test]
    fn durable_state_recovers_completed_and_interrupted_jobs() {
        let dir = test_data_dir("recover");

        // Run one job to completion, then "crash" (drop without cleanup).
        let state = durable_state(&dir, ResultStoreConfig::default());
        let (model, _) = state.upload_model(RACE).unwrap();
        let done = state
            .submit(
                TaskSpec::verify(&model.hash).with_trace(true),
                Priority::default(),
            )
            .unwrap();
        drain(&state);
        let first_doc = state.job(done).unwrap().result.unwrap().document.clone();
        assert!(!state.job(done).unwrap().recovered);
        drop(state);

        // Restart: enqueue two more jobs and die with them still queued
        // (no worker ran, no shutdown — the SIGKILL shape of the journal).
        let state = durable_state(&dir, ResultStoreConfig::default());
        let recovered_done = state.job(done).unwrap();
        assert_eq!(recovered_done.status, JobStatus::Done);
        assert!(recovered_done.recovered);
        assert_eq!(recovered_done.result.unwrap().document, first_doc);
        let queued_a = state
            .submit(
                TaskSpec::verify(&model.hash).threads(2),
                Priority::default(),
            )
            .unwrap();
        let queued_b = state
            .submit(
                TaskSpec::verify(&model.hash).threads(3),
                Priority::default(),
            )
            .unwrap();
        drop(state);

        // Second restart: the interrupted jobs are re-enqueued and re-run
        // to byte-identical documents; the completed one still serves the
        // original bytes; a duplicate of it is answered from the store
        // with zero new runs.
        let state = durable_state(&dir, ResultStoreConfig::default());
        assert_eq!(state.job(queued_a).unwrap().status, JobStatus::Queued);
        assert!(state.job(queued_b).unwrap().recovered);
        drain(&state);
        let reference = Session::new();
        reference.add_model(RACE).unwrap();
        for (id, threads) in [(queued_a, 2), (queued_b, 3)] {
            let view = state.job(id).unwrap();
            assert_eq!(view.status, JobStatus::Done);
            let fresh = reference
                .run(&TaskSpec::verify(&model.hash).threads(threads))
                .unwrap();
            assert_eq!(
                view.result.unwrap().document,
                transyt_session::render::render_document(&transyt_session::render::document(
                    &fresh
                ))
            );
        }
        drop(state);

        // Final restart: a duplicate of the long-completed job is answered
        // from the on-disk store — zero runs executed in this process.
        let state = durable_state(&dir, ResultStoreConfig::default());
        let runs_before = state.session().stats().runs_executed;
        assert_eq!(runs_before, 0);
        let duplicate = state
            .submit(
                TaskSpec::verify(&model.hash).with_trace(true),
                Priority::default(),
            )
            .unwrap();
        // A single worker pass serves the duplicate from the store.
        std::thread::scope(|scope| {
            scope.spawn(|| state.worker_loop());
            while !state.job(duplicate).unwrap().status.is_terminal() {
                std::thread::yield_now();
            }
            state.shutdown();
        });
        let view = state.job(duplicate).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.result.unwrap().document, first_doc);
        let stats = state.session().stats();
        assert_eq!(stats.runs_executed, runs_before, "{stats:?}");
        assert_eq!(stats.store_hits, 1, "{stats:?}");
        assert!(state.persistence().unwrap().journal.entries > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_evictions_survive_restart() {
        let dir = test_data_dir("evict");
        let cap_one = ResultStoreConfig {
            keep_results: 1,
            result_ttl: None,
        };
        let state = durable_state(&dir, cap_one);
        let (model, _) = state.upload_model(RACE).unwrap();
        let a = state
            .submit(
                TaskSpec::verify(&model.hash).threads(1),
                Priority::default(),
            )
            .unwrap();
        let b = state
            .submit(
                TaskSpec::verify(&model.hash).threads(2),
                Priority::default(),
            )
            .unwrap();
        drain(&state);
        assert_eq!(state.evicted_jobs(), vec![a]);
        // The evicted job's file is gone from disk too.
        assert_eq!(state.persistence().unwrap().disk.results, 1);
        drop(state);

        let state = durable_state(&dir, cap_one);
        let evicted = state.job(a).unwrap();
        assert_eq!(evicted.status, JobStatus::Done);
        assert!(evicted.evicted, "eviction must survive the restart");
        assert!(evicted.result.is_none());
        let kept = state.job(b).unwrap();
        assert_eq!(kept.status, JobStatus::Done);
        assert!(kept.result.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_marks_jobs_timed_out() {
        let state = state_with(ResultStoreConfig::default());
        // The 2-stage pipeline zone graph runs far beyond 1ms.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../models/ipcmos_2stage.stg"
        ))
        .unwrap();
        let (model, _) = state.upload_model(&text).unwrap();
        let spec = TaskSpec::zones(&model.hash)
            .limit(100_000_000)
            .deadline(Duration::from_millis(1));
        let id = state.submit(spec, Priority::default()).unwrap();
        drain(&state);
        let view = state.job(id).unwrap();
        assert_eq!(view.status, JobStatus::TimedOut);
        assert!(matches!(
            view.result.as_ref().unwrap().outcome,
            Ok(Outcome::TimedOut(_))
        ));
        // Timed-out jobs serve no /result document.
        assert!(state.fetch_result(id).unwrap().1.is_none());
    }

    #[test]
    fn admission_gate_refuses_beyond_depth_with_retry_after() {
        let state = ServerState::new(
            Arc::new(Session::new()),
            ResultStoreConfig::default(),
            GateConfig {
                depth: 2,
                aging_threshold: 4,
            },
            1,
        );
        let (model, _) = state.upload_model(RACE).unwrap();
        // No worker is draining, so both admitted jobs stay queued.
        submit(&state, TaskSpec::verify(&model.hash).threads(1)).unwrap();
        submit(&state, TaskSpec::verify(&model.hash).threads(2)).unwrap();
        match submit(&state, TaskSpec::verify(&model.hash).threads(3)) {
            Err(SubmitError::Busy {
                retry_after,
                queued,
            }) => {
                assert_eq!(queued, 2);
                assert!(retry_after >= Duration::from_secs(1));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // The refused submission left no trace in the job table.
        assert_eq!(state.jobs().len(), 2);
        state.shutdown();
    }

    #[test]
    fn priority_classes_order_the_queue() {
        let state = state_with(ResultStoreConfig::default());
        let (model, _) = state.upload_model(RACE).unwrap();
        let batch = state
            .submit(TaskSpec::verify(&model.hash).threads(1), Priority::Batch)
            .unwrap();
        let background = state
            .submit(
                TaskSpec::verify(&model.hash).threads(2),
                Priority::Background,
            )
            .unwrap();
        let interactive = state
            .submit(
                TaskSpec::verify(&model.hash).threads(3),
                Priority::Interactive,
            )
            .unwrap();
        // Dispatch order is by class, not arrival: the late interactive
        // submission is next up.
        assert_eq!(state.queue_position(interactive), Some(0));
        assert_eq!(state.queue_position(batch), Some(1));
        assert_eq!(state.queue_position(background), Some(2));
        assert_eq!(
            state.job(interactive).unwrap().priority,
            Priority::Interactive
        );
        drain(&state);
        assert_eq!(state.queue_position(interactive), None);
        assert!(state.jobs().iter().all(|j| j.status == JobStatus::Done));
    }

    #[test]
    fn budget_breach_is_terminal_and_streams_its_lifecycle() {
        let state = state_with(ResultStoreConfig::default());
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../models/ipcmos_2stage.stg"
        ))
        .unwrap();
        let (model, _) = state.upload_model(&text).unwrap();
        let spec = TaskSpec::zones(&model.hash)
            .limit(100_000_000)
            .max_configs(50);
        let id = submit(&state, spec).unwrap();
        drain(&state);
        let view = state.job(id).unwrap();
        assert_eq!(view.status, JobStatus::BudgetExceeded);
        let (resource, used, limit) = view.breach.clone().unwrap();
        assert_eq!(resource, "configs");
        assert_eq!(limit, 50);
        assert!(used >= limit, "breach reports usage at the check: {used}");
        // No /result document — only status plus the breach triple.
        assert!(state.fetch_result(id).unwrap().1.is_none());
        // The event stream is complete: claim marker first, terminal last.
        let log = state.job_events(id).unwrap();
        let (lines, done) = log.wait(0, Duration::from_millis(1));
        assert!(done);
        assert_eq!(lines.first().unwrap(), "{\"type\":\"running\"}");
        assert_eq!(
            lines.last().unwrap(),
            "{\"type\":\"terminal\",\"status\":\"budget_exceeded\"}"
        );
        assert!(lines.iter().any(|l| l.starts_with("{\"type\":\"batch\"")));
    }
}
