//! Graceful-shutdown signal handling (SIGTERM / ctrl-c) with no libc crate:
//! the handler registration goes straight through the C `signal` symbol the
//! Rust standard library already links.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNAL: AtomicBool = AtomicBool::new(false);

/// Returns `true` once SIGTERM or SIGINT has been received (always `false`
/// before [`install_shutdown_signals`] ran, or on non-Unix platforms).
pub fn signal_received() -> bool {
    SIGNAL.load(Ordering::SeqCst)
}

/// The async-signal-safe handler: a single atomic store, observed by the
/// accept loop's next poll.
unsafe extern "C" fn on_signal(_signum: i32) {
    SIGNAL.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM / SIGINT handlers. Idempotent; no-op off Unix.
#[cfg(unix)]
pub fn install_shutdown_signals() {
    type Handler = unsafe extern "C" fn(i32);
    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler)` from libc,
        // which std already links. The previous handler is returned as an
        // opaque word; we never restore it.
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe, and the handler stays valid for the process
    // lifetime (it is a plain fn item).
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Installs the SIGTERM / SIGINT handlers. Idempotent; no-op off Unix.
#[cfg(not(unix))]
pub fn install_shutdown_signals() {
    let _ = on_signal;
}
