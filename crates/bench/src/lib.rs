//! Shared workloads for the benchmark harness.
//!
//! Each bench target and report binary regenerates one table or figure of the
//! paper; this library provides the models they share, most notably the
//! introductory example of Fig. 1/2 (reconstructed: the paper's drawing is a
//! 15-state system in which the ordering "`g` always fires before `d`" only
//! holds once delays are taken into account).

use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

pub mod json;

/// Delay helper.
fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).expect("static delay interval")
}

/// The introductory example of Fig. 1/2 of the paper (reconstruction).
///
/// Events `a`, `b` start concurrently, `c` follows `a`, and `d` follows `c`;
/// the independent event `g` is fast. The safety property is that `g` always
/// fires before `d`: it is violated in the untimed state space but holds
/// under the delay intervals (`a`,`b` in \[2,4\], `c` in \[5,6\], `g` in \[1,1\],
/// scaled ×2 with respect to the half-unit delays printed in the paper's
/// figure).
pub fn intro_example() -> TimedTransitionSystem {
    let mut builder = TsBuilder::new("fig1-intro");
    // State encoding: (a fired?, b fired?, c fired?, g fired?, d fired?).
    let mut states = std::collections::HashMap::new();
    let mut add = |builder: &mut TsBuilder, key: (bool, bool, bool, bool, bool)| {
        *states.entry(key).or_insert_with(|| {
            let name = format!(
                "a{}b{}c{}g{}d{}",
                key.0 as u8, key.1 as u8, key.2 as u8, key.3 as u8, key.4 as u8
            );
            builder.add_state(name)
        })
    };
    let all: Vec<(bool, bool, bool, bool, bool)> = (0..32)
        .map(|i| (i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0, i & 16 != 0))
        .collect();
    for &key in &all {
        let (a, b, c, g, dd) = key;
        // Enforce structural causality: c after a, d after c.
        if (c && !a) || (dd && !c) {
            continue;
        }
        let from = add(&mut builder, key);
        if !a {
            let to = add(&mut builder, (true, b, c, g, dd));
            builder.add_transition(from, "a", to);
        }
        if !b {
            let to = add(&mut builder, (a, true, c, g, dd));
            builder.add_transition(from, "b", to);
        }
        if a && !c {
            let to = add(&mut builder, (a, b, true, g, dd));
            builder.add_transition(from, "c", to);
        }
        if !g {
            let to = add(&mut builder, (a, b, c, true, dd));
            builder.add_transition(from, "g", to);
        }
        if c && !dd {
            let to = add(&mut builder, (a, b, c, g, true));
            builder.add_transition(from, "d", to);
            if !g {
                builder.mark_violation(to, "d fired before g");
            }
        }
    }
    let initial = states[&(false, false, false, false, false)];
    builder.set_initial(initial);
    let mut timed =
        TimedTransitionSystem::new(builder.build().expect("intro example is well formed"));
    timed.set_delay_by_name("a", d(2, 4));
    timed.set_delay_by_name("b", d(2, 4));
    timed.set_delay_by_name("c", d(5, 6));
    timed.set_delay_by_name("g", d(1, 1));
    timed
}

#[cfg(test)]
mod tests {
    use super::*;
    use transyt::{verify, SafetyProperty, VerifyOptions};

    #[test]
    fn intro_example_has_untimed_violations_but_verifies_with_timing() {
        let timed = intro_example();
        assert!(!timed.underlying().marked_reachable_states().is_empty());
        let verdict = verify(
            &timed,
            &SafetyProperty::new("g before d").forbid_marked_states(),
            &VerifyOptions::default(),
        );
        assert!(verdict.is_verified(), "intro example: {verdict}");
        assert!(verdict.report().refinements >= 1);
    }

    #[test]
    fn intro_example_matches_zone_based_ground_truth() {
        let timed = intro_example();
        let report = dbm::explore_timed(&timed).report().cloned().unwrap();
        assert!(report.violating_states.is_empty());
    }
}
