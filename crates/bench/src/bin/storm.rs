//! storm — a service-level load generator for the verification server.
//!
//! Fires a mixed-priority stream of submissions at a live `transyt serve`
//! instance and reports scheduling quality: per-class completion latency
//! (p50 / p99 / max, integer microseconds), how many submissions were
//! refused by the admission gate (429 + `Retry-After`), and a starvation
//! check (every admitted job must reach a terminal state).
//!
//! ```text
//! storm --server HOST:PORT [--submissions N] [--clients N] [--json PATH]
//! ```
//!
//! With `--json PATH` a machine-readable document (the `BENCH_service.json`
//! artifact of CI) is written in addition to the human-readable table. The
//! tool deliberately depends only on `std` + this crate's JSON emitter —
//! the server is driven over the wire, exactly as a real client would.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bench::json::Value;

/// A model small enough that a single job is quick, submitted with varying
/// `limit` values so every job has a distinct task key (no run dedup).
const RING: &str = "stg storm-ring\n\
    transition t0 a+ output\n\
    transition t1 a- output\n\
    transition t2 b+ output\n\
    transition t3 b- output\n\
    place p0 1 a-->a+\n\
    place p1 0 a+->a-\n\
    place p2 1 b-->b+\n\
    place p3 0 b+->b-\n\
    arc p0 t0\n\
    arc t0 p1\n\
    arc p1 t1\n\
    arc t1 p0\n\
    arc p2 t2\n\
    arc t2 p3\n\
    arc p3 t3\n\
    arc t3 p2\n\
    delay a+ [1,2]\n\
    delay a- [1,2]\n\
    delay b+ [2,3]\n\
    delay b- [2,3]\n\
    property deadlock-free\n";

const CLASSES: [&str; 3] = ["interactive", "batch", "background"];

/// One HTTP/1.1 request in the server's one-shot dialect. Returns
/// `(status, retry_after_seconds, body)`.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Option<u64>, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .and_then(|()| writer.write_all(body))
    .and_then(|()| writer.flush())
    .map_err(|e| format!("writing request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading response: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        let read = reader
            .read_line(&mut header)
            .map_err(|e| format!("reading headers: {e}"))?;
        if read == 0 || header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.trim_end().split_once(':') {
            if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok((status, retry_after, body))
}

/// Scans `"name":"value"` out of the server's compact JSON dialect.
fn str_field(document: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = document.find(&needle)? + needle.len();
    document[start..].split('"').next().map(str::to_owned)
}

/// Scans `"name":123` out of the server's compact JSON dialect.
fn uint_field(document: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = document.find(&needle)? + needle.len();
    let digits: String = document[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The measured fate of one submission.
struct Sample {
    class: usize,
    /// Submit-to-terminal latency.
    latency: Duration,
    /// 429 answers absorbed before the job was admitted.
    rejects: usize,
    /// The job never reached a terminal state within the watchdog window.
    starved: bool,
}

/// Submits one job (retrying through 429s) and waits for its terminal
/// state. `sequence` makes the task key unique so no run is deduplicated.
fn drive_one(addr: &str, hash: &str, class: usize, sequence: usize) -> Result<Sample, String> {
    let path = format!(
        "/jobs?model={hash}&command=reach&limit={}&priority={}",
        10_000 + sequence,
        CLASSES[class],
    );
    let started = Instant::now();
    let mut rejects = 0usize;
    let id = loop {
        let (status, retry_after, body) = request(addr, "POST", &path, &[])?;
        match status {
            202 => {
                break uint_field(&body, "job")
                    .ok_or_else(|| format!("submission response carried no job id: {body}"))?
            }
            429 => {
                rejects += 1;
                // The server's estimate, capped so the generator keeps
                // pressure on the gate instead of politely draining it.
                let secs = retry_after.unwrap_or(1).min(1);
                std::thread::sleep(Duration::from_millis(50 + secs * 150));
            }
            other => return Err(format!("submission refused: {other}: {}", body.trim())),
        }
    };
    // Watchdog: a scheduler that starves a class would hang this poll loop
    // forever; 120s is orders of magnitude beyond any healthy completion.
    let deadline = started + Duration::from_secs(120);
    loop {
        let (status, _, body) = request(addr, "GET", &format!("/jobs/{id}"), &[])?;
        if status != 200 {
            return Err(format!("status poll failed: {status}: {}", body.trim()));
        }
        let state = str_field(&body, "status").unwrap_or_default();
        if !matches!(state.as_str(), "queued" | "running") {
            if state != "done" {
                return Err(format!("job {id} ended as `{state}`"));
            }
            return Ok(Sample {
                class,
                latency: started.elapsed(),
                rejects,
                starved: false,
            });
        }
        if Instant::now() > deadline {
            return Ok(Sample {
                class,
                latency: started.elapsed(),
                rejects,
                starved: true,
            });
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn percentile(sorted_micros: &[u128], pct: usize) -> u128 {
    if sorted_micros.is_empty() {
        return 0;
    }
    sorted_micros[(sorted_micros.len() - 1) * pct / 100]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server: Option<String> = None;
    let mut submissions: usize = 60;
    let mut clients: usize = 4;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => server = Some(args.next().ok_or("--server needs HOST:PORT")?),
            "--submissions" => {
                submissions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--submissions needs a number")?
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&c| c > 0)
                    .ok_or("--clients needs a positive number")?
            }
            "--json" => json_path = Some(args.next().ok_or("--json needs a path")?),
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }
    let addr = server.ok_or("storm needs --server HOST:PORT (a live `transyt serve`)")?;

    let (status, _, body) = request(&addr, "POST", "/models", RING.as_bytes())?;
    if status != 200 {
        return Err(format!("model upload failed: {status}: {}", body.trim()).into());
    }
    let hash = str_field(&body, "hash").ok_or("upload response carried no hash")?;

    println!(
        "storm: {submissions} submissions ({} per class, round-robin) from {clients} client \
         thread{} against {addr}",
        submissions.div_ceil(CLASSES.len()),
        if clients == 1 { "" } else { "s" },
    );

    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(submissions));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let sequence = next.fetch_add(1, Ordering::Relaxed);
                if sequence >= submissions {
                    return;
                }
                match drive_one(&addr, &hash, sequence % CLASSES.len(), sequence) {
                    Ok(sample) => samples.lock().unwrap().push(sample),
                    Err(error) => errors.lock().unwrap().push(error),
                }
            });
        }
    });
    let wall = wall.elapsed();
    let errors = errors.into_inner().unwrap();
    if let Some(first) = errors.first() {
        return Err(format!("{} submissions failed, first: {first}", errors.len()).into());
    }
    let samples = samples.into_inner().unwrap();

    let rejects: usize = samples.iter().map(|s| s.rejects).sum();
    let starved: usize = samples.iter().filter(|s| s.starved).count();
    println!(
        "\n{:>12} {:>6} {:>12} {:>12} {:>12}",
        "class", "jobs", "p50_us", "p99_us", "max_us"
    );
    let mut class_docs: Vec<Value> = Vec::new();
    for (index, name) in CLASSES.iter().enumerate() {
        let mut micros: Vec<u128> = samples
            .iter()
            .filter(|s| s.class == index)
            .map(|s| s.latency.as_micros())
            .collect();
        micros.sort_unstable();
        let (p50, p99) = (percentile(&micros, 50), percentile(&micros, 99));
        let max = micros.last().copied().unwrap_or(0);
        println!(
            "{:>12} {:>6} {:>12} {:>12} {:>12}",
            name,
            micros.len(),
            p50,
            p99,
            max
        );
        class_docs.push(
            Value::object()
                .field("name", *name)
                .field("jobs", micros.len())
                .field("p50_us", p50)
                .field("p99_us", p99)
                .field("max_us", max),
        );
    }
    println!(
        "\n{rejects} admission reject{} absorbed, {starved} starved job{}, wall {}ms",
        if rejects == 1 { "" } else { "s" },
        if starved == 1 { "" } else { "s" },
        wall.as_millis(),
    );
    if let Some(path) = json_path {
        let doc = Value::object()
            .field("benchmark", "service")
            .field("submissions", submissions)
            .field("clients", clients)
            .field("classes", class_docs)
            .field("rejects", rejects)
            .field("starved", starved)
            .field("wall_ms", wall.as_millis());
        std::fs::write(&path, doc.render() + "\n")?;
        println!("wrote {path}");
    }
    if starved > 0 {
        return Err(format!("{starved} jobs starved (no terminal state within 120s)").into());
    }
    Ok(())
}
