//! Regenerates Table 1 of the paper: the five verification obligations with
//! wall-clock time and refinement counts.
//!
//! ```text
//! table1_report [--threads N] [--json PATH]
//! ```
//!
//! With `--json PATH` a machine-readable document (the `BENCH_table1.json`
//! artifact of CI) is written in addition to the human-readable table.

use bench::json::Value;
use transyt::VerifyOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut threads: usize = 1;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?
            }
            "--json" => json_path = Some(args.next().ok_or("--json needs a path")?),
            other => return Err(format!("bad argument `{other}`").into()),
        }
    }

    println!("Reproduction of Table 1 (DATE 2002 IPCMOS case study)");
    println!("paper reference: (1) <1min/0, (2) 28min/7, (3) 9min/3, (4) 10min/3, (5) 35min/40 on an 866MHz PIII\n");
    let options = VerifyOptions {
        spec: transyt::ExploreSpec::threaded(threads),
        ..VerifyOptions::default()
    };
    let report = ipcmos::table_1_with(&options)?;
    println!("{report}");
    for (i, step) in report.steps().iter().enumerate() {
        println!(
            "--- experiment {} back-annotated relative-timing constraints ---",
            i + 1
        );
        println!("{}", step.verdict.report().constraint_listing());
    }
    if report.all_verified() {
        println!("\nall five obligations verified");
    } else {
        println!("\nWARNING: not all obligations verified");
    }

    if let Some(path) = json_path {
        let experiments: Vec<Value> = report
            .steps()
            .iter()
            .map(|step| {
                let r = step.verdict.report();
                Value::object()
                    .field("name", step.name.as_str())
                    .field("verified", step.verdict.is_verified())
                    .field("refinements", r.refinements)
                    .field("constraints", r.constraints.len())
                    .field("explored_states", r.explored_states)
                    .field("millis", step.elapsed.as_millis())
            })
            .collect();
        let doc = Value::object()
            .field("benchmark", "table1")
            .field("threads", threads)
            .field("all_verified", report.all_verified())
            .field("total_refinements", report.total_refinements())
            .field("experiments", experiments);
        std::fs::write(&path, doc.render() + "\n")?;
        println!("wrote {path}");
    }
    Ok(())
}
