//! Regenerates Table 1 of the paper: the five verification obligations with
//! wall-clock time and refinement counts.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Reproduction of Table 1 (DATE 2002 IPCMOS case study)");
    println!("paper reference: (1) <1min/0, (2) 28min/7, (3) 9min/3, (4) 10min/3, (5) 35min/40 on an 866MHz PIII\n");
    let report = ipcmos::table_1()?;
    println!("{report}");
    for (i, step) in report.steps().iter().enumerate() {
        println!(
            "--- experiment {} back-annotated relative-timing constraints ---",
            i + 1
        );
        println!("{}", step.verdict.report().constraint_listing());
    }
    if report.all_verified() {
        println!("\nall five obligations verified");
    } else {
        println!("\nWARNING: not all obligations verified");
    }
    Ok(())
}
