//! Scaling comparison (§3.2 of the paper): flat verification of an n-stage
//! pipeline (untimed state count + zone-based timed exploration) versus the
//! constant-size assume-guarantee obligations.
//!
//! The zone exploration is run as six series — the exact semantics
//! sequential with convex zone subsumption, with exact-duplicate
//! deduplication only, and parallel with convex subsumption, plus the
//! LU-extrapolated variants (`zones-lu`, `zones-lu-active`) and the
//! non-convex aLU-subsumption series (`zones-alu`) — so the report
//! quantifies the subsumption win, the parallel speedup, the
//! coarse-abstraction win of LU extrapolation and active-clock reduction,
//! and the further reduction of aLU coverage.
//!
//! ```text
//! scaling_report [MAX_STAGES] [--threads N] [--limit N] [--json PATH]
//! ```
//!
//! With `--json PATH` a machine-readable document (the `BENCH_scaling.json`
//! artifact of CI) is written in addition to the human-readable table.

use std::time::Instant;

use bench::json::Value;
use dbm::{
    explore_timed_with, ExploreSpec, Extrapolation, Subsumption, ZoneExplorationOptions,
    ZoneOutcome,
};

struct Series {
    name: &'static str,
    threads: usize,
    subsumption: Subsumption,
    extrapolation: Extrapolation,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut max_stages: usize = 2;
    let mut threads: usize = 4;
    let mut limit: usize = 20_000;
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?
            }
            "--limit" => {
                limit = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--limit needs a number")?
            }
            "--json" => json_path = Some(args.next().ok_or("--json needs a path")?),
            other => {
                max_stages = other
                    .parse()
                    .map_err(|_| format!("bad argument `{other}`"))?
            }
        }
    }

    let series = [
        Series {
            name: "zone_sequential_subsumption",
            threads: 1,
            subsumption: Subsumption::Inclusion,
            extrapolation: Extrapolation::None,
        },
        Series {
            name: "zone_sequential_exact",
            threads: 1,
            subsumption: Subsumption::Exact,
            extrapolation: Extrapolation::None,
        },
        Series {
            name: "zone_parallel_subsumption",
            threads,
            subsumption: Subsumption::Inclusion,
            extrapolation: Extrapolation::None,
        },
        Series {
            name: "zones-lu",
            threads: 1,
            subsumption: Subsumption::Inclusion,
            extrapolation: Extrapolation::Lu,
        },
        Series {
            name: "zones-lu-active",
            threads: 1,
            subsumption: Subsumption::Inclusion,
            extrapolation: Extrapolation::LuActive,
        },
        Series {
            name: "zones-alu",
            threads: 1,
            subsumption: Subsumption::Alu,
            extrapolation: Extrapolation::LuActive,
        },
    ];

    println!("flat (abstraction-free) pipeline growth; the paper notes that beyond 2 stages");
    println!("flat verification is impractical, which is why A_in/A_out abstractions are used\n");

    let mut json_series: Vec<Value> = Vec::new();
    let mut pipelines = Vec::new();
    for n in 1..=max_stages {
        pipelines.push((n, ipcmos::flat_pipeline(n)?));
    }

    for spec in &series {
        println!(
            "series `{}` (threads={}, subsumption={}, extrapolation={}):",
            spec.name,
            spec.threads,
            spec.subsumption.name(),
            spec.extrapolation.name()
        );
        println!(
            "{:>7} {:>15} {:>15} {:>20} {:>10} {:>10}",
            "stages", "untimed states", "transitions", "zone configurations", "subsumed", "millis"
        );
        let mut points: Vec<Value> = Vec::new();
        for (n, pipeline) in &pipelines {
            let ts = pipeline.underlying();
            let started = Instant::now();
            let outcome = explore_timed_with(
                pipeline,
                ZoneExplorationOptions {
                    spec: ExploreSpec {
                        threads: spec.threads,
                        subsumption: spec.subsumption,
                        limit: Some(limit),
                        extrapolation: spec.extrapolation,
                        ..ExploreSpec::default()
                    },
                },
            );
            let millis = started.elapsed().as_millis();
            let (completed, configurations, subsumed, shown) = match &outcome {
                ZoneOutcome::Completed(report) => (
                    true,
                    report.configurations,
                    report.subsumed_configurations,
                    report.configurations.to_string(),
                ),
                ZoneOutcome::LimitExceeded { explored, subsumed }
                | ZoneOutcome::Cancelled { explored, subsumed } => (
                    false,
                    *explored,
                    *subsumed,
                    format!(">{explored} (aborted)"),
                ),
            };
            println!(
                "{:>7} {:>15} {:>15} {:>20} {:>10} {:>10}",
                n,
                ts.reachable_states().len(),
                ts.transition_count(),
                shown,
                subsumed,
                millis
            );
            points.push(
                Value::object()
                    .field("stages", *n)
                    .field("untimed_states", ts.reachable_states().len())
                    .field("untimed_transitions", ts.transition_count())
                    .field("completed", completed)
                    .field("configurations", configurations)
                    .field("subsumed_configurations", subsumed)
                    .field("millis", millis),
            );
        }
        println!();
        json_series.push(
            Value::object()
                .field("name", spec.name)
                .field("threads", spec.threads)
                .field("subsumption", spec.subsumption.name())
                .field("extrapolation", spec.extrapolation.name())
                .field("points", points),
        );
    }

    println!("assume-guarantee alternative: the obligations of Table 1 are independent of n");

    if let Some(path) = json_path {
        let doc = Value::object()
            .field("benchmark", "scaling")
            .field("max_stages", max_stages)
            .field("configuration_limit", limit)
            .field("series", json_series);
        std::fs::write(&path, doc.render() + "\n")?;
        println!("wrote {path}");
    }
    Ok(())
}
