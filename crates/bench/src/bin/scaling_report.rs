//! Scaling comparison (§3.2 of the paper): flat verification of an n-stage
//! pipeline (untimed state count + zone-based timed exploration) versus the
//! constant-size assume-guarantee obligations.

use dbm::{explore_timed_with, ZoneExplorationOptions, ZoneOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!("flat (abstraction-free) pipeline growth; the paper notes that beyond 2 stages");
    println!("flat verification is impractical, which is why A_in/A_out abstractions are used\n");
    println!(
        "{:>7} {:>15} {:>15} {:>20}",
        "stages", "untimed states", "transitions", "zone configurations"
    );
    for n in 1..=max_stages {
        let pipeline = ipcmos::flat_pipeline(n)?;
        let ts = pipeline.underlying();
        let zones = match explore_timed_with(
            &pipeline,
            ZoneExplorationOptions {
                configuration_limit: 20_000,
            },
        ) {
            ZoneOutcome::Completed(report) => report.configurations.to_string(),
            ZoneOutcome::LimitExceeded { explored } => format!(">{explored} (aborted)"),
        };
        println!(
            "{:>7} {:>15} {:>15} {:>20}",
            n,
            ts.reachable_states().len(),
            ts.transition_count(),
            zones
        );
    }
    println!("\nassume-guarantee alternative: the obligations of Table 1 are independent of n");
    Ok(())
}
