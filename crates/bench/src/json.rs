//! A minimal JSON emitter for the machine-readable benchmark reports.
//!
//! The build environment is offline, so instead of `serde_json` the report
//! binaries assemble their documents with this small value tree. Only the
//! shapes the reports need are supported: objects (insertion-ordered),
//! arrays, strings, unsigned integers and booleans.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer.
    UInt(u128),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Creates an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Adds (or replaces nothing — keys are appended) a field to an object
    /// and returns the object for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::UInt(n as u128)
    }
}

impl From<u128> for Value {
    fn from(n: u128) -> Value {
        Value::UInt(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Value::object()
            .field("name", "scaling \"bench\"")
            .field("threads", 4usize)
            .field("ok", true)
            .field(
                "points",
                vec![
                    Value::object().field("n", 1usize),
                    Value::object().field("n", 2usize),
                ],
            );
        assert_eq!(
            doc.render(),
            r#"{"name":"scaling \"bench\"","threads":4,"ok":true,"points":[{"n":1},{"n":2}]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Value::Str("a\nb".into()).render(), r#""a\nb""#);
    }
}
