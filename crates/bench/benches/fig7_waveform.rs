//! Figure 7: pulse-level simulation of a two-stage pipeline.

use criterion::{criterion_group, criterion_main, Criterion};

fn fig7(c: &mut Criterion) {
    let pipeline = ipcmos::flat_pipeline(2).expect("two-stage pipeline builds");
    c.bench_function("fig7_waveform/simulate_two_stage_80_events", |b| {
        b.iter(|| ipcmos::simulate(&pipeline, 80))
    });
    c.bench_function("fig7_waveform/build_two_stage_pipeline", |b| {
        b.iter(|| ipcmos::flat_pipeline(2).expect("builds"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7
}
criterion_main!(benches);
