//! Scaling (§3.2): cost of building/exploring flat pipelines of growing
//! length versus the constant-size abstraction obligations, plus the cost
//! profile of the shared exploration core (sequential vs. parallel, zone
//! subsumption on vs. off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbm::{explore_timed_with, ExploreSpec, ZoneExplorationOptions};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/flat_pipeline_untimed_reachability");
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let pipeline = ipcmos::flat_pipeline(n).expect("pipeline builds");
                pipeline.underlying().reachable_states().len()
            })
        });
    }
    group.finish();
    c.bench_function("scaling/abstraction_obligation_fixed_point", |b| {
        b.iter(|| ipcmos::experiment_4().expect("experiment 4 builds"))
    });

    // Zone exploration of a 1-stage pipeline under the four interesting
    // driver configurations (bounded so a single iteration stays cheap).
    let pipeline = ipcmos::flat_pipeline(1).expect("pipeline builds");
    let mut group = c.benchmark_group("scaling/zone_exploration");
    for (name, threads, subsumption) in [
        ("sequential_subsumption", 1usize, true),
        ("sequential_exact", 1, false),
        ("parallel2_subsumption", 2, true),
        ("parallel4_subsumption", 4, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                explore_timed_with(
                    &pipeline,
                    ZoneExplorationOptions {
                        spec: ExploreSpec {
                            threads,
                            subsumption,
                            limit: Some(3_000),
                            ..ExploreSpec::default()
                        },
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scaling
}
criterion_main!(benches);
