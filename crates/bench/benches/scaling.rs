//! Scaling (§3.2): cost of building/exploring flat pipelines of growing
//! length versus the constant-size abstraction obligations, plus the cost
//! profile of the shared exploration core (sequential vs. parallel, and the
//! zone subsumption policies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbm::{explore_timed_with, ExploreSpec, Subsumption, ZoneExplorationOptions};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/flat_pipeline_untimed_reachability");
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let pipeline = ipcmos::flat_pipeline(n).expect("pipeline builds");
                pipeline.underlying().reachable_states().len()
            })
        });
    }
    group.finish();
    c.bench_function("scaling/abstraction_obligation_fixed_point", |b| {
        b.iter(|| ipcmos::experiment_4().expect("experiment 4 builds"))
    });

    // Zone exploration of a 1-stage pipeline under the five interesting
    // driver configurations (bounded so a single iteration stays cheap).
    let pipeline = ipcmos::flat_pipeline(1).expect("pipeline builds");
    let mut group = c.benchmark_group("scaling/zone_exploration");
    for (name, threads, subsumption) in [
        ("sequential_subsumption", 1usize, Subsumption::Inclusion),
        ("sequential_exact", 1, Subsumption::Exact),
        ("sequential_alu", 1, Subsumption::Alu),
        ("parallel2_subsumption", 2, Subsumption::Inclusion),
        ("parallel4_subsumption", 4, Subsumption::Inclusion),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                explore_timed_with(
                    &pipeline,
                    ZoneExplorationOptions {
                        spec: ExploreSpec {
                            threads,
                            subsumption,
                            limit: Some(3_000),
                            ..ExploreSpec::default()
                        },
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scaling
}
criterion_main!(benches);
