//! Scaling (§3.2): cost of building/exploring flat pipelines of growing
//! length versus the constant-size abstraction obligations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/flat_pipeline_untimed_reachability");
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let pipeline = ipcmos::flat_pipeline(n).expect("pipeline builds");
                pipeline.underlying().reachable_states().len()
            })
        });
    }
    group.finish();
    c.bench_function("scaling/abstraction_obligation_fixed_point", |b| {
        b.iter(|| ipcmos::experiment_4().expect("experiment 4 builds"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scaling
}
criterion_main!(benches);
