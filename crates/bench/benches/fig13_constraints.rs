//! Figure 13: back-annotation of relative-timing constraints for the strobe
//! switch — the CES extraction and max-separation machinery on the stage.

use ces::{CesBuilder, Occurrence, SeparationAnalysis};
use criterion::{criterion_group, criterion_main, Criterion};
use tts::{DelayInterval, EventId, Time};

fn strobe_switch_ces() -> ces::Ces {
    let d = |l, u| DelayInterval::new(Time::new(l), Time::new(u)).unwrap();
    let e = |i| EventId::from_index(i);
    let mut b = CesBuilder::new();
    // VALID- ; Vint- ; {Z+, CLKE-, ACK+} ; Y- ; ... (Fig. 13(a)/(b) prefix).
    let valid = b.add_node(Occurrence::first(e(0)), "VALID0-", d(0, 0));
    let vint = b.add_node(Occurrence::first(e(1)), "Vint-", d(1, 2));
    let z = b.add_node(Occurrence::first(e(2)), "Z+", d(1, 2));
    let clke = b.add_node(Occurrence::first(e(3)), "CLKE-", d(3, 4));
    let ack = b.add_node(Occurrence::first(e(4)), "ACK0+", d(8, 11));
    let y = b.add_node(Occurrence::first(e(5)), "Y-", d(1, 2));
    b.add_causal_arc(valid, vint);
    b.add_causal_arc(vint, z);
    b.add_causal_arc(vint, clke);
    b.add_causal_arc(vint, ack);
    b.add_causal_arc(ack, y);
    b.build().unwrap()
}

fn fig13(c: &mut Criterion) {
    let ces = strobe_switch_ces();
    c.bench_function("fig13/max_separation_all_pairs", |b| {
        b.iter(|| {
            let analysis = SeparationAnalysis::new(&ces);
            let nodes: Vec<_> = ces.nodes().collect();
            let mut count = 0usize;
            for &x in &nodes {
                for &y in &nodes {
                    if x != y && analysis.max_separation(x, y).is_negative() {
                        count += 1;
                    }
                }
            }
            count
        })
    });
    let stage = ipcmos::stage_model(1).expect("stage builds");
    c.bench_function("fig13/elaborate_stage_netlist", |b| {
        b.iter(|| ipcmos::stage_model(1).expect("stage builds"))
    });
    let _ = stage;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig13
}
criterion_main!(benches);
