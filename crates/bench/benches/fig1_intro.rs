//! Figure 1/2: the introductory example — one full relative-timing
//! verification (refinement loop) and the zone-based ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use transyt::{verify, SafetyProperty, VerifyOptions};

fn fig1_intro(c: &mut Criterion) {
    let timed = bench::intro_example();
    let property = SafetyProperty::new("g before d").forbid_marked_states();
    c.bench_function("fig1_intro/relative_timing_verification", |b| {
        b.iter(|| verify(&timed, &property, &VerifyOptions::default()))
    });
    c.bench_function("fig1_intro/zone_based_ground_truth", |b| {
        b.iter(|| dbm::explore_timed(&timed))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig1_intro
}
criterion_main!(benches);
