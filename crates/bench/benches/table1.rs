//! Table 1: the assume-guarantee obligations. Experiment 1 (abstract) is
//! benchmarked statistically; the heavier transistor-level obligations are
//! measured once per run by the `table1_report` binary.

use criterion::{criterion_group, criterion_main, Criterion};

fn table1(c: &mut Criterion) {
    c.bench_function("table1/experiment1_abstractions_vs_spec", |b| {
        b.iter(|| ipcmos::experiment_1().expect("experiment 1 builds"))
    });
    c.bench_function("table1/experiment4_fixed_point", |b| {
        b.iter(|| ipcmos::experiment_4().expect("experiment 4 builds"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table1
}
criterion_main!(benches);
