//! `transyt-gate` — admission control and scheduling for the verification
//! server.
//!
//! The server used to drain submissions through a raw unbounded FIFO: any
//! client could enqueue arbitrarily much work, and a burst of cheap
//! interactive requests had to wait behind every long batch exploration
//! already in line. This crate replaces that FIFO with a small, fully
//! deterministic scheduling layer:
//!
//! * [`Priority`] — three service classes (`interactive` > `batch` >
//!   `background`) with the same name/parse/Display shape the exploration
//!   options use, so CLI flags and query strings lower identically.
//! * [`Gate`] — a bounded multi-class queue. Admission is depth-checked
//!   ([`Gate::enqueue`] refuses when full — the server turns that into
//!   `429 Too Many Requests`); dispatch is strict priority **with aging**:
//!   every time a higher class bypasses a waiting lower class the bypass is
//!   counted, and after [`GateConfig::aging_threshold`] bypasses the
//!   starved class's head job is promoted and dispatched next. Batch work
//!   therefore always makes progress under a flood of interactive jobs,
//!   with a provable bound on how long it waits.
//! * [`LatencyRing`] — a fixed-size ring of recently observed job
//!   durations; [`retry_after`] combines its average with the current
//!   queue depth and worker count into the `Retry-After` estimate a
//!   rejected client is handed.
//!
//! Everything here is plain data behind the server's existing state mutex —
//! no threads, no clocks, no dependencies — so scheduling decisions are
//! reproducible in unit tests: the same arrival sequence always dispatches
//! in the same order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Service class of a submitted job. Dispatch order is strict priority
/// (`Interactive` first) tempered by aging — see [`Gate::pop`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive work: dispatched before everything else.
    Interactive,
    /// The default class for ordinary submissions.
    #[default]
    Batch,
    /// Bulk work that yields to everything else.
    Background,
}

impl Priority {
    /// All classes, highest priority first (the dispatch scan order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// The wire name (`interactive` / `batch` / `background`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Parses a wire name. `None` for unknown names.
    pub fn parse(name: &str) -> Option<Priority> {
        Priority::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning of a [`Gate`].
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum jobs waiting (running jobs do not count). Admission beyond
    /// this depth is refused.
    pub depth: usize,
    /// After this many bypasses by higher classes, a waiting class's head
    /// job is promoted and dispatched next (the anti-starvation valve).
    pub aging_threshold: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            depth: 64,
            aging_threshold: 4,
        }
    }
}

/// The bounded multi-class queue. All methods are O(queue length) or
/// better; the server calls them under its state mutex.
#[derive(Debug, Clone)]
pub struct Gate {
    config: GateConfig,
    queues: [VecDeque<usize>; 3],
    /// Per-class count of dispatches that bypassed this (non-empty) class.
    bypassed: [usize; 3],
}

impl Gate {
    /// An empty gate with the given tuning.
    pub fn new(config: GateConfig) -> Gate {
        Gate {
            config,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            bypassed: [0; 3],
        }
    }

    /// The tuning this gate was built with.
    pub fn config(&self) -> GateConfig {
        self.config
    }

    /// Total jobs waiting across all classes.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Jobs waiting in `priority`'s class.
    pub fn class_len(&self, priority: Priority) -> usize {
        self.queues[priority.index()].len()
    }

    /// Admits a job. Returns `false` — nothing is enqueued — when the gate
    /// is at depth.
    pub fn enqueue(&mut self, id: usize, priority: Priority) -> bool {
        if self.len() >= self.config.depth.max(1) {
            return false;
        }
        self.queues[priority.index()].push_back(id);
        true
    }

    /// Enqueues without the depth check — the recovery path: jobs replayed
    /// from a journal were admitted before the restart and must not be
    /// dropped, even if the configured depth shrank since.
    pub fn enqueue_unchecked(&mut self, id: usize, priority: Priority) {
        self.queues[priority.index()].push_back(id);
    }

    /// Which class the next [`pop`](Self::pop) will serve, if any: an aged
    /// class first (highest-priority among those over the threshold), else
    /// the highest-priority non-empty class.
    fn next_class(&self) -> Option<usize> {
        let aged = (0..self.queues.len()).find(|&c| {
            self.bypassed[c] >= self.config.aging_threshold.max(1) && !self.queues[c].is_empty()
        });
        aged.or_else(|| (0..self.queues.len()).find(|&c| !self.queues[c].is_empty()))
    }

    /// Dispatches the next job: strict priority, except that a class
    /// bypassed [`GateConfig::aging_threshold`] times is served first.
    /// Deterministic — the same arrival/pop sequence always yields the
    /// same order.
    pub fn pop(&mut self) -> Option<(usize, Priority)> {
        let chosen = self.next_class()?;
        for lower in chosen + 1..self.queues.len() {
            if !self.queues[lower].is_empty() {
                self.bypassed[lower] += 1;
            }
        }
        self.bypassed[chosen] = 0;
        let id = self.queues[chosen].pop_front().expect("class checked");
        Some((id, Priority::ALL[chosen]))
    }

    /// Removes a job wherever it waits (cancellation). Returns `true` when
    /// it was queued.
    pub fn remove(&mut self, id: usize) -> bool {
        for queue in &mut self.queues {
            if let Some(at) = queue.iter().position(|&queued| queued == id) {
                queue.remove(at);
                return true;
            }
        }
        false
    }

    /// Empties the gate, returning every waiting job in dispatch order
    /// (the order repeated [`pop`](Self::pop)s would have produced).
    pub fn drain(&mut self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        while let Some((id, _)) = self.pop() {
            order.push(id);
        }
        order
    }

    /// How many dispatches happen before `id`'s: 0 = next up. `None` when
    /// the job is not queued. Computed by simulating the deterministic
    /// dispatch order, so aging promotions are reflected exactly.
    pub fn position(&self, id: usize) -> Option<usize> {
        if !self.queues.iter().any(|q| q.contains(&id)) {
            return None;
        }
        let mut simulated = self.clone();
        let mut ahead = 0;
        while let Some((popped, _)) = simulated.pop() {
            if popped == id {
                return Some(ahead);
            }
            ahead += 1;
        }
        unreachable!("job was in a queue but never dispatched");
    }
}

/// A fixed-size ring of recently observed job durations, feeding the
/// [`retry_after`] estimate.
#[derive(Debug, Clone)]
pub struct LatencyRing {
    samples: VecDeque<Duration>,
    cap: usize,
}

impl Default for LatencyRing {
    fn default() -> Self {
        LatencyRing::new(32)
    }
}

impl LatencyRing {
    /// A ring keeping the `cap` most recent samples.
    pub fn new(cap: usize) -> LatencyRing {
        LatencyRing {
            samples: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Records one finished job's duration, evicting the oldest sample at
    /// capacity.
    pub fn record(&mut self, duration: Duration) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(duration);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no duration has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the held samples; `None` before the first record.
    pub fn average(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(total / self.samples.len() as u32)
    }
}

/// The `Retry-After` estimate handed to a rejected client:
/// `ceil(average duration × (queued + running) / workers)`, clamped to at
/// least one second. With no samples yet the average defaults to one
/// second — a fresh server suggests a short retry rather than none.
pub fn retry_after(
    recent: &LatencyRing,
    queued: usize,
    running: usize,
    workers: usize,
) -> Duration {
    let avg = recent.average().unwrap_or(Duration::from_secs(1));
    let backlog = (queued + running) as u32;
    let estimate = avg * backlog / workers.max(1) as u32;
    let ceil_secs = estimate
        .as_secs()
        .saturating_add(u64::from(estimate.subsec_nanos() > 0));
    Duration::from_secs(ceil_secs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(depth: usize, aging: usize) -> Gate {
        Gate::new(GateConfig {
            depth,
            aging_threshold: aging,
        })
    }

    #[test]
    fn priority_names_round_trip_and_order() {
        for priority in Priority::ALL {
            assert_eq!(Priority::parse(priority.name()), Some(priority));
            assert_eq!(priority.to_string(), priority.name());
        }
        assert_eq!(Priority::parse("bogus"), None);
        assert_eq!(Priority::default(), Priority::Batch);
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::Background);
    }

    #[test]
    fn admission_is_depth_bounded() {
        let mut gate = gate(2, 4);
        assert!(gate.enqueue(0, Priority::Batch));
        assert!(gate.enqueue(1, Priority::Interactive));
        assert!(!gate.enqueue(2, Priority::Interactive), "gate is at depth");
        assert_eq!(gate.len(), 2);
        gate.pop();
        assert!(gate.enqueue(2, Priority::Interactive), "a pop frees a slot");
    }

    #[test]
    fn dispatch_is_strict_priority_within_the_aging_window() {
        let mut gate = gate(16, 4);
        gate.enqueue(0, Priority::Background);
        gate.enqueue(1, Priority::Batch);
        gate.enqueue(2, Priority::Interactive);
        gate.enqueue(3, Priority::Interactive);
        assert_eq!(gate.pop(), Some((2, Priority::Interactive)));
        assert_eq!(gate.pop(), Some((3, Priority::Interactive)));
        assert_eq!(gate.pop(), Some((1, Priority::Batch)));
        assert_eq!(gate.pop(), Some((0, Priority::Background)));
        assert_eq!(gate.pop(), None);
    }

    #[test]
    fn aging_promotes_a_starved_class() {
        let mut gate = gate(64, 3);
        gate.enqueue(99, Priority::Batch);
        // A continuous interactive flood: after 3 bypasses the batch job
        // must be dispatched even though interactive work is still waiting.
        let mut order = Vec::new();
        for wave in 0..6 {
            gate.enqueue(wave, Priority::Interactive);
            let (id, _) = gate.pop().unwrap();
            order.push(id);
        }
        assert!(
            order.contains(&99),
            "batch job starved by interactive flood: {order:?}"
        );
        assert_eq!(order[..3], [0, 1, 2], "strict priority up to the threshold");
        assert_eq!(order[3], 99, "promotion fires exactly at the threshold");
    }

    #[test]
    fn aging_counts_reset_after_service() {
        let mut gate = gate(64, 2);
        gate.enqueue(0, Priority::Background);
        gate.enqueue(1, Priority::Background);
        for wave in 10..16 {
            gate.enqueue(wave, Priority::Interactive);
        }
        let order: Vec<usize> = std::iter::from_fn(|| gate.pop().map(|(id, _)| id)).collect();
        // Two bypasses, a promotion, two more bypasses, the next promotion.
        assert_eq!(order, vec![10, 11, 0, 12, 13, 1, 14, 15]);
    }

    #[test]
    fn position_reflects_the_simulated_dispatch_order() {
        let mut gate = gate(64, 2);
        gate.enqueue(0, Priority::Background);
        gate.enqueue(1, Priority::Interactive);
        gate.enqueue(2, Priority::Interactive);
        gate.enqueue(3, Priority::Interactive);
        // Aging threshold 2: after jobs 1 and 2 bypass it, job 0 is served
        // before job 3.
        assert_eq!(gate.position(1), Some(0));
        assert_eq!(gate.position(2), Some(1));
        assert_eq!(gate.position(0), Some(2));
        assert_eq!(gate.position(3), Some(3));
        assert_eq!(gate.position(42), None);
        // The simulation leaves the real gate untouched.
        assert_eq!(gate.pop(), Some((1, Priority::Interactive)));
    }

    #[test]
    fn remove_and_drain_clear_waiting_jobs() {
        let mut gate = gate(64, 4);
        gate.enqueue(0, Priority::Batch);
        gate.enqueue(1, Priority::Interactive);
        gate.enqueue(2, Priority::Background);
        assert!(gate.remove(0));
        assert!(!gate.remove(0), "already removed");
        assert_eq!(gate.drain(), vec![1, 2]);
        assert!(gate.is_empty());
        assert_eq!(gate.class_len(Priority::Interactive), 0);
    }

    #[test]
    fn retry_after_scales_with_backlog_and_floors_at_one_second() {
        let mut ring = LatencyRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.average(), None);
        // No samples: the 1s default average still produces an estimate.
        assert_eq!(retry_after(&ring, 0, 0, 2), Duration::from_secs(1));
        for millis in [2_000, 4_000] {
            ring.record(Duration::from_millis(millis));
        }
        assert_eq!(ring.average(), Some(Duration::from_secs(3)));
        // avg 3s × backlog 4 / 2 workers = 6s.
        assert_eq!(retry_after(&ring, 3, 1, 2), Duration::from_secs(6));
        // Fractional estimates round up.
        assert_eq!(retry_after(&ring, 1, 0, 2), Duration::from_secs(2));
        // The floor holds even for tiny jobs.
        let mut fast = LatencyRing::new(4);
        fast.record(Duration::from_millis(1));
        assert_eq!(retry_after(&fast, 1, 0, 8), Duration::from_secs(1));
    }

    #[test]
    fn ring_keeps_only_the_most_recent_samples() {
        let mut ring = LatencyRing::new(2);
        ring.record(Duration::from_secs(100));
        ring.record(Duration::from_secs(2));
        ring.record(Duration::from_secs(4));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.average(), Some(Duration::from_secs(3)));
    }
}
