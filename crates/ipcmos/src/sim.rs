//! Pulse-level simulation of IPCMOS pipelines.
//!
//! A small discrete-event simulator that executes the timed transition system
//! of a closed pipeline with an as-soon-as-possible policy (every enabled
//! event fires at its lower delay bound, earliest deadline first). It is used
//! to regenerate the two-stage waveform of Fig. 7 of the paper and by the
//! `waveform` example.

use std::collections::HashMap;

use tts::{EventId, SignalEdge, StateId, Time, TimedTransitionSystem};

/// One fired event of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimEvent {
    /// Firing time.
    pub time: Time,
    /// Name of the fired event.
    pub event: String,
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    events: Vec<SimEvent>,
}

impl SimTrace {
    /// Builds a trace from pre-computed events (e.g. a verifier's witness run
    /// annotated with firing times), so any timed trace can reuse the
    /// [`waveform`](Self::waveform) rendering.
    pub fn from_events(events: Vec<SimEvent>) -> Self {
        SimTrace { events }
    }

    /// The fired events in firing order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// The firing times of a particular event name.
    pub fn times_of(&self, event: &str) -> Vec<Time> {
        self.events
            .iter()
            .filter(|e| e.event == event)
            .map(|e| e.time)
            .collect()
    }

    /// Renders an ASCII waveform of the given signals (one row per signal,
    /// one column per fired event), in the style of Fig. 7 of the paper.
    pub fn waveform(&self, signals: &[&str], initial: &HashMap<String, bool>) -> String {
        let mut out = String::new();
        let columns = self.events.len();
        for &signal in signals {
            let mut value = initial.get(signal).copied().unwrap_or(true);
            let mut row = format!("{signal:>8} ");
            for event in &self.events {
                if let Some(edge) = SignalEdge::parse(&event.event) {
                    if edge.signal() == signal {
                        value = edge.polarity().target_value();
                    }
                }
                row.push(if value { '#' } else { '_' });
            }
            out.push_str(&row);
            out.push('\n');
        }
        let mut time_row = String::from("    time ");
        for event in &self.events {
            time_row.push_str(&format!("{}", event.time.as_i64() % 10));
        }
        out.push_str(&time_row);
        out.push('\n');
        let _ = columns;
        out
    }
}

/// Simulates `timed` for at most `max_events` firings using an ASAP policy.
///
/// Every enabled event is scheduled at `enabling time + lower bound`; the
/// earliest scheduled event fires (ties broken by event id for determinism).
pub fn simulate(timed: &TimedTransitionSystem, max_events: usize) -> SimTrace {
    let ts = timed.underlying();
    let mut state: StateId = ts.initial_states()[0];
    let mut now = Time::ZERO;
    // Enabling time per currently enabled event.
    let mut enabled_since: HashMap<EventId, Time> = HashMap::new();
    for &e in &ts.enabled(state) {
        enabled_since.insert(e, now);
    }
    let mut events = Vec::new();
    for _ in 0..max_events {
        // Pick the enabled event with the earliest possible firing time.
        let mut best: Option<(Time, EventId)> = None;
        for (&event, &since) in &enabled_since {
            let ready = since + timed.delay(event).lower();
            let candidate = (ready, event);
            if best.is_none_or(|b| candidate < b) {
                best = Some(candidate);
            }
        }
        let Some((fire_time, event)) = best else {
            break;
        };
        now = now.max(fire_time);
        let Some(&target) = ts.successors(state, event).first() else {
            break;
        };
        events.push(SimEvent {
            time: now,
            event: ts.alphabet().name(event).to_owned(),
        });
        // Update the enabled set.
        let previously_enabled = ts.enabled(state);
        state = target;
        let now_enabled = ts.enabled(state);
        enabled_since.retain(|e, _| now_enabled.contains(e));
        for &e in &now_enabled {
            if e == event || !previously_enabled.contains(&e) {
                enabled_since.insert(e, now);
            } else {
                enabled_since.entry(e).or_insert(now);
            }
        }
    }
    SimTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::flat_pipeline;

    #[test]
    fn two_stage_pipeline_moves_data() {
        let pipeline = flat_pipeline(2).unwrap();
        let trace = simulate(&pipeline, 80);
        assert!(trace.events().len() >= 40);
        // The supplier offers data, both stages acknowledge, and the consumer
        // acknowledges at the end of the pipeline (Fig. 7 behaviour).
        assert!(!trace.times_of("VALID0-").is_empty());
        assert!(!trace.times_of("ACK0+").is_empty());
        assert!(!trace.times_of("VALID2-").is_empty());
        assert!(!trace.times_of("ACK2+").is_empty());
        // Causality: the first acknowledge of the consumer follows the first
        // VALID pulse of the second stage.
        let v2 = trace.times_of("VALID2-")[0];
        let a2 = trace.times_of("ACK2+")[0];
        assert!(a2 > v2);
        // At least two data items make it through within the horizon.
        assert!(trace.times_of("VALID0-").len() >= 2);
    }

    #[test]
    fn waveform_renders_all_requested_signals() {
        let pipeline = flat_pipeline(1).unwrap();
        let trace = simulate(&pipeline, 30);
        let initial = HashMap::from([
            ("VALID0".to_owned(), true),
            ("ACK0".to_owned(), false),
            ("VALID1".to_owned(), true),
            ("ACK1".to_owned(), false),
        ]);
        let art = trace.waveform(&["VALID0", "ACK0", "VALID1", "ACK1"], &initial);
        assert_eq!(art.lines().count(), 5);
        assert!(art.contains("VALID0"));
        assert!(art.contains('_'));
        assert!(art.contains('#'));
    }
}
