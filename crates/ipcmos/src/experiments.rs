//! The verification experiments of the paper (Table 1 and §4.2/§5).
//!
//! Five obligations establish the correctness of IPCMOS pipelines of any
//! length:
//!
//! 1. `A_in ∥ A_out ⊑ S` — the abstractions satisfy the specification.
//! 2. `A_in ∥ I ∥ OUT ⊑ A_in ∥ A_out` — guarantee the correctness of `A_out`
//!    (watched output: `ACK` of the left interface).
//! 3. `IN ∥ I ∥ A_out ⊑ A_in ∥ A_out` — guarantee the correctness of `A_in`
//!    abstracting the supplier plus one stage (watched output: the right
//!    `VALID`).
//! 4. `A_in ∥ I ∥ A_out ⊑ A_in ∥ A_out` — `A_in` is a behavioural fixed
//!    point: the induction step that extends the result to any `n ≥ 2`.
//! 5. `IN ∥ I ∥ OUT ⊑ S` — the transistor-level verification of a single
//!    stage between pulse-driven environments (short circuits, persistency,
//!    deadlock-freedom).

use std::time::Instant;

use transyt::{
    check_refinement, verify, ProofReport, ProofStep, RefinementObligation, SafetyProperty,
    Verdict, VerificationReport, VerifyOptions,
};
use tts::{compose, compose_timed_all, ComposeError, TimedTransitionSystem, TransitionSystem};

use crate::env::{a_in, a_out, in_env, out_env, spec, Interface};
use crate::stage::{stage_model, StageSignals};

/// Error raised while building an experiment's model.
#[derive(Debug)]
pub enum ExperimentError {
    /// A model could not be built.
    Model(String),
    /// A composition failed.
    Compose(ComposeError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Model(msg) => write!(f, "model construction failed: {msg}"),
            ExperimentError::Compose(e) => write!(f, "composition failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ComposeError> for ExperimentError {
    fn from(e: ComposeError) -> Self {
        ExperimentError::Compose(e)
    }
}

fn model_err<E: std::fmt::Display>(e: E) -> ExperimentError {
    ExperimentError::Model(e.to_string())
}

/// The untimed abstraction of the whole pipeline: `A_in ∥ A_out` on
/// interface 0.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn abstract_pipeline() -> Result<TransitionSystem, ExperimentError> {
    Ok(compose(
        &a_in(0).map_err(model_err)?,
        &a_out(0).map_err(model_err)?,
    )?)
}

/// Experiment 1: `A_in ∥ A_out ⊑ S` (plus deadlock-freedom of the closed
/// abstract system).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_1() -> Result<Verdict, ExperimentError> {
    experiment_1_with(&VerifyOptions::default())
}

/// [`experiment_1`] with explicit verification options (e.g. a
/// parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_1_with(options: &VerifyOptions) -> Result<Verdict, ExperimentError> {
    let closed = TimedTransitionSystem::new(abstract_pipeline()?);
    let observer = spec(0).map_err(model_err)?;
    let interface = Interface::new(0);
    let obligation = RefinementObligation {
        implementation: &closed,
        abstraction: &observer,
        watched: vec![interface.valid_fall.clone(), interface.ack_rise.clone()],
    };
    let containment = check_refinement(&obligation, options).map_err(model_err)?;
    if !containment.is_verified() {
        return Ok(containment);
    }
    // Deadlock-freedom of the closed abstract system (the liveness half of S).
    let deadlock = verify(
        &closed,
        &SafetyProperty::new("A_in || A_out deadlock-free").require_deadlock_freedom(),
        options,
    );
    if deadlock.is_verified() {
        Ok(containment)
    } else {
        Ok(deadlock)
    }
}

/// Experiment 2: `A_in ∥ I ∥ OUT ⊑ A_in ∥ A_out`, checking the `ACK` output
/// of the left interface against `A_out`.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_2() -> Result<Verdict, ExperimentError> {
    experiment_2_with(&VerifyOptions::default())
}

/// [`experiment_2`] with explicit verification options (e.g. a
/// parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_2_with(options: &VerifyOptions) -> Result<Verdict, ExperimentError> {
    let stage = stage_model(1).map_err(model_err)?;
    let left = TimedTransitionSystem::new(a_in(0).map_err(model_err)?);
    let right = out_env(1).map_err(model_err)?;
    let closed = compose_timed_all(&[&left, stage.timed(), &right])?;
    let abstraction = a_out(0).map_err(model_err)?;
    let interface = Interface::new(0);
    let obligation = RefinementObligation {
        implementation: &closed,
        abstraction: &abstraction,
        watched: vec![interface.ack_rise.clone(), interface.ack_fall.clone()],
    };
    check_refinement(&obligation, options).map_err(model_err)
}

/// Experiment 3: `IN ∥ I ∥ A_out ⊑ A_in ∥ A_out`, checking the `VALID`
/// output of the right interface against `A_in`.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_3() -> Result<Verdict, ExperimentError> {
    experiment_3_with(&VerifyOptions::default())
}

/// [`experiment_3`] with explicit verification options (e.g. a
/// parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_3_with(options: &VerifyOptions) -> Result<Verdict, ExperimentError> {
    let stage = stage_model(1).map_err(model_err)?;
    let left = in_env(0).map_err(model_err)?;
    let right = TimedTransitionSystem::new(a_out(1).map_err(model_err)?);
    let closed = compose_timed_all(&[&left, stage.timed(), &right])?;
    let abstraction = a_in(1).map_err(model_err)?;
    let interface = Interface::new(1);
    let obligation = RefinementObligation {
        implementation: &closed,
        abstraction: &abstraction,
        watched: vec![interface.valid_fall.clone(), interface.valid_rise.clone()],
    };
    check_refinement(&obligation, options).map_err(model_err)
}

/// Experiment 4: `A_in ∥ I ∥ A_out ⊑ A_in ∥ A_out` — the behavioural fixed
/// point that closes the induction over the pipeline length.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_4() -> Result<Verdict, ExperimentError> {
    experiment_4_with(&VerifyOptions::default())
}

/// [`experiment_4`] with explicit verification options (e.g. a
/// parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_4_with(options: &VerifyOptions) -> Result<Verdict, ExperimentError> {
    let stage = stage_model(1).map_err(model_err)?;
    let left = TimedTransitionSystem::new(a_in(0).map_err(model_err)?);
    let right = TimedTransitionSystem::new(a_out(1).map_err(model_err)?);
    let closed = compose_timed_all(&[&left, stage.timed(), &right])?;
    let abstraction = a_in(1).map_err(model_err)?;
    let interface = Interface::new(1);
    let obligation = RefinementObligation {
        implementation: &closed,
        abstraction: &abstraction,
        watched: vec![interface.valid_fall.clone(), interface.valid_rise.clone()],
    };
    check_refinement(&obligation, options).map_err(model_err)
}

/// Experiment 5: transistor-level verification of a 1-stage pipeline between
/// pulse-driven environments: no short circuits, persistency of the internal
/// events and deadlock-freedom.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_5() -> Result<Verdict, ExperimentError> {
    experiment_5_with(&VerifyOptions::default())
}

/// [`experiment_5`] with explicit verification options (e.g. a
/// parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn experiment_5_with(options: &VerifyOptions) -> Result<Verdict, ExperimentError> {
    let stage = stage_model(1).map_err(model_err)?;
    let left = in_env(0).map_err(model_err)?;
    let right = out_env(1).map_err(model_err)?;
    let closed = compose_timed_all(&[&left, stage.timed(), &right])?;
    let property = SafetyProperty::new("IN || I || OUT |= S (transistor level)")
        .forbid_marked_states()
        .require_deadlock_freedom()
        .require_persistency(stage.persistent_events().iter().cloned());
    Ok(verify(&closed, &property, options))
}

/// Runs the five experiments of Table 1 and returns the proof report.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn table_1() -> Result<ProofReport, ExperimentError> {
    table_1_with(&VerifyOptions::default())
}

/// [`table_1`] with explicit verification options shared by all five
/// obligations (e.g. a parallel exploration thread count).
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built.
pub fn table_1_with(options: &VerifyOptions) -> Result<ProofReport, ExperimentError> {
    type Experiment = fn(&VerifyOptions) -> Result<Verdict, ExperimentError>;
    let mut report = ProofReport::new();
    let experiments: [(&str, Experiment); 5] = [
        ("A_in || A_out |= S", experiment_1_with),
        ("A_in || I || OUT <= A_in || A_out", experiment_2_with),
        ("IN || I || A_out <= A_in || A_out", experiment_3_with),
        (
            "A_in || I || A_out <= A_in || A_out (fixed point)",
            experiment_4_with,
        ),
        ("IN || I || OUT |= S (transistor level)", experiment_5_with),
    ];
    for (name, run) in experiments {
        let started = Instant::now();
        let verdict = run(options)?;
        report.push(ProofStep::new(name, verdict, started.elapsed()));
    }
    Ok(report)
}

/// The closed, timed model of a flat `n`-stage pipeline between `IN` and
/// `OUT` (no abstractions) — the workload of the scaling comparison.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a model cannot be built or composed.
pub fn flat_pipeline(n: usize) -> Result<TimedTransitionSystem, ExperimentError> {
    assert!(n > 0, "a pipeline needs at least one stage");
    let mut systems: Vec<TimedTransitionSystem> = Vec::with_capacity(n + 2);
    systems.push(in_env(0).map_err(model_err)?);
    for k in 1..=n {
        systems.push(stage_model(k).map_err(model_err)?.into_timed());
    }
    systems.push(out_env(n).map_err(model_err)?);
    let refs: Vec<&TimedTransitionSystem> = systems.iter().collect();
    Ok(compose_timed_all(&refs)?)
}

/// Persistency set for a flat `n`-stage pipeline (all internal edges of all
/// stages).
pub fn flat_pipeline_persistent_events(n: usize) -> Vec<String> {
    let mut events = Vec::new();
    for k in 1..=n {
        let signals = StageSignals::new(k);
        for node in signals
            .internal
            .iter()
            .chain([&signals.ack_out, &signals.valid_out])
        {
            events.push(format!("{node}+"));
            events.push(format!("{node}-"));
        }
    }
    events
}

/// Convenience accessor: number of refinements of a verdict (reported in the
/// Table 1 reproduction).
pub fn refinement_count(verdict: &Verdict) -> usize {
    verdict.report().refinements
}

/// Convenience accessor for the report of a verdict.
pub fn verification_report(verdict: &Verdict) -> &VerificationReport {
    verdict.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstract_pipeline_is_small_and_live() {
        let closed = abstract_pipeline().unwrap();
        assert!(closed.state_count() <= 32);
        assert!(closed.deadlock_states().is_empty());
    }

    #[test]
    fn experiment_1_verifies_without_refinement() {
        let verdict = experiment_1().unwrap();
        assert!(verdict.is_verified(), "experiment 1 failed: {verdict}");
        assert_eq!(refinement_count(&verdict), 0);
    }

    #[test]
    fn experiment_4_fixed_point_holds() {
        let verdict = experiment_4().unwrap();
        assert!(verdict.is_verified(), "experiment 4 failed: {verdict}");
    }

    #[test]
    fn flat_two_stage_pipeline_composes() {
        let pipeline = flat_pipeline(2).unwrap();
        assert!(pipeline.underlying().state_count() > 100);
        assert!(!flat_pipeline_persistent_events(2).is_empty());
    }
}
