//! Environment models, abstractions and the interface specification.
//!
//! * [`in_env`] / [`out_env`] — the pulse-driven data supplier `IN` and data
//!   consumer `OUT` of Fig. 12, with the pulse-width and spacing requirements
//!   described in §5.2 (minimum `VALID` pulse width, minimum positive `ACK`
//!   pulse width).
//! * [`a_in`] / [`a_out`] — the untimed abstractions of Fig. 10, which hide
//!   the pulse-driven ends of the pipeline behind the internal two-phase
//!   handshake.
//! * [`spec`] — the interface specification `S`: every data item offered with
//!   a falling `VALID` edge is acknowledged once and only once by a rising
//!   `ACK` edge (the liveness half is checked as deadlock-freedom of the
//!   closed system, as in §3.2 of the paper).

use stg::{expand, ExpandError, SignalRole, StgBuilder};
use tts::{DelayInterval, Time, TimedTransitionSystem, TransitionSystem};

fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).expect("static delay interval")
}

fn at_least(l: i64) -> DelayInterval {
    DelayInterval::at_least(Time::new(l)).expect("static delay interval")
}

/// Names of the four edges of a `VALID`/`ACK` interface `i` of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Falling edge of `VALID{i}` (new data offered).
    pub valid_fall: String,
    /// Rising edge of `VALID{i}` (pulse reset).
    pub valid_rise: String,
    /// Rising edge of `ACK{i}` (data acknowledged).
    pub ack_rise: String,
    /// Falling edge of `ACK{i}` (pulse reset).
    pub ack_fall: String,
}

impl Interface {
    /// The interface between pipeline position `i` and `i+1` (interface 0 is
    /// the pipeline input).
    pub fn new(i: usize) -> Self {
        Interface {
            valid_fall: format!("VALID{i}-"),
            valid_rise: format!("VALID{i}+"),
            ack_rise: format!("ACK{i}+"),
            ack_fall: format!("ACK{i}-"),
        }
    }
}

/// The pulse-driven data supplier `IN`, speaking on interface `i`
/// (Fig. 12, left).
///
/// `IN` lowers `VALID`, keeps the pulse low for at least the minimum pulse
/// width, and does not offer new data until the stage has acknowledged the
/// previous item.
///
/// # Errors
///
/// Returns [`ExpandError`] only if the internal net is malformed (a bug).
pub fn in_env(i: usize) -> Result<TimedTransitionSystem, ExpandError> {
    let interface = Interface::new(i);
    let mut b = StgBuilder::new(format!("IN@{i}"));
    let v_fall = b.add_transition(&interface.valid_fall, SignalRole::Output);
    let v_rise = b.add_transition(&interface.valid_rise, SignalRole::Output);
    let a_rise = b.add_transition(&interface.ack_rise, SignalRole::Input);
    let a_fall = b.add_transition(&interface.ack_fall, SignalRole::Input);
    // VALID- starts the pulse; VALID+ ends it; the stage acknowledges with
    // ACK+ and resets ACK independently.
    b.connect(v_fall, v_rise, 0);
    b.connect(v_fall, a_rise, 0);
    b.connect(a_rise, a_fall, 0);
    // New data only after the pulse is over and the item was acknowledged.
    b.connect(v_rise, v_fall, 1);
    b.connect(a_rise, v_fall, 1);
    // ACK edges alternate.
    b.connect(a_fall, a_rise, 1);
    let ts = expand(&b.build().expect("IN net is well formed"))?;
    let mut timed = TimedTransitionSystem::new(ts);
    // Minimum spacing before offering new data, and the VALID pulse width:
    // the pulse must be long enough for the stage to capture it (lower bound
    // 15, cf. the [15+eps, inf) annotation of Fig. 13) and — the "pulse
    // length" restriction §3.1 places on the environment — short enough that
    // the pulse has ended before the stage re-arms its input switch for the
    // next data item.
    timed.set_delay_by_name(&interface.valid_fall, at_least(5));
    timed.set_delay_by_name(&interface.valid_rise, d(15, 20));
    Ok(timed)
}

/// The pulse-driven data consumer `OUT`, speaking on interface `i`
/// (Fig. 12, right).
///
/// `OUT` acknowledges a low `VALID` with a positive `ACK` pulse of bounded
/// width (the minimum width requirement of §5.2).
///
/// # Errors
///
/// Returns [`ExpandError`] only if the internal net is malformed (a bug).
pub fn out_env(i: usize) -> Result<TimedTransitionSystem, ExpandError> {
    let interface = Interface::new(i);
    let mut b = StgBuilder::new(format!("OUT@{i}"));
    let v_fall = b.add_transition(&interface.valid_fall, SignalRole::Input);
    let v_rise = b.add_transition(&interface.valid_rise, SignalRole::Input);
    let a_rise = b.add_transition(&interface.ack_rise, SignalRole::Output);
    let a_fall = b.add_transition(&interface.ack_fall, SignalRole::Output);
    // Acknowledge incoming data; reset the acknowledge after the minimum
    // pulse width; only acknowledge again after new data.
    b.connect(v_fall, a_rise, 0);
    b.connect(a_rise, a_fall, 0);
    b.connect(a_fall, a_rise, 1);
    // Track the VALID pulse of the stage (edges alternate), and assume the
    // interlocking property of the stage: no new data before the previous
    // item was acknowledged.
    b.connect(v_fall, v_rise, 0);
    b.connect(v_rise, v_fall, 1);
    b.connect(a_rise, v_fall, 1);
    let ts = expand(&b.build().expect("OUT net is well formed"))?;
    let mut timed = TimedTransitionSystem::new(ts);
    timed.set_delay_by_name(&interface.ack_rise, d(8, 11));
    timed.set_delay_by_name(&interface.ack_fall, d(6, 10));
    Ok(timed)
}

/// The untimed abstraction `A_in` of `IN ∥ I_1 ∥ … ∥ I_{n-1}` speaking the
/// two-phase handshake on interface `i` (Fig. 10(a)).
///
/// `VALID` is lowered to offer data and is not raised before the data is
/// acknowledged; the resets of `VALID` and `ACK` are mutually independent.
///
/// # Errors
///
/// Returns [`ExpandError`] only if the internal net is malformed (a bug).
pub fn a_in(i: usize) -> Result<TransitionSystem, ExpandError> {
    let interface = Interface::new(i);
    let mut b = StgBuilder::new(format!("A_in@{i}"));
    let v_fall = b.add_transition(&interface.valid_fall, SignalRole::Output);
    let v_rise = b.add_transition(&interface.valid_rise, SignalRole::Output);
    let a_rise = b.add_transition(&interface.ack_rise, SignalRole::Input);
    let a_fall = b.add_transition(&interface.ack_fall, SignalRole::Input);
    b.connect(v_fall, a_rise, 0);
    b.connect(a_rise, v_rise, 0);
    b.connect(a_rise, a_fall, 0);
    b.connect(v_rise, v_fall, 1);
    b.connect(a_fall, v_fall, 1);
    expand(&b.build().expect("A_in net is well formed"))
}

/// The untimed abstraction `A_out` of `I_n ∥ OUT` on interface `i`
/// (Fig. 10(b)).
///
/// A low `VALID` is acknowledged exactly once by a rising `ACK`; the resets
/// of the two lines are independent.
///
/// # Errors
///
/// Returns [`ExpandError`] only if the internal net is malformed (a bug).
pub fn a_out(i: usize) -> Result<TransitionSystem, ExpandError> {
    let interface = Interface::new(i);
    let mut b = StgBuilder::new(format!("A_out@{i}"));
    let v_fall = b.add_transition(&interface.valid_fall, SignalRole::Input);
    let v_rise = b.add_transition(&interface.valid_rise, SignalRole::Input);
    let a_rise = b.add_transition(&interface.ack_rise, SignalRole::Output);
    let a_fall = b.add_transition(&interface.ack_fall, SignalRole::Output);
    b.connect(v_fall, a_rise, 0);
    b.connect(a_rise, a_fall, 0);
    b.connect(a_fall, a_rise, 1);
    b.connect(v_fall, v_rise, 0);
    b.connect(v_rise, v_fall, 1);
    b.connect(a_rise, v_fall, 1);
    expand(&b.build().expect("A_out net is well formed"))
}

/// The interface specification `S` on interface `i`, used as an observer:
/// falling `VALID` edges and rising `ACK` edges strictly alternate, i.e.
/// every data item is acknowledged once and only once.
///
/// # Errors
///
/// Returns [`ExpandError`] only if the internal net is malformed (a bug).
pub fn spec(i: usize) -> Result<TransitionSystem, ExpandError> {
    let interface = Interface::new(i);
    let mut b = StgBuilder::new(format!("S@{i}"));
    let v_fall = b.add_transition(&interface.valid_fall, SignalRole::Input);
    let a_rise = b.add_transition(&interface.ack_rise, SignalRole::Input);
    b.connect(v_fall, a_rise, 0);
    b.connect(a_rise, v_fall, 1);
    expand(&b.build().expect("S net is well formed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_name_edges_consistently() {
        let i = Interface::new(3);
        assert_eq!(i.valid_fall, "VALID3-");
        assert_eq!(i.ack_fall, "ACK3-");
    }

    #[test]
    fn environments_expand_to_small_graphs() {
        let input = in_env(0).unwrap();
        assert!(input.underlying().state_count() <= 16);
        assert!(input.underlying().deadlock_states().is_empty());
        assert_eq!(input.delay_by_name("VALID0+"), d(15, 20));
        let output = out_env(1).unwrap();
        assert!(output.underlying().state_count() <= 16);
        assert_eq!(output.delay_by_name("ACK1+"), d(8, 11));
    }

    #[test]
    fn abstractions_are_untimed_and_live() {
        for ts in [a_in(0).unwrap(), a_out(0).unwrap()] {
            assert!(ts.deadlock_states().is_empty());
            assert!(ts.state_count() <= 16);
        }
    }

    #[test]
    fn abstractions_compose_into_a_live_closed_system() {
        // Experiment 1 sanity: A_in || A_out is a closed, live system.
        let closed = tts::compose(&a_in(0).unwrap(), &a_out(0).unwrap()).unwrap();
        assert!(closed.deadlock_states().is_empty());
        assert!(closed.state_count() <= 32);
    }

    #[test]
    fn spec_observer_alternates() {
        let s = spec(0).unwrap();
        assert_eq!(s.state_count(), 2);
        assert_eq!(s.transition_count(), 2);
    }

    #[test]
    fn supplier_waits_for_acknowledge() {
        let input = in_env(0).unwrap();
        let ts = input.underlying();
        // From the initial state only VALID0- can fire.
        let s0 = ts.initial_states()[0];
        let enabled = ts.enabled(s0);
        assert_eq!(enabled.len(), 1);
        assert_eq!(
            ts.alphabet().name(*enabled.iter().next().unwrap()),
            "VALID0-"
        );
    }
}
