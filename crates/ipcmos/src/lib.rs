//! IPCMOS: models and experiments of the DATE 2002 verification case study.
//!
//! The Asynchronous Interlocked Pipelined CMOS (IPCMOS) architecture
//! (Schuster et al., ISSCC 2000) clocks large datapaths at GHz frequencies
//! with a pulse-based interlocking scheme. This crate provides everything
//! that is specific to the case study:
//!
//! * [`stage_circuit`] / [`stage_model`] — a reconstructed transistor-level
//!   control stage (strobe switch, strobe, reset and valid paths) with the
//!   short-circuit invariants and delay structure of §5 of the paper,
//! * [`in_env`] / [`out_env`] — the pulse-driven environments of Fig. 12,
//! * [`a_in`] / [`a_out`] / [`spec`] — the untimed abstractions of Fig. 10
//!   and the interface specification `S`,
//! * [`table_1`] and `experiment_1` … `experiment_5` — the assume–guarantee
//!   proof of §4.2 plus the transistor-level verification of §5,
//! * [`flat_pipeline`] and [`simulate`] — flat (abstraction-free) pipelines
//!   for the scaling comparison and the pulse-level simulator behind the
//!   Fig. 7 waveform.
//!
//! # Example
//!
//! ```no_run
//! // Run the first obligation of Table 1 (abstractions satisfy the spec).
//! let verdict = ipcmos::experiment_1()?;
//! assert!(verdict.is_verified());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod env;
mod experiments;
mod export;
mod sim;
mod stage;

pub use env::{a_in, a_out, in_env, out_env, spec, Interface};
pub use experiments::{
    abstract_pipeline, experiment_1, experiment_1_with, experiment_2, experiment_2_with,
    experiment_3, experiment_3_with, experiment_4, experiment_4_with, experiment_5,
    experiment_5_with, flat_pipeline, flat_pipeline_persistent_events, refinement_count, table_1,
    table_1_with, verification_report, ExperimentError,
};
pub use export::{pipeline_stg, StgPipelineModel};
pub use sim::{simulate, SimEvent, SimTrace};
pub use stage::{stage_circuit, stage_model, transistor_count, StageSignals};
