//! Transistor-level model of one IPCMOS pipeline stage.
//!
//! The DATE 2002 paper publishes the structure of the strobe-switch circuit
//! (Fig. 11) with nodes `Y`, `Z`, `Vint` (the auxiliary node `X` of the figure
//! is lumped into the acknowledge path here), the short-circuit invariants
//! of §5.1, and the transistor-count formula `N = 21 + 7·N_in + 4·N_out`; the
//! remaining modules (strobe, reset, valid, delay matching) are only
//! described behaviourally. This module reconstructs a transistor-level
//! control stage that
//!
//! * follows the pulse protocol of §3.1 (negative `VALID` pulses, positive
//!   `ACK` pulses, internal two-phase handshake between stages),
//! * contains the strobe-switch nodes and the two short-circuit invariants of
//!   §5.1 (`Z̄ ∧ ACK` at node `Y`, `V̄ALID ∧ Y ∧ C̄LKR` at node `Vint`),
//! * reproduces the delay structure of Fig. 13 (e.g. the acknowledge chain is
//!   a lumped `[8,11]` path racing against the `[1,2]` switch transistors),
//!
//! so that verifying it exercises exactly the relative-timing constraints the
//! paper back-annotates. The lumped strobe/delay/valid paths are modelled as
//! buffer stacks; `DESIGN.md` documents this substitution.

use cmos_circuit::{
    elaborate, Circuit, CircuitBuilder, CircuitError, CircuitModel, DriveStrength, ElaborateError,
    ElaborateOptions,
};
use tts::{DelayInterval, Time};

/// Signal names of one stage instance.
///
/// Stage `k` of a linear pipeline talks to its data supplier over
/// `VALID{k-1}` / `ACK{k-1}` and to its data consumer over `VALID{k}` /
/// `ACK{k}`; its internal nodes carry the suffix `_{k}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSignals {
    /// Stage index (1-based).
    pub index: usize,
    /// `VALID` input from the supplier (active-low pulse).
    pub valid_in: String,
    /// `ACK` output to the supplier (active-high pulse).
    pub ack_out: String,
    /// `VALID` output to the consumer.
    pub valid_out: String,
    /// `ACK` input from the consumer.
    pub ack_in: String,
    /// Internal nodes, in declaration order.
    pub internal: Vec<String>,
}

impl StageSignals {
    /// Signal names for stage `index` (1-based).
    pub fn new(index: usize) -> Self {
        let internal = ["Vint", "Z", "Y", "CLKE", "W", "CLKR"]
            .iter()
            .map(|n| format!("{n}_{index}"))
            .collect();
        StageSignals {
            index,
            valid_in: format!("VALID{}", index - 1),
            ack_out: format!("ACK{}", index - 1),
            valid_out: format!("VALID{index}"),
            ack_in: format!("ACK{index}"),
            internal,
        }
    }

    fn internal_name(&self, base: &str) -> String {
        format!("{base}_{}", self.index)
    }
}

/// Number of transistors of an IPCMOS stage according to the paper's formula
/// `N = 21 + 7·N_inputs + 4·N_outputs` (§3.1); a linear-pipeline stage
/// (one supplier, one consumer) has 32.
pub fn transistor_count(inputs: usize, outputs: usize) -> usize {
    21 + 7 * inputs + 4 * outputs
}

/// Builds the transistor-level netlist of stage `index` of a linear pipeline.
///
/// # Errors
///
/// Returns [`CircuitError`] only if the internal netlist description is
/// inconsistent, which would be a bug in this crate.
pub fn stage_circuit(index: usize) -> Result<Circuit, CircuitError> {
    let signals = StageSignals::new(index);
    let d = |l: i64, u: i64| {
        DelayInterval::new(Time::new(l), Time::new(u)).expect("static delay interval")
    };
    let vint = signals.internal_name("Vint");
    let z = signals.internal_name("Z");
    let y = signals.internal_name("Y");
    let clke = signals.internal_name("CLKE");
    let w = signals.internal_name("W");
    let clkr = signals.internal_name("CLKR");

    let mut b = CircuitBuilder::new(format!("ipcmos-stage-{index}"));
    // Interface: the supplier drives VALID_in, the consumer drives ACK_in.
    b.add_input(&signals.valid_in, true);
    b.add_input(&signals.ack_in, false);
    // Interface outputs and internal nodes with their idle values.
    b.add_node(&signals.ack_out, false);
    b.add_node(&signals.valid_out, true);
    b.add_node(&vint, true);
    b.add_node(&z, false);
    b.add_node(&y, true);
    b.add_node(&clke, true);
    b.add_node(&w, true);
    b.add_node(&clkr, true);

    // Strobe switch (Fig. 11): an n-transistor switch controlled by Y
    // discharges the dynamic node Vint while the VALID input is low (the
    // switch can only pass the low level, as in domino/dynamic CMOS); Vint is
    // precharged (pulled up) by a p-transistor while the reset clock CLKR is
    // low.
    b.add_stack(
        &vint,
        &[(y.as_str(), true), (signals.valid_in.as_str(), false)],
        false,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    b.add_stack(
        &vint,
        &[(clkr.as_str(), false)],
        true,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    // Z is the inverted request: it rises quickly when Vint falls and resets
    // more slowly (its reset races against ACK_out-; see Fig. 13(d)).
    b.add_inverter_with(&z, &vint, d(1, 2), d(3, 4))?;
    // Y: the switch re-arms once the previous request has been fully
    // processed (Z back low, reset clock back high). Because the stage is
    // pulse driven, the supplier's VALID pulse must have ended by then — this
    // is the "pulse length" restriction on the environment that §3.1 of the
    // paper mentions, and it is exactly what the back-annotated constraint
    // `VALID+ < Y+` certifies. Y is pulled down (isolating the input) by the
    // stage's own acknowledge.
    b.add_stack(
        &y,
        &[(z.as_str(), false), (clkr.as_str(), true)],
        true,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    b.add_stack(
        &y,
        &[(signals.ack_out.as_str(), true)],
        false,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    // Acknowledge to the supplier: a lumped strobe path ([8,11]) raises it
    // once the request is seen; it resets quickly when Vint is precharged.
    b.add_stack(
        &signals.ack_out,
        &[(vint.as_str(), false)],
        true,
        d(8, 11),
        DriveStrength::Lumped,
    )?;
    b.add_stack(
        &signals.ack_out,
        &[(vint.as_str(), true)],
        false,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    // Local clock pulse, delay-matching path and VALID towards the consumer
    // (lumped strobe / delay / valid modules).
    b.add_stack(
        &clke,
        &[(vint.as_str(), true)],
        true,
        d(3, 4),
        DriveStrength::Lumped,
    )?;
    b.add_stack(
        &clke,
        &[(vint.as_str(), false)],
        false,
        d(3, 4),
        DriveStrength::Lumped,
    )?;
    b.add_stack(
        &w,
        &[(clke.as_str(), true)],
        true,
        d(2, 3),
        DriveStrength::Lumped,
    )?;
    b.add_stack(
        &w,
        &[(clke.as_str(), false)],
        false,
        d(2, 3),
        DriveStrength::Lumped,
    )?;
    b.add_stack(
        &signals.valid_out,
        &[(w.as_str(), true)],
        true,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    b.add_stack(
        &signals.valid_out,
        &[(w.as_str(), false)],
        false,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    // Reset clock from the reset module: it goes low (starting the precharge
    // of Vint) once the consumer has acknowledged *and* the input switch is
    // off (Y low), so that the precharge never fights the pass transistor no
    // matter how fast the consumer acknowledges — this is what makes the
    // right-hand-side handshake abstractable without timing. It returns high
    // when the acknowledge pulse ends.
    b.add_stack(
        &clkr,
        &[(signals.ack_in.as_str(), true), (y.as_str(), false)],
        false,
        d(1, 2),
        DriveStrength::Normal,
    )?;
    b.add_stack(
        &clkr,
        &[(signals.ack_in.as_str(), false)],
        true,
        d(1, 2),
        DriveStrength::Normal,
    )?;

    // The two short-circuit invariants of §5.1 (structural derivation finds
    // them as well; declaring them keeps the paper's names in diagnostics).
    b.add_invariant(
        format!("invariant (1): short-circuit at {y} (Z̄ ∧ ACK)"),
        &[
            (z.as_str(), false),
            (signals.ack_out.as_str(), true),
            (clkr.as_str(), true),
        ],
    )?;
    b.add_invariant(
        format!("invariant (2): short-circuit at {vint} (V̄ALID ∧ Y ∧ C̄LKR)"),
        &[
            (signals.valid_in.as_str(), false),
            (y.as_str(), true),
            (clkr.as_str(), false),
        ],
    )?;
    b.build()
}

/// Elaborates stage `index` into a timed transition system with its interface
/// outputs marked.
///
/// # Errors
///
/// Returns [`ElaborateError`] if the exploration exceeds its limits (does not
/// happen for the 10-node stage).
pub fn stage_model(index: usize) -> Result<CircuitModel, ElaborateError> {
    let signals = StageSignals::new(index);
    let circuit = stage_circuit(index).map_err(|e| ElaborateError::Build(e.to_string()))?;
    let options = ElaborateOptions {
        output_nodes: vec![signals.ack_out.clone(), signals.valid_out.clone()],
        ..ElaborateOptions::default()
    };
    elaborate(&circuit, &options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_naming_follows_the_pipeline_convention() {
        let s = StageSignals::new(2);
        assert_eq!(s.valid_in, "VALID1");
        assert_eq!(s.ack_out, "ACK1");
        assert_eq!(s.valid_out, "VALID2");
        assert_eq!(s.ack_in, "ACK2");
        assert!(s.internal.contains(&"Vint_2".to_owned()));
    }

    #[test]
    fn transistor_formula_matches_the_paper() {
        // "A single stage of a linear pipeline contains 32 transistors."
        assert_eq!(transistor_count(1, 1), 32);
        assert_eq!(transistor_count(2, 1), 39);
        assert_eq!(transistor_count(1, 2), 36);
    }

    #[test]
    fn stage_circuit_builds_with_ten_nodes() {
        let circuit = stage_circuit(1).unwrap();
        assert_eq!(circuit.node_count(), 10);
        assert!(circuit.node("Vint_1").is_some());
        assert!(circuit.node("VALID0").is_some());
        assert_eq!(circuit.invariants().len(), 2);
        // The modelled control stacks are a lumped-equivalent subset of the
        // 32 transistors of the formula.
        assert!(circuit.modeled_transistor_count() <= transistor_count(1, 1));
    }

    #[test]
    fn stage_elaborates_and_marks_interface_outputs() {
        let model = stage_model(1).unwrap();
        let ts = model.timed().underlying();
        assert!(ts.state_count() > 16);
        let ack0 = ts.alphabet().lookup("ACK0+").unwrap();
        assert_eq!(ts.role(ack0), tts::EventRole::Output);
        let valid0 = ts.alphabet().lookup("VALID0-").unwrap();
        assert_eq!(ts.role(valid0), tts::EventRole::Input);
        // The acknowledge chain carries the lumped [8,11] delay of Fig. 13.
        assert_eq!(
            model.timed().delay_by_name("ACK0+"),
            DelayInterval::new(Time::new(8), Time::new(11)).unwrap()
        );
        // Internal events must be persistent.
        assert!(model.persistent_events().iter().any(|e| e == "Vint_1-"));
    }

    #[test]
    fn free_running_inputs_reach_short_circuit_states() {
        // Without an environment the short circuits are reachable: this is
        // what the verification (with the proper IN/OUT models and timing)
        // must rule out.
        let model = stage_model(1).unwrap();
        assert!(!model
            .timed()
            .underlying()
            .marked_reachable_states()
            .is_empty());
    }
}
