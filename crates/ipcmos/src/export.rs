//! Pulse-level STG models of closed IPCMOS pipelines, for export to the
//! textual model format consumed by the `transyt` CLI.
//!
//! The transistor-level pipeline of [`flat_pipeline`](crate::flat_pipeline)
//! is built by circuit elaboration and cannot be written down as a Petri
//! net; this module instead models the same pipeline one level up, at the
//! pulse-protocol granularity of §3.1 of the paper: negative `VALID` pulses
//! carry data forward, positive `ACK` pulses acknowledge it, and each stage
//! fires a local clock pulse `CLKE` when it captures an item. The result is
//! a live, 1-safe marked graph whose expansion is a faithful abstraction of
//! the interlocking behaviour (Fig. 7), small enough to ship as a readable
//! text file yet rich enough to exercise every verifier of the workspace.

use stg::{SignalRole, Stg, StgBuilder};
use tts::{DelayInterval, Time};

use crate::env::Interface;

/// A pulse-level pipeline model ready for export: the net together with the
/// delay annotations and the safety property of its verification.
#[derive(Debug, Clone)]
pub struct StgPipelineModel {
    /// The closed pipeline net (supplier, `n` stages, consumer).
    pub net: Stg,
    /// Delay intervals per transition label (the Fig. 13 delay structure).
    pub delays: Vec<(String, DelayInterval)>,
    /// Events whose persistency the verification must establish (the local
    /// clock edges of every stage).
    pub persistent_events: Vec<String>,
}

fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).expect("static delay interval")
}

/// Builds the pulse-level STG of a closed `n`-stage IPCMOS pipeline.
///
/// The net composes the pulse-driven supplier `IN` (interface 0), `n` stage
/// control skeletons (local clock `CLKE_k`, acknowledge to the supplier,
/// data launch to the consumer side) and the pulse-driven consumer `OUT`
/// (interface `n`) into one marked graph. Delays follow the lumped paths of
/// the transistor-level stage: `[1,2]` capture switch, `[3,4]` clock pulse,
/// `[8,11]` acknowledge chain, `[15,20]` `VALID` pulse width.
///
/// # Panics
///
/// Panics if `n` is 0.
///
/// # Examples
///
/// ```
/// let model = ipcmos::pipeline_stg(1);
/// let ts = stg::expand(&model.net).unwrap();
/// assert!(ts.deadlock_states().is_empty());
/// ```
pub fn pipeline_stg(n: usize) -> StgPipelineModel {
    assert!(n > 0, "a pipeline needs at least one stage");
    let mut b = StgBuilder::new(format!("ipcmos_{n}stage"));

    // All interface and clock transitions up front, so arcs can reference
    // transitions of neighbouring blocks.
    let interfaces: Vec<Interface> = (0..=n).map(Interface::new).collect();
    let mut v_fall = Vec::new();
    let mut v_rise = Vec::new();
    let mut a_rise = Vec::new();
    let mut a_fall = Vec::new();
    for (i, interface) in interfaces.iter().enumerate() {
        // The supplier drives interface 0; everything else is produced
        // inside the closed model.
        let valid_role = if i == 0 {
            SignalRole::Input
        } else {
            SignalRole::Output
        };
        v_fall.push(b.add_transition(&interface.valid_fall, valid_role));
        v_rise.push(b.add_transition(&interface.valid_rise, valid_role));
        a_rise.push(b.add_transition(&interface.ack_rise, SignalRole::Output));
        a_fall.push(b.add_transition(&interface.ack_fall, SignalRole::Output));
    }
    let mut clke_rise = Vec::new();
    let mut clke_fall = Vec::new();
    for k in 1..=n {
        clke_rise.push(b.add_transition(format!("CLKE_{k}+"), SignalRole::Internal));
        clke_fall.push(b.add_transition(format!("CLKE_{k}-"), SignalRole::Internal));
    }

    // Interface pulse shapes: VALID falls then rises, ACK rises then falls,
    // and each pair alternates.
    for i in 0..=n {
        b.connect(v_fall[i], v_rise[i], 0);
        b.connect(v_rise[i], v_fall[i], 1);
        b.connect(a_rise[i], a_fall[i], 0);
        b.connect(a_fall[i], a_rise[i], 1);
        // Interlock: no new data on an interface before the acknowledge
        // pulse of the previous item has completed (IN's behaviour on
        // interface 0, each stage's on its output interface).
        b.connect(a_fall[i], v_fall[i], 1);
    }

    // Stage k: data arrival on interface k-1 fires the local clock, which
    // acknowledges upstream; the clock pulse ends once the acknowledge is
    // out, and the item is launched downstream after the pulse — the
    // interlocked sequencing of §3.1 that keeps neighbouring stages from
    // racing each other.
    for k in 1..=n {
        let clke_up = clke_rise[k - 1];
        let clke_down = clke_fall[k - 1];
        b.connect(v_fall[k - 1], clke_up, 0);
        b.connect(clke_down, clke_up, 1);
        b.connect(clke_up, a_rise[k - 1], 0);
        b.connect(a_rise[k - 1], clke_down, 0);
        b.connect(clke_down, v_fall[k], 0);
        // The stage only captures a new item once the previous one has been
        // launched downstream (keeps the net 1-safe).
        b.connect(v_fall[k], clke_up, 1);
    }

    // OUT: a low VALID on interface n is acknowledged with a positive pulse.
    b.connect(v_fall[n], a_rise[n], 0);

    let net = b.build().expect("pipeline net is well formed");

    let mut delays = Vec::new();
    for (i, interface) in interfaces.iter().enumerate() {
        if i == 0 {
            // Minimum spacing before the supplier offers new data.
            delays.push((
                interface.valid_fall.clone(),
                DelayInterval::at_least(Time::new(5)).expect("static delay interval"),
            ));
        } else {
            // Delay-matching path of the launching stage.
            delays.push((interface.valid_fall.clone(), d(2, 3)));
        }
        // Pulse-width restriction of §3.1: the VALID pulse outlives the
        // capture but ends before the stage re-arms.
        delays.push((interface.valid_rise.clone(), d(15, 20)));
        // Lumped acknowledge chain and its reset.
        delays.push((interface.ack_rise.clone(), d(8, 11)));
        delays.push((interface.ack_fall.clone(), d(6, 10)));
    }
    let mut persistent_events = Vec::new();
    for k in 1..=n {
        delays.push((format!("CLKE_{k}+"), d(1, 2)));
        delays.push((format!("CLKE_{k}-"), d(3, 4)));
        persistent_events.push(format!("CLKE_{k}+"));
        persistent_events.push(format!("CLKE_{k}-"));
    }

    StgPipelineModel {
        net,
        delays,
        persistent_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transyt::{verify, SafetyProperty, Verdict, VerifyOptions};
    use tts::TimedTransitionSystem;

    fn timed_model(n: usize) -> (StgPipelineModel, TimedTransitionSystem) {
        let model = pipeline_stg(n);
        let ts = stg::expand(&model.net).unwrap();
        let mut timed = TimedTransitionSystem::new(ts);
        for (label, delay) in &model.delays {
            timed.set_delay_by_name(label, *delay);
        }
        (model, timed)
    }

    #[test]
    fn pipelines_expand_to_live_consistent_graphs() {
        for n in 1..=3 {
            let model = pipeline_stg(n);
            let ts = stg::expand(&model.net).unwrap();
            assert!(
                ts.deadlock_states().is_empty(),
                "{n}-stage pipeline deadlocks"
            );
            assert!(ts.state_count() >= 4 * n);
        }
    }

    #[test]
    fn every_delay_label_names_a_transition() {
        let model = pipeline_stg(2);
        let by_label = model.net.transitions_by_label();
        for (label, _) in &model.delays {
            assert!(by_label.contains_key(label.as_str()), "unknown {label}");
        }
        for label in &model.persistent_events {
            assert!(by_label.contains_key(label.as_str()), "unknown {label}");
        }
    }

    #[test]
    fn one_stage_pipeline_verifies() {
        let (model, timed) = timed_model(1);
        let property = SafetyProperty::new("ipcmos_1stage pulse protocol")
            .require_deadlock_freedom()
            .require_persistency(model.persistent_events.iter().cloned());
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        assert!(
            matches!(verdict, Verdict::Verified(_)),
            "1-stage pulse model: {verdict}"
        );
    }

    #[test]
    fn pipeline_moves_items_through_every_stage() {
        let (_, timed) = timed_model(2);
        let trace = crate::simulate(&timed, 60);
        for signal in [
            "VALID0-", "ACK0+", "CLKE_1+", "VALID1-", "CLKE_2+", "VALID2-", "ACK2+",
        ] {
            assert!(
                !trace.times_of(signal).is_empty(),
                "{signal} never fires in the pulse-level pipeline"
            );
        }
    }
}
