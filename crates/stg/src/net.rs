//! Signal transition graphs: Petri nets whose transitions are interpreted as
//! rising (`+`) and falling (`-`) signal edges.
//!
//! The paper uses STGs to describe the pulse-driven environments `IN` and
//! `OUT` (Fig. 12), the untimed abstractions `A_in` and `A_out` (Fig. 10) and
//! the interface specification. This crate provides the net structure, the
//! token game and the conversion to an explicit transition system
//! (reachability graph) that the verification engine operates on.

use std::collections::HashMap;
use std::fmt;

/// Index of a place within an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

impl PlaceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index (must be below the net's place count).
    pub fn from_index(index: usize) -> Self {
        PlaceId(index as u32)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a transition within an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index (must be below the net's transition
    /// count).
    pub fn from_index(index: usize) -> Self {
        TransitionId(index as u32)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interface role of a transition label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalRole {
    /// Produced by the environment (underlined transitions in the paper's
    /// figures).
    Input,
    /// Produced by the modelled component.
    Output,
    /// Internal.
    Internal,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PlaceData {
    name: String,
    initial_tokens: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TransitionData {
    label: String,
    role: SignalRole,
    pre: Vec<PlaceId>,
    post: Vec<PlaceId>,
}

/// Error returned by [`StgBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStgError {
    /// The net has no transitions.
    NoTransitions,
    /// A transition has no input places (it would be enabled forever).
    SourceTransition(String),
}

impl fmt::Display for BuildStgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildStgError::NoTransitions => write!(f, "signal transition graph has no transitions"),
            BuildStgError::SourceTransition(label) => write!(
                f,
                "transition `{label}` has no input places and would be unboundedly enabled"
            ),
        }
    }
}

impl std::error::Error for BuildStgError {}

/// Builder for [`Stg`].
#[derive(Debug, Clone, Default)]
pub struct StgBuilder {
    name: String,
    places: Vec<PlaceData>,
    transitions: Vec<TransitionData>,
    forbidden: Vec<Vec<PlaceId>>,
}

impl StgBuilder {
    /// Creates a builder for a net called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StgBuilder {
            name: name.into(),
            ..StgBuilder::default()
        }
    }

    /// Adds a place with an initial token count.
    pub fn add_place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(PlaceData {
            name: name.into(),
            initial_tokens,
        });
        id
    }

    /// Adds a transition labelled with a signal edge (e.g. `"ACK+"`).
    pub fn add_transition(&mut self, label: impl Into<String>, role: SignalRole) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(TransitionData {
            label: label.into(),
            role,
            pre: Vec::new(),
            post: Vec::new(),
        });
        id
    }

    /// Adds an arc from a place to a transition.
    pub fn arc_in(&mut self, place: PlaceId, transition: TransitionId) {
        let pre = &mut self.transitions[transition.index()].pre;
        if !pre.contains(&place) {
            pre.push(place);
        }
    }

    /// Adds an arc from a transition to a place.
    pub fn arc_out(&mut self, transition: TransitionId, place: PlaceId) {
        let post = &mut self.transitions[transition.index()].post;
        if !post.contains(&place) {
            post.push(place);
        }
    }

    /// Adds an anonymous place connecting `from` to `to` (the usual way of
    /// drawing STG causality arcs), optionally carrying an initial token.
    pub fn connect(
        &mut self,
        from: TransitionId,
        to: TransitionId,
        initial_tokens: u32,
    ) -> PlaceId {
        let name = format!(
            "{}->{}",
            self.transitions[from.index()].label,
            self.transitions[to.index()].label
        );
        let place = self.add_place(name, initial_tokens);
        self.arc_out(from, place);
        self.arc_in(place, to);
        place
    }

    /// Declares a marking predicate as a violation: any reachable marking
    /// with a token on *every* listed place is an error state. The
    /// reachability expansion marks matching states, so `property
    /// forbid-marked` verification, the zone witness search and the engine's
    /// counterexample machinery all pick the predicate up unchanged.
    ///
    /// Empty conjunctions are ignored (they would forbid every marking);
    /// duplicate places within one conjunction are collapsed.
    pub fn forbid_marking(&mut self, places: impl IntoIterator<Item = PlaceId>) {
        let mut conjunction: Vec<PlaceId> = places.into_iter().collect();
        conjunction.sort_unstable();
        conjunction.dedup();
        if !conjunction.is_empty() {
            self.forbidden.push(conjunction);
        }
    }

    /// Finalises the net.
    ///
    /// # Errors
    ///
    /// Returns [`BuildStgError`] if the net has no transitions or a
    /// transition without input places.
    pub fn build(self) -> Result<Stg, BuildStgError> {
        if self.transitions.is_empty() {
            return Err(BuildStgError::NoTransitions);
        }
        if let Some(t) = self.transitions.iter().find(|t| t.pre.is_empty()) {
            return Err(BuildStgError::SourceTransition(t.label.clone()));
        }
        Ok(Stg {
            name: self.name,
            places: self.places,
            transitions: self.transitions,
            forbidden: self.forbidden,
        })
    }
}

/// A signal transition graph.
///
/// # Examples
///
/// ```
/// use stg::{SignalRole, StgBuilder};
/// // The A_in abstraction of the paper (Fig. 10a): VALID- -> ACK+ -> {VALID+, ACK-}
/// // and both must complete before the next VALID-.
/// let mut b = StgBuilder::new("A_in");
/// let valid_minus = b.add_transition("VALID-", SignalRole::Output);
/// let ack_plus = b.add_transition("ACK+", SignalRole::Input);
/// let valid_plus = b.add_transition("VALID+", SignalRole::Output);
/// let ack_minus = b.add_transition("ACK-", SignalRole::Input);
/// b.connect(valid_minus, ack_plus, 0);
/// b.connect(ack_plus, valid_plus, 0);
/// b.connect(ack_plus, ack_minus, 0);
/// b.connect(valid_plus, valid_minus, 1);
/// b.connect(ack_minus, valid_minus, 1);
/// let net = b.build()?;
/// assert_eq!(net.transition_count(), 4);
/// assert!(net.enabled(&net.initial_marking()).len() == 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    name: String,
    places: Vec<PlaceData>,
    transitions: Vec<TransitionData>,
    forbidden: Vec<Vec<PlaceId>>,
}

/// A marking: the number of tokens per place.
pub type Marking = Vec<u32>;

impl Stg {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// All transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(|i| TransitionId(i as u32))
    }

    /// The label of a transition.
    ///
    /// # Panics
    ///
    /// Panics if the transition does not belong to this net.
    pub fn label(&self, t: TransitionId) -> &str {
        &self.transitions[t.index()].label
    }

    /// The interface role of a transition.
    pub fn role(&self, t: TransitionId) -> SignalRole {
        self.transitions[t.index()].role
    }

    /// The name of a place.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.index()].name
    }

    /// Input places of a transition.
    pub fn preset(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.index()].pre
    }

    /// Output places of a transition.
    pub fn postset(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.index()].post
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.places.iter().map(|p| p.initial_tokens).collect()
    }

    /// Transitions enabled in `marking`.
    pub fn enabled(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| {
                self.preset(t)
                    .iter()
                    .all(|p| marking.get(p.index()).copied().unwrap_or(0) > 0)
            })
            .collect()
    }

    /// Fires `t` in `marking`, returning the successor marking.
    ///
    /// Returns `None` if `t` is not enabled.
    pub fn fire(&self, marking: &Marking, t: TransitionId) -> Option<Marking> {
        if !self
            .preset(t)
            .iter()
            .all(|p| marking.get(p.index()).copied().unwrap_or(0) > 0)
        {
            return None;
        }
        let mut next = marking.clone();
        for p in self.preset(t) {
            next[p.index()] -= 1;
        }
        for p in self.postset(t) {
            next[p.index()] += 1;
        }
        Some(next)
    }

    /// The forbidden-marking conjunctions declared with
    /// [`StgBuilder::forbid_marking`], each sorted by place id.
    pub fn forbidden_markings(&self) -> &[Vec<PlaceId>] {
        &self.forbidden
    }

    /// Returns the violation message of the first forbidden-marking
    /// conjunction fully covered by `marking`, or `None` when the marking is
    /// allowed.
    ///
    /// # Examples
    ///
    /// ```
    /// use stg::{SignalRole, StgBuilder};
    /// let mut b = StgBuilder::new("mutex");
    /// let a = b.add_transition("A+", SignalRole::Output);
    /// let c = b.add_transition("B+", SignalRole::Output);
    /// let pa = b.connect(a, c, 1);
    /// let pb = b.connect(c, a, 0);
    /// b.forbid_marking([pa, pb]);
    /// let net = b.build()?;
    /// // Only pa is marked initially: allowed.
    /// assert!(net.violation(&net.initial_marking()).is_none());
    /// assert!(net.violation(&vec![1, 1]).is_some());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn violation(&self, marking: &Marking) -> Option<String> {
        let covered = self.forbidden.iter().find(|conjunction| {
            conjunction
                .iter()
                .all(|p| marking.get(p.index()).copied().unwrap_or(0) > 0)
        })?;
        let names: Vec<&str> = covered.iter().map(|&p| self.place_name(p)).collect();
        Some(format!("forbidden marking: {{{}}}", names.join(", ")))
    }

    /// Groups transitions by label (several transitions may carry the same
    /// signal edge).
    pub fn transitions_by_label(&self) -> HashMap<&str, Vec<TransitionId>> {
        let mut map: HashMap<&str, Vec<TransitionId>> = HashMap::new();
        for t in self.transitions() {
            map.entry(self.label(t)).or_default().push(t);
        }
        map
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} places, {} transitions)",
            self.name,
            self.place_count(),
            self.transition_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        let req = b.add_transition("REQ+", SignalRole::Output);
        let ack = b.add_transition("ACK+", SignalRole::Input);
        let req_down = b.add_transition("REQ-", SignalRole::Output);
        let ack_down = b.add_transition("ACK-", SignalRole::Input);
        b.connect(req, ack, 0);
        b.connect(ack, req_down, 0);
        b.connect(req_down, ack_down, 0);
        b.connect(ack_down, req, 1);
        b.build().unwrap()
    }

    #[test]
    fn token_game_cycles() {
        let net = handshake();
        let m0 = net.initial_marking();
        let enabled = net.enabled(&m0);
        assert_eq!(enabled.len(), 1);
        assert_eq!(net.label(enabled[0]), "REQ+");
        let m1 = net.fire(&m0, enabled[0]).unwrap();
        assert_eq!(net.label(net.enabled(&m1)[0]), "ACK+");
        // Firing a disabled transition returns None.
        assert!(net.fire(&m1, enabled[0]).is_none());
        // After the full cycle we are back at the initial marking.
        let mut m = m0.clone();
        for _ in 0..4 {
            let t = net.enabled(&m)[0];
            m = net.fire(&m, t).unwrap();
        }
        assert_eq!(m, m0);
    }

    #[test]
    fn builder_rejects_degenerate_nets() {
        assert_eq!(
            StgBuilder::new("empty").build().unwrap_err(),
            BuildStgError::NoTransitions
        );
        let mut b = StgBuilder::new("source");
        b.add_transition("X+", SignalRole::Output);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildStgError::SourceTransition(_)
        ));
    }

    #[test]
    fn roles_and_labels() {
        let net = handshake();
        let by_label = net.transitions_by_label();
        assert_eq!(by_label.len(), 4);
        let req = by_label["REQ+"][0];
        assert_eq!(net.role(req), SignalRole::Output);
        let ack = by_label["ACK+"][0];
        assert_eq!(net.role(ack), SignalRole::Input);
        assert!(net.to_string().contains("4 transitions"));
        assert!(net.place_name(net.preset(ack)[0]).contains("REQ+"));
    }

    #[test]
    fn explicit_places_allow_concurrency() {
        // Fork: A+ marks two places read by B+ and C+ concurrently.
        let mut b = StgBuilder::new("fork");
        let a = b.add_transition("A+", SignalRole::Output);
        let bt = b.add_transition("B+", SignalRole::Output);
        let c = b.add_transition("C+", SignalRole::Output);
        b.connect(a, bt, 0);
        b.connect(a, c, 0);
        // Close the loop so every transition has a preset and the net is live.
        let join = b.add_transition("A-", SignalRole::Output);
        b.connect(bt, join, 0);
        b.connect(c, join, 0);
        let back = b.add_place("restart", 1);
        b.arc_out(join, back);
        b.arc_in(back, a);
        let net = b.build().unwrap();
        let m0 = net.initial_marking();
        let m1 = net.fire(&m0, net.enabled(&m0)[0]).unwrap();
        assert_eq!(net.enabled(&m1).len(), 2);
    }
}
