//! Signal transition graphs (STGs): Petri nets whose transitions are
//! interpreted as rising/falling signal edges.
//!
//! The IPCMOS case study uses STGs for everything that is *not* a transistor
//! netlist: the pulse-driven environments `IN` and `OUT` (Fig. 12 of the
//! paper), the untimed abstractions `A_in` and `A_out` (Fig. 10) and the
//! interface specification `S`. This crate provides:
//!
//! * [`Stg`]/[`StgBuilder`] — the net structure and token game,
//! * [`expand`] — reachability-graph generation into a
//!   [`tts::TransitionSystem`], with boundedness and signal-consistency
//!   checks.
//!
//! # Example
//!
//! ```
//! use stg::{expand, SignalRole, StgBuilder};
//!
//! // A two-phase handshake: REQ+ -> ACK+ -> REQ- -> ACK- -> (repeat).
//! let mut b = StgBuilder::new("handshake");
//! let req_up = b.add_transition("REQ+", SignalRole::Output);
//! let ack_up = b.add_transition("ACK+", SignalRole::Input);
//! let req_down = b.add_transition("REQ-", SignalRole::Output);
//! let ack_down = b.add_transition("ACK-", SignalRole::Input);
//! b.connect(req_up, ack_up, 0);
//! b.connect(ack_up, req_down, 0);
//! b.connect(req_down, ack_down, 0);
//! b.connect(ack_down, req_up, 1);
//! let ts = expand(&b.build()?)?;
//! assert_eq!(ts.state_count(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod reach;

pub use net::{BuildStgError, Marking, PlaceId, SignalRole, Stg, StgBuilder, TransitionId};
pub use reach::{
    expand, expand_with, expand_with_report, find_marking_path, signals, ExpandError,
    ExpandOptions, MarkingPath, ReachReport, DEFAULT_MARKING_LIMIT,
};

// Re-export the exploration options type [`ExpandOptions`] embeds, so
// callers can configure expansions without naming the `explore` crate.
pub use explore::{CancelToken, ExploreSpec};
