//! Reachability graph generation and well-formedness checks for signal
//! transition graphs.
//!
//! The verification engine works on explicit transition systems, so the STG
//! models of environments and abstractions are expanded into their
//! reachability graphs. The expansion also checks boundedness (the models in
//! the paper are all safe nets) and *signal consistency*: along every
//! reachable path, rising and falling edges of each signal must alternate,
//! otherwise the STG does not describe a realisable signal.
//!
//! The marking search itself runs on the generic [`explore`] engine:
//! markings are the configurations, firings are the edges, and the recorded
//! breadth-first nodes are replayed afterwards to assemble the transition
//! system with exactly the state numbering the historical sequential
//! expansion produced — whatever [`ExploreSpec::threads`] was used.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use explore::{ExploreOptions, ExploreOutcome, ExploreSpec, SearchSpace, TraceOptions};
use tts::{SignalEdge, StateId, TransitionSystem, TsBuilder};

use crate::net::{Marking, SignalRole, Stg, TransitionId};

/// Errors produced while expanding an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// A place exceeded the token bound (the net is not bounded by `bound`).
    Unbounded {
        /// Name of the offending place.
        place: String,
        /// The bound that was exceeded.
        bound: u32,
    },
    /// The reachability graph exceeded the state limit.
    TooManyMarkings {
        /// The configured limit.
        limit: usize,
    },
    /// A signal fired two same-direction edges without the opposite edge in
    /// between.
    InconsistentSignal {
        /// The signal name.
        signal: String,
    },
    /// The expansion produced an invalid transition system (e.g. no
    /// transitions at all).
    Build(String),
    /// The [`ExploreSpec::cancel`] token fired before the expansion
    /// finished.
    Cancelled,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::Unbounded { place, bound } => {
                write!(f, "place `{place}` exceeds the token bound {bound}")
            }
            ExpandError::TooManyMarkings { limit } => {
                write!(f, "reachability graph exceeds {limit} markings")
            }
            ExpandError::InconsistentSignal { signal } => {
                write!(f, "signal `{signal}` has two same-direction edges in a row")
            }
            ExpandError::Build(msg) => write!(f, "expansion produced an invalid system: {msg}"),
            ExpandError::Cancelled => write!(f, "expansion cancelled"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// Marking limit applied when [`ExploreSpec::limit`] is `None`.
///
/// Sized so the largest shipped pipeline model (`ipcmos_4stage.stg`,
/// 960,000 markings) expands with default options; an explicit
/// [`ExploreSpec::limit`] still caps the search wherever a caller wants a
/// tighter budget.
pub const DEFAULT_MARKING_LIMIT: usize = 1_000_000;

/// Options for [`expand`].
///
/// The shared exploration knobs (threads / limit / cancel / progress) live
/// in the embedded [`ExploreSpec`]; the marking search uses exact
/// deduplication, so the spec's `subsumption` and `extrapolation` fields are
/// carried inert. An unset [`ExploreSpec::limit`] resolves to
/// [`DEFAULT_MARKING_LIMIT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandOptions {
    /// The shared exploration knobs.
    pub spec: ExploreSpec,
    /// Per-place token bound (the paper's models are all 1-safe).
    pub token_bound: u32,
    /// If `true`, verify rising/falling alternation of every signal.
    pub check_signal_consistency: bool,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            spec: ExploreSpec::default(),
            token_bound: 1,
            check_signal_consistency: true,
        }
    }
}

impl ExpandOptions {
    /// The marking limit the expansion enforces.
    fn marking_limit(&self) -> usize {
        self.spec.limit_or(DEFAULT_MARKING_LIMIT)
    }
}

/// Statistics of a completed reachability expansion.
///
/// State lists are sorted by state id on construction, so reports are
/// order-stable however the exploration was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachReport {
    /// States of the expanded reachability graph (sorted; state ids are
    /// assigned in deterministic breadth-first discovery order).
    pub reachable_states: Vec<StateId>,
    /// States whose marking enables no transition (sorted).
    pub deadlock_states: Vec<StateId>,
    /// Number of distinct markings discovered.
    pub markings: usize,
    /// Number of arcs of the reachability graph (counting multiplicities).
    pub firings: usize,
}

/// The token-game search space over markings.
struct MarkingSpace<'a> {
    net: &'a Stg,
    token_bound: u32,
}

impl SearchSpace for MarkingSpace<'_> {
    type Config = Marking;
    type Key = Marking;
    type Edge = TransitionId;
    type Error = ExpandError;

    fn initial(&self) -> Result<Vec<Marking>, ExpandError> {
        Ok(vec![self.net.initial_marking()])
    }

    fn key(&self, config: &Marking) -> Marking {
        config.clone()
    }

    fn expand(&self, marking: &Marking) -> Result<Vec<(TransitionId, Marking)>, ExpandError> {
        let mut successors = Vec::new();
        for t in self.net.enabled(marking) {
            let next = self
                .net
                .fire(marking, t)
                .expect("enabled transitions can fire");
            if let Some(p) = next.iter().position(|&tokens| tokens > self.token_bound) {
                return Err(ExpandError::Unbounded {
                    place: self
                        .net
                        .place_name(crate::net::PlaceId(p as u32))
                        .to_owned(),
                    bound: self.token_bound,
                });
            }
            successors.push((t, next));
        }
        Ok(successors)
    }
}

/// Expands an STG into its reachability graph with default options.
///
/// Transition labels become events of the resulting system; transitions
/// declared [`SignalRole::Input`] / [`SignalRole::Output`] become input /
/// output events.
///
/// # Errors
///
/// Returns [`ExpandError`] if the net is unbounded, too large, or signal
/// inconsistent.
///
/// # Examples
///
/// ```
/// use stg::{expand, SignalRole, StgBuilder};
/// let mut b = StgBuilder::new("toggle");
/// let up = b.add_transition("X+", SignalRole::Output);
/// let down = b.add_transition("X-", SignalRole::Output);
/// b.connect(up, down, 0);
/// b.connect(down, up, 1);
/// let ts = expand(&b.build()?)?;
/// assert_eq!(ts.state_count(), 2);
/// assert_eq!(ts.transition_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expand(net: &Stg) -> Result<TransitionSystem, ExpandError> {
    expand_with(net, ExpandOptions::default())
}

/// Expands an STG into its reachability graph with explicit options.
///
/// # Errors
///
/// See [`expand`].
pub fn expand_with(net: &Stg, options: ExpandOptions) -> Result<TransitionSystem, ExpandError> {
    expand_with_report(net, options).map(|(ts, _)| ts)
}

/// Expands an STG and additionally returns the [`ReachReport`] of the
/// marking search.
///
/// # Errors
///
/// See [`expand`].
///
/// # Examples
///
/// ```
/// use stg::{expand_with_report, ExpandOptions, SignalRole, StgBuilder};
/// let mut b = StgBuilder::new("toggle");
/// let up = b.add_transition("X+", SignalRole::Output);
/// let down = b.add_transition("X-", SignalRole::Output);
/// b.connect(up, down, 0);
/// b.connect(down, up, 1);
/// let (ts, report) = expand_with_report(&b.build()?, ExpandOptions::default())?;
/// assert_eq!(report.markings, 2);
/// assert_eq!(report.firings, 2);
/// assert_eq!(report.reachable_states.len(), ts.state_count());
/// assert!(report.deadlock_states.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expand_with_report(
    net: &Stg,
    options: ExpandOptions,
) -> Result<(TransitionSystem, ReachReport), ExpandError> {
    let space = MarkingSpace {
        net,
        token_bound: options.token_bound,
    };
    let outcome = explore::explore(
        &space,
        &ExploreOptions {
            threads: options.spec.threads,
            discovered_limit: options.marking_limit(),
            record_edges: true,
            cancel: options.spec.cancel.clone(),
            progress: options.spec.progress.clone(),
            budget: options.spec.budget.clone(),
            ..ExploreOptions::default()
        },
    )?;
    let search = match outcome {
        ExploreOutcome::Completed(report) => report,
        ExploreOutcome::LimitExceeded { .. } => {
            return Err(ExpandError::TooManyMarkings {
                limit: options.marking_limit(),
            })
        }
        ExploreOutcome::Cancelled { .. } => return Err(ExpandError::Cancelled),
    };

    // Replay the recorded breadth-first nodes to assemble the transition
    // system: state ids follow discovery order (initial state first, then
    // successors in firing order), which is exactly the numbering of the
    // historical sequential expansion.
    let mut builder = TsBuilder::new(net.name());
    let mut ids: HashMap<Marking, StateId> = HashMap::new();

    let initial = net.initial_marking();
    let initial_id = builder.add_state(marking_name(&initial));
    builder.set_initial(initial_id);
    if let Some(message) = net.violation(&initial) {
        builder.mark_violation(initial_id, message);
    }
    ids.insert(initial, initial_id);

    // Interface roles (also fixes the event interning order).
    for t in net.transitions() {
        match net.role(t) {
            SignalRole::Input => {
                builder.declare_input(net.label(t));
            }
            SignalRole::Output => {
                builder.declare_output(net.label(t));
            }
            SignalRole::Internal => {
                builder.intern_event(net.label(t));
            }
        }
    }

    let mut firings = 0usize;
    let mut deadlock_states = Vec::new();
    for node in &search.nodes {
        let from = ids[&node.config];
        if node.successors.is_empty() {
            deadlock_states.push(from);
        }
        for (t, next) in &node.successors {
            firings += 1;
            let to = match ids.get(next) {
                Some(&id) => id,
                None => {
                    let id = builder.add_state(marking_name(next));
                    // Forbidden-marking predicates become violation marks of
                    // the expanded system, so the marked-state machinery
                    // (engine, zone witness search) picks them up as-is.
                    if let Some(message) = net.violation(next) {
                        builder.mark_violation(id, message);
                    }
                    ids.insert(next.clone(), id);
                    id
                }
            };
            builder.add_transition(from, net.label(*t), to);
        }
    }

    let ts = builder
        .build()
        .map_err(|e| ExpandError::Build(e.to_string()))?;

    if options.check_signal_consistency {
        check_signal_consistency(&ts)?;
    }

    let mut reachable_states: Vec<StateId> = ids.values().copied().collect();
    reachable_states.sort_unstable();
    deadlock_states.sort_unstable();
    let report = ReachReport {
        reachable_states,
        deadlock_states,
        markings: search.discovered,
        firings,
    };
    Ok((ts, report))
}

/// A witness firing sequence from the initial marking to a target marking.
///
/// Produced by [`find_marking_path`]; replayable through the token game with
/// [`replay`](Self::replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkingPath {
    /// The marking the path starts from (the net's initial marking).
    pub start: Marking,
    /// The fired `(transition, reached marking)` steps, in firing order.
    pub steps: Vec<(TransitionId, Marking)>,
}

impl MarkingPath {
    /// The marking the path ends at.
    pub fn end(&self) -> &Marking {
        self.steps.last().map_or(&self.start, |(_, m)| m)
    }

    /// Number of fired transitions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the goal already holds in the initial marking.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The labels of the fired transitions, in order.
    pub fn labels<'a>(&self, net: &'a Stg) -> Vec<&'a str> {
        self.steps.iter().map(|&(t, _)| net.label(t)).collect()
    }

    /// Replays the path through the token game of `net`, checking each step
    /// fires an enabled transition into the recorded marking. Returns the end
    /// marking on success, `None` on any mismatch.
    pub fn replay(&self, net: &Stg) -> Option<Marking> {
        let mut marking = self.start.clone();
        for (t, recorded) in &self.steps {
            let next = net.fire(&marking, *t)?;
            if next != *recorded {
                return None;
            }
            marking = next;
        }
        Some(marking)
    }
}

/// The marking space extended with a goal predicate that halts the search.
struct GoalSpace<'a, G> {
    inner: MarkingSpace<'a>,
    goal: G,
}

impl<G: Fn(&Marking) -> bool + Sync> SearchSpace for GoalSpace<'_, G> {
    type Config = Marking;
    type Key = Marking;
    type Edge = TransitionId;
    type Error = ExpandError;

    fn initial(&self) -> Result<Vec<Marking>, ExpandError> {
        self.inner.initial()
    }

    fn key(&self, config: &Marking) -> Marking {
        self.inner.key(config)
    }

    fn expand(&self, marking: &Marking) -> Result<Vec<(TransitionId, Marking)>, ExpandError> {
        self.inner.expand(marking)
    }

    fn should_halt(&self, marking: &Marking, _: &[(TransitionId, Marking)]) -> bool {
        (self.goal)(marking)
    }
}

/// Searches the reachability graph breadth-first for the first marking
/// satisfying `goal` and returns the witness firing sequence leading to it,
/// or `None` when no reachable marking satisfies the goal.
///
/// The search runs on the shared exploration engine with parent tracking, so
/// the returned path — not just its existence — is identical for every
/// [`ExploreSpec::threads`] value.
///
/// # Errors
///
/// Returns [`ExpandError`] if the net is unbounded or the marking limit is
/// exceeded before the goal is decided.
///
/// # Examples
///
/// ```
/// use stg::{find_marking_path, ExpandOptions, SignalRole, StgBuilder};
/// let mut b = StgBuilder::new("toggle");
/// let up = b.add_transition("X+", SignalRole::Output);
/// let down = b.add_transition("X-", SignalRole::Output);
/// b.connect(up, down, 0);
/// b.connect(down, up, 1);
/// let net = b.build()?;
/// // Path to the first marking that enables X-.
/// let path = find_marking_path(&net, ExpandOptions::default(), |m| {
///     net.enabled(m).iter().any(|&t| net.label(t) == "X-")
/// })?
/// .expect("X- becomes enabled");
/// assert_eq!(path.labels(&net), vec!["X+"]);
/// assert_eq!(path.replay(&net).as_ref(), Some(path.end()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_marking_path<G>(
    net: &Stg,
    options: ExpandOptions,
    goal: G,
) -> Result<Option<MarkingPath>, ExpandError>
where
    G: Fn(&Marking) -> bool + Sync,
{
    let space = GoalSpace {
        inner: MarkingSpace {
            net,
            token_bound: options.token_bound,
        },
        goal,
    };
    let outcome = explore::explore(
        &space,
        &ExploreOptions {
            threads: options.spec.threads,
            discovered_limit: options.marking_limit(),
            trace: TraceOptions::parents(),
            cancel: options.spec.cancel.clone(),
            progress: options.spec.progress.clone(),
            budget: options.spec.budget.clone(),
            ..ExploreOptions::default()
        },
    )?;
    let search = match outcome {
        ExploreOutcome::Completed(report) => report,
        ExploreOutcome::LimitExceeded { .. } => {
            return Err(ExpandError::TooManyMarkings {
                limit: options.marking_limit(),
            })
        }
        ExploreOutcome::Cancelled { .. } => return Err(ExpandError::Cancelled),
    };
    if !search.halted {
        return Ok(None);
    }
    let goal_node = search.nodes.len() - 1;
    let (root, steps) = search
        .path_to(goal_node)
        .expect("goal search records parents");
    let start = search.nodes[root].config.clone();
    let steps = steps
        .into_iter()
        .map(|(transition, node)| (transition, search.nodes[node].config.clone()))
        .collect();
    Ok(Some(MarkingPath { start, steps }))
}

/// Verifies that along every reachable transition sequence, rising and
/// falling edges of each signal alternate.
///
/// The check assigns a value to each signal per reachable state (starting
/// unknown) and reports an error if a state is reached with two different
/// implied values or an edge repeats a direction.
fn check_signal_consistency(ts: &TransitionSystem) -> Result<(), ExpandError> {
    // value per (state, signal): None = unknown.
    let mut values: Vec<HashMap<String, bool>> = vec![HashMap::new(); ts.state_count()];
    let mut queue: VecDeque<tts::StateId> = VecDeque::new();
    let mut visited = vec![false; ts.state_count()];
    for &s in ts.initial_states() {
        visited[s.index()] = true;
        queue.push_back(s);
    }
    while let Some(s) = queue.pop_front() {
        for &(event, to) in ts.transitions_from(s) {
            if let Some(edge) = ts.alphabet().signal_edge(event) {
                let before = values[s.index()].get(edge.signal()).copied();
                let target_value = edge.polarity().target_value();
                if before == Some(target_value) {
                    return Err(ExpandError::InconsistentSignal {
                        signal: edge.signal().to_owned(),
                    });
                }
                let after_map = &mut values[to.index()];
                match after_map.get(edge.signal()) {
                    Some(&v) if v != target_value => {
                        return Err(ExpandError::InconsistentSignal {
                            signal: edge.signal().to_owned(),
                        });
                    }
                    _ => {
                        after_map.insert(edge.signal().to_owned(), target_value);
                    }
                }
            }
            if !visited[to.index()] {
                visited[to.index()] = true;
                queue.push_back(to);
            }
        }
    }
    Ok(())
}

/// Returns the set of signals appearing in the labels of a net.
pub fn signals(net: &Stg) -> Vec<String> {
    let mut out: Vec<String> = net
        .transitions()
        .filter_map(|t| SignalEdge::parse(net.label(t)).map(|e| e.signal().to_owned()))
        .collect();
    out.sort();
    out.dedup();
    out
}

fn marking_name(marking: &Marking) -> String {
    let tokens: Vec<String> = marking
        .iter()
        .enumerate()
        .filter(|(_, &t)| t > 0)
        .map(|(i, &t)| {
            if t == 1 {
                format!("p{i}")
            } else {
                format!("p{i}*{t}")
            }
        })
        .collect();
    if tokens.is_empty() {
        "{}".to_owned()
    } else {
        format!("{{{}}}", tokens.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::StgBuilder;

    fn toggle() -> Stg {
        let mut b = StgBuilder::new("toggle");
        let up = b.add_transition("X+", SignalRole::Output);
        let down = b.add_transition("X-", SignalRole::Input);
        b.connect(up, down, 0);
        b.connect(down, up, 1);
        b.build().unwrap()
    }

    #[test]
    fn expansion_produces_the_reachability_graph() {
        let ts = expand(&toggle()).unwrap();
        assert_eq!(ts.state_count(), 2);
        assert_eq!(ts.transition_count(), 2);
        let up = ts.alphabet().lookup("X+").unwrap();
        let down = ts.alphabet().lookup("X-").unwrap();
        assert_eq!(ts.role(up), tts::EventRole::Output);
        assert_eq!(ts.role(down), tts::EventRole::Input);
        assert!(ts.deadlock_states().is_empty());
    }

    #[test]
    fn concurrency_expands_to_interleavings() {
        // A+ forks B+ and C+ which join back into A-.
        let mut b = StgBuilder::new("fork");
        let a_plus = b.add_transition("A+", SignalRole::Output);
        let b_plus = b.add_transition("B+", SignalRole::Output);
        let c_plus = b.add_transition("C+", SignalRole::Output);
        let a_minus = b.add_transition("A-", SignalRole::Output);
        let b_minus = b.add_transition("B-", SignalRole::Output);
        let c_minus = b.add_transition("C-", SignalRole::Output);
        b.connect(a_plus, b_plus, 0);
        b.connect(a_plus, c_plus, 0);
        b.connect(b_plus, a_minus, 0);
        b.connect(c_plus, a_minus, 0);
        b.connect(a_minus, b_minus, 0);
        b.connect(a_minus, c_minus, 0);
        b.connect(b_minus, a_plus, 1);
        b.connect(c_minus, a_plus, 1);
        let ts = expand(&b.build().unwrap()).unwrap();
        // Diamond of B+/C+ plus diamond of B-/C-.
        assert!(ts.state_count() >= 6);
        assert!(ts.deadlock_states().is_empty());
    }

    #[test]
    fn unbounded_nets_are_rejected() {
        let mut b = StgBuilder::new("unbounded");
        let a = b.add_transition("A+", SignalRole::Output);
        let c = b.add_transition("A-", SignalRole::Output);
        b.connect(a, c, 0);
        b.connect(c, a, 1);
        // Extra sink place that accumulates tokens forever.
        let sink = b.add_place("sink", 0);
        b.arc_out(a, sink);
        let err = expand(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, ExpandError::Unbounded { .. }));
        assert!(err.to_string().contains("sink"));
    }

    #[test]
    fn inconsistent_signals_are_rejected() {
        // X+ followed by X+ again.
        let mut b = StgBuilder::new("bad");
        let first = b.add_transition("X+", SignalRole::Output);
        let second = b.add_transition("X+", SignalRole::Output);
        b.connect(first, second, 0);
        b.connect(second, first, 1);
        let err = expand(&b.build().unwrap()).unwrap_err();
        assert_eq!(
            err,
            ExpandError::InconsistentSignal {
                signal: "X".to_owned()
            }
        );
    }

    #[test]
    fn marking_limit_is_enforced() {
        let err = expand_with(
            &toggle(),
            ExpandOptions {
                spec: ExploreSpec {
                    limit: Some(0),
                    ..ExploreSpec::default()
                },
                ..ExpandOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExpandError::TooManyMarkings { .. }));
    }

    #[test]
    fn signals_are_collected() {
        let names = signals(&toggle());
        assert_eq!(names, vec!["X".to_owned()]);
    }

    #[test]
    fn non_signal_labels_are_tolerated() {
        let mut b = StgBuilder::new("plain");
        let a = b.add_transition("go", SignalRole::Internal);
        let c = b.add_transition("stop", SignalRole::Internal);
        b.connect(a, c, 0);
        b.connect(c, a, 1);
        let ts = expand(&b.build().unwrap()).unwrap();
        assert_eq!(ts.state_count(), 2);
    }

    #[test]
    fn report_counts_markings_and_firings() {
        let (ts, report) = expand_with_report(&toggle(), ExpandOptions::default()).unwrap();
        assert_eq!(report.markings, 2);
        assert_eq!(report.firings, 2);
        assert_eq!(report.reachable_states.len(), ts.state_count());
        assert!(report.deadlock_states.is_empty());
        assert!(report.reachable_states.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn marking_path_reaches_a_deadlock_and_replays() {
        // X+ then X- into a sink: the final marking is a deadlock.
        let mut b = StgBuilder::new("sink");
        let up = b.add_transition("X+", SignalRole::Output);
        let down = b.add_transition("X-", SignalRole::Output);
        b.connect(up, down, 0);
        let start = b.add_place("start", 1);
        b.arc_in(start, up);
        let net = b.build().unwrap();
        let path = find_marking_path(&net, ExpandOptions::default(), |m| {
            net.enabled(m).is_empty()
        })
        .unwrap()
        .expect("deadlock reachable");
        assert_eq!(path.labels(&net), vec!["X+", "X-"]);
        let end = path.replay(&net).unwrap();
        assert_eq!(&end, path.end());
        assert!(net.enabled(&end).is_empty());
    }

    #[test]
    fn marking_path_is_identical_across_thread_counts() {
        let mut b = StgBuilder::new("wide");
        for name in ["A", "B", "C"] {
            let up = b.add_transition(format!("{name}+"), SignalRole::Output);
            let down = b.add_transition(format!("{name}-"), SignalRole::Output);
            b.connect(up, down, 0);
            b.connect(down, up, 1);
        }
        let net = b.build().unwrap();
        // Goal: all three signals high at once.
        let goal = |m: &Marking| net.enabled(m).iter().all(|&t| net.label(t).ends_with('-'));
        let sequential = find_marking_path(&net, ExpandOptions::default(), goal)
            .unwrap()
            .expect("reachable");
        for threads in [2, 4] {
            let parallel = find_marking_path(
                &net,
                ExpandOptions {
                    spec: ExploreSpec::threaded(threads),
                    ..ExpandOptions::default()
                },
                goal,
            )
            .unwrap()
            .expect("reachable");
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        assert_eq!(sequential.len(), 3);
    }

    #[test]
    fn forbidden_markings_become_violation_marks() {
        // Two independent toggles; both signals high at once is forbidden.
        let mut b = StgBuilder::new("mutex");
        let a_up = b.add_transition("A+", SignalRole::Output);
        let a_down = b.add_transition("A-", SignalRole::Output);
        let b_up = b.add_transition("B+", SignalRole::Output);
        let b_down = b.add_transition("B-", SignalRole::Output);
        let a_high = b.connect(a_up, a_down, 0);
        b.connect(a_down, a_up, 1);
        let b_high = b.connect(b_up, b_down, 0);
        b.connect(b_down, b_up, 1);
        b.forbid_marking([a_high, b_high]);
        let net = b.build().unwrap();
        assert_eq!(net.forbidden_markings().len(), 1);

        let ts = expand(&net).unwrap();
        let marked: Vec<_> = ts
            .states()
            .filter(|&s| !ts.violations(s).is_empty())
            .collect();
        assert_eq!(marked.len(), 1, "exactly the both-high marking is marked");
        assert!(ts.violations(marked[0])[0].contains("forbidden marking"));

        // The marking-path machinery reaches the forbidden marking.
        let path = find_marking_path(&net, ExpandOptions::default(), |m| {
            net.violation(m).is_some()
        })
        .unwrap()
        .expect("forbidden marking reachable");
        assert_eq!(path.len(), 2);
        assert!(net.violation(path.end()).is_some());
    }

    #[test]
    fn cancelled_expansion_reports_cancelled() {
        let token = explore::CancelToken::new();
        token.cancel();
        let options = ExpandOptions {
            spec: ExploreSpec {
                cancel: token,
                ..ExploreSpec::default()
            },
            ..ExpandOptions::default()
        };
        let err = expand_with(&toggle(), options.clone()).unwrap_err();
        assert_eq!(err, ExpandError::Cancelled);
        let err = find_marking_path(&toggle(), options, |_| false).unwrap_err();
        assert_eq!(err, ExpandError::Cancelled);
        assert_eq!(err.to_string(), "expansion cancelled");
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let net = toggle();
        let path = find_marking_path(&net, ExpandOptions::default(), |m| {
            m.iter().all(|&t| t == 0)
        })
        .unwrap();
        assert!(path.is_none());
    }

    #[test]
    fn goal_holding_initially_yields_the_empty_path() {
        let net = toggle();
        let path = find_marking_path(&net, ExpandOptions::default(), |_| true)
            .unwrap()
            .expect("initial marking satisfies the goal");
        assert!(path.is_empty());
        assert_eq!(path.end(), &net.initial_marking());
    }

    #[test]
    fn parallel_expansion_matches_sequential_exactly() {
        let mut b = StgBuilder::new("wide");
        // Four concurrent toggles: 16 interleaved markings.
        for name in ["A", "B", "C", "D"] {
            let up = b.add_transition(format!("{name}+"), SignalRole::Output);
            let down = b.add_transition(format!("{name}-"), SignalRole::Output);
            b.connect(up, down, 0);
            b.connect(down, up, 1);
        }
        let net = b.build().unwrap();
        let sequential = expand_with_report(&net, ExpandOptions::default()).unwrap();
        for threads in [2, 4] {
            let parallel = expand_with_report(
                &net,
                ExpandOptions {
                    spec: ExploreSpec::threaded(threads),
                    ..ExpandOptions::default()
                },
            )
            .unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        assert!(sequential.1.markings >= 16);
    }
}
