//! `transyt` — relative-timing verification of timed circuits.
//!
//! This crate re-implements the verification methodology used in the IPCMOS
//! case study (Peña, Cortadella, Pastor, Smirnov — DATE 2002; Peña et al.
//! ASYNC 2000), combining three techniques:
//!
//! 1. **Relative-timing verification** ([`verify`]): iterative refinement of
//!    the untimed state space with relative-timing constraints derived by
//!    max-separation analysis on causal event structures extracted from
//!    failure traces. The result is either a timing-consistent
//!    counterexample or a proof together with the back-annotated constraints
//!    (the delay slacks under which the circuit stays correct).
//! 2. **Assume–guarantee reasoning with abstractions**
//!    ([`check_refinement`], [`ProofReport`]): language-containment checks of
//!    implementations against untimed abstractions (the `⋄` observer of the
//!    paper's Fig. 9), so that a pipeline of any length can be verified
//!    without building its global state space.
//! 3. **Induction / behavioural fixed points**: the fixed-point obligation
//!    `A_in ∥ I ⊑ A_in` is just another refinement check, recorded as a step
//!    of a [`ProofReport`].
//!
//! The IPCMOS-specific models (stage netlist, environments, abstractions,
//! specification) live in the `ipcmos` crate; this crate is
//! circuit-agnostic.
//!
//! # Example
//!
//! ```
//! use transyt::{verify, SafetyProperty, VerifyOptions};
//! use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
//!
//! // A two-event race whose bad interleaving is only excluded by timing.
//! let mut b = TsBuilder::new("race");
//! let s0 = b.add_state("s0");
//! let ok = b.add_state("ok");
//! let bad = b.add_state("bad");
//! let fast = b.add_transition(s0, "fast", ok);
//! let slow = b.add_transition(s0, "slow", bad);
//! # let _ = (fast, slow);
//! b.mark_violation(bad, "slow overtook fast");
//! b.set_initial(s0);
//! let mut timed = TimedTransitionSystem::new(b.build()?);
//! timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
//! timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
//!
//! let verdict = verify(
//!     &timed,
//!     &SafetyProperty::new("ordering").forbid_marked_states(),
//!     &VerifyOptions::default(),
//! );
//! assert!(verdict.is_verified());
//! println!("{}", verdict.report().constraint_listing());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assume_guarantee;
mod contain;
mod engine;
mod property;

pub use assume_guarantee::{ProofReport, ProofStep};
pub use contain::{
    build_containment_monitor, check_refinement, ContainError, RefinementObligation,
};
pub use engine::{
    verify, Counterexample, FailureKind, FailureTrace, FailureTraceDisplay, Verdict,
    VerificationReport, VerifyOptions,
};
pub use property::SafetyProperty;

// Re-export the constraint type users receive in reports.
pub use ces::{Justification, RelativeTimingConstraint};

// Re-export the cancellation token [`VerifyOptions`] (and the sibling option
// structs of `dbm` and `stg`) embed, so front ends can cancel long-running
// verifications without depending on the `explore` crate directly.
pub use explore::{CancelToken, ExploreSpec, Extrapolation};
