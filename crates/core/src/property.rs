//! Safety properties checked by the verification engine.
//!
//! The IPCMOS case study only needs very simple temporal properties (§3.2 of
//! the paper): absence of marked states (short-circuits and other invariant
//! violations), deadlock-freeness (which encodes the "every data item is
//! acknowledged once and only once" specification) and signal persistency.
//! All of them are 1-step safety conditions evaluated during reachability.

use std::collections::BTreeSet;

/// A conjunction of safety conditions to verify on a (timed) transition
/// system.
///
/// # Examples
///
/// ```
/// use transyt::SafetyProperty;
/// let property = SafetyProperty::new("stage correctness")
///     .forbid_marked_states()
///     .require_deadlock_freedom()
///     .require_persistency(["Vint-", "Z+"]);
/// assert!(property.checks_marked_states());
/// assert!(property.checks_deadlock());
/// assert_eq!(property.persistent_events().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyProperty {
    name: String,
    forbid_marked_states: bool,
    require_deadlock_freedom: bool,
    persistent_events: BTreeSet<String>,
}

impl SafetyProperty {
    /// Creates an empty property (nothing is checked until conditions are
    /// added).
    pub fn new(name: impl Into<String>) -> Self {
        SafetyProperty {
            name: name.into(),
            forbid_marked_states: false,
            require_deadlock_freedom: false,
            persistent_events: BTreeSet::new(),
        }
    }

    /// Requires that no state carrying a violation mark is reachable.
    #[must_use]
    pub fn forbid_marked_states(mut self) -> Self {
        self.forbid_marked_states = true;
        self
    }

    /// Requires that no reachable state deadlocks.
    #[must_use]
    pub fn require_deadlock_freedom(mut self) -> Self {
        self.require_deadlock_freedom = true;
        self
    }

    /// Requires that the named events are persistent: once enabled they may
    /// not be disabled by the firing of a different event.
    #[must_use]
    pub fn require_persistency<I, S>(mut self, events: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.persistent_events
            .extend(events.into_iter().map(Into::into));
        self
    }

    /// The property's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` if marked states are forbidden.
    pub fn checks_marked_states(&self) -> bool {
        self.forbid_marked_states
    }

    /// Returns `true` if deadlock-freeness is required.
    pub fn checks_deadlock(&self) -> bool {
        self.require_deadlock_freedom
    }

    /// The events required to be persistent.
    pub fn persistent_events(&self) -> &BTreeSet<String> {
        &self.persistent_events
    }

    /// Returns `true` if the property checks nothing (verification succeeds
    /// trivially).
    pub fn is_trivial(&self) -> bool {
        !self.forbid_marked_states
            && !self.require_deadlock_freedom
            && self.persistent_events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_conditions() {
        let p = SafetyProperty::new("p");
        assert!(p.is_trivial());
        let p = p
            .forbid_marked_states()
            .require_persistency(vec!["a".to_string()])
            .require_persistency(["a", "b"]);
        assert!(!p.is_trivial());
        assert!(p.checks_marked_states());
        assert!(!p.checks_deadlock());
        assert_eq!(p.persistent_events().len(), 2);
        assert_eq!(p.name(), "p");
    }
}
