//! Language-containment checking against abstractions (the `⋄` component of
//! Fig. 9).
//!
//! To discharge a guarantee obligation `impl ⊑ abs`, the implementation
//! (already closed with its context) is composed with the abstraction used
//! as an *observer*: shared events synchronise, and whenever the
//! implementation can produce one of the *watched* events in a state where
//! the observer cannot accept it, the composition moves into a marked
//! violation state. Verifying "no marked state is reachable" on the monitor
//! — with the usual relative-timing refinement — establishes that every
//! output produced by the implementation can also be produced by the
//! abstraction under the same stimuli.

use std::collections::{HashMap, VecDeque};

use tts::{StateId, TimedTransitionSystem, TransitionSystem, TsBuilder};

use crate::engine::{verify, Verdict, VerifyOptions};
use crate::property::SafetyProperty;

/// Error returned by [`build_containment_monitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainError {
    /// A watched event does not appear in the abstraction's alphabet.
    UnknownWatchedEvent(String),
    /// The monitor construction produced an invalid system.
    Build(String),
}

impl std::fmt::Display for ContainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainError::UnknownWatchedEvent(e) => {
                write!(f, "watched event `{e}` is not part of the abstraction")
            }
            ContainError::Build(msg) => write!(f, "monitor construction failed: {msg}"),
        }
    }
}

impl std::error::Error for ContainError {}

/// A refinement obligation `implementation ⊑ abstraction` restricted to the
/// given watched (output) events.
#[derive(Debug, Clone)]
pub struct RefinementObligation<'a> {
    /// The implementation, already composed with its environment/context.
    pub implementation: &'a TimedTransitionSystem,
    /// The abstraction acting as observer.
    pub abstraction: &'a TransitionSystem,
    /// Names of the events whose production must be allowed by the
    /// abstraction (e.g. `ACK+`/`ACK-` in step 2 of §4.2, `VALID±` in steps 3
    /// and 4).
    pub watched: Vec<String>,
}

/// Builds the containment monitor: the product of the implementation and the
/// observer, with marked violation states for watched events the observer
/// cannot accept.
///
/// # Errors
///
/// Returns [`ContainError`] if a watched event is unknown to the abstraction
/// or the construction fails structurally.
pub fn build_containment_monitor(
    obligation: &RefinementObligation<'_>,
) -> Result<TimedTransitionSystem, ContainError> {
    let impl_ts = obligation.implementation.underlying();
    let abs = obligation.abstraction;
    for w in &obligation.watched {
        if abs.alphabet().lookup(w).is_none() {
            return Err(ContainError::UnknownWatchedEvent(w.clone()));
        }
    }

    let abs_names: HashMap<&str, tts::EventId> =
        abs.alphabet().iter().map(|(id, n)| (n, id)).collect();
    let impl_names: HashMap<&str, tts::EventId> =
        impl_ts.alphabet().iter().map(|(id, n)| (n, id)).collect();

    let mut builder = TsBuilder::new(format!("{} |> {}", impl_ts.name(), abs.name()));
    let mut ids: HashMap<(StateId, StateId), tts::StateId> = HashMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    let add_state = |builder: &mut TsBuilder,
                     ids: &mut HashMap<(StateId, StateId), tts::StateId>,
                     queue: &mut VecDeque<(StateId, StateId)>,
                     l: StateId,
                     r: StateId|
     -> tts::StateId {
        if let Some(&id) = ids.get(&(l, r)) {
            return id;
        }
        let id = builder.add_state(format!("{}|{}", impl_ts.state_name(l), abs.state_name(r)));
        for v in impl_ts.violations(l) {
            builder.mark_violation(id, v.clone());
        }
        ids.insert((l, r), id);
        queue.push_back((l, r));
        id
    };

    for &l in impl_ts.initial_states() {
        for &r in abs.initial_states() {
            let id = add_state(&mut builder, &mut ids, &mut queue, l, r);
            builder.set_initial(id);
        }
    }

    // A single trap state for containment violations.
    let trap = builder.add_state("containment-violation");

    while let Some((l, r)) = queue.pop_front() {
        let from = ids[&(l, r)];
        for &(event, l_to) in impl_ts.transitions_from(l) {
            let name = impl_ts.alphabet().name(event);
            let watched = obligation.watched.iter().any(|w| w == name);
            match abs_names.get(name) {
                Some(&abs_event) => {
                    let abs_targets = abs.successors(r, abs_event);
                    if abs_targets.is_empty() {
                        if watched {
                            // The implementation produces an event the
                            // abstraction cannot accept here.
                            builder.add_transition(from, name, trap);
                            builder.mark_violation(
                                trap,
                                format!("abstraction cannot accept `{name}`"),
                            );
                        }
                        // Unwatched shared events that the observer cannot
                        // follow are simply not tracked further on that path.
                        continue;
                    }
                    for r_to in abs_targets {
                        let to = add_state(&mut builder, &mut ids, &mut queue, l_to, r_to);
                        builder.add_transition(from, name, to);
                    }
                }
                None => {
                    // Private implementation event: interleave.
                    let to = add_state(&mut builder, &mut ids, &mut queue, l_to, r);
                    builder.add_transition(from, name, to);
                }
            }
        }
    }

    // Interface roles follow the implementation.
    for (name, id) in impl_names {
        match impl_ts.role(id) {
            tts::EventRole::Input => {
                builder.declare_input(name);
            }
            tts::EventRole::Output => {
                builder.declare_output(name);
            }
            tts::EventRole::Internal => {}
        }
    }

    let ts = builder
        .build()
        .map_err(|e| ContainError::Build(e.to_string()))?;
    let mut timed = TimedTransitionSystem::new(ts);
    for (event, delay) in obligation.implementation.delays() {
        let name = impl_ts.alphabet().name(event);
        if timed.underlying().alphabet().lookup(name).is_some() {
            timed.set_delay_by_name(name, delay);
        }
    }
    Ok(timed)
}

/// Checks the refinement obligation with the relative-timing engine.
///
/// # Errors
///
/// Returns [`ContainError`] if the monitor cannot be built; otherwise the
/// engine's [`Verdict`] is returned.
pub fn check_refinement(
    obligation: &RefinementObligation<'_>,
    options: &VerifyOptions,
) -> Result<Verdict, ContainError> {
    let monitor = build_containment_monitor(obligation)?;
    let property = SafetyProperty::new(format!(
        "{} refines {}",
        obligation.implementation.underlying().name(),
        obligation.abstraction.name()
    ))
    .forbid_marked_states();
    Ok(verify(&monitor, &property, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// Implementation: emits `req` then `ack`, repeatedly.
    fn impl_sys(with_spurious_ack: bool) -> TimedTransitionSystem {
        let mut b = TsBuilder::new("impl");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "req", s1);
        b.add_transition(s1, "ack", s0);
        if with_spurious_ack {
            b.add_transition(s0, "ack", s0);
        }
        b.set_initial(s0);
        b.declare_output("req");
        b.declare_output("ack");
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("req", d(1, 2));
        timed.set_delay_by_name("ack", d(1, 2));
        timed
    }

    /// Abstraction: `ack` only ever follows `req`.
    fn abstraction() -> tts::TransitionSystem {
        let mut b = TsBuilder::new("abs");
        let a0 = b.add_state("a0");
        let a1 = b.add_state("a1");
        b.add_transition(a0, "req", a1);
        b.add_transition(a1, "ack", a0);
        b.set_initial(a0);
        b.build().unwrap()
    }

    #[test]
    fn conforming_implementation_refines() {
        let implementation = impl_sys(false);
        let abs = abstraction();
        let obligation = RefinementObligation {
            implementation: &implementation,
            abstraction: &abs,
            watched: vec!["ack".to_owned()],
        };
        let verdict = check_refinement(&obligation, &VerifyOptions::default()).unwrap();
        assert!(verdict.is_verified());
    }

    #[test]
    fn spurious_output_is_caught() {
        let implementation = impl_sys(true);
        let abs = abstraction();
        let obligation = RefinementObligation {
            implementation: &implementation,
            abstraction: &abs,
            watched: vec!["ack".to_owned()],
        };
        let verdict = check_refinement(&obligation, &VerifyOptions::default()).unwrap();
        match verdict {
            Verdict::Failed { counterexample, .. } => {
                assert!(counterexample.events.contains(&"ack".to_owned()));
            }
            other => panic!("expected containment failure, got {other}"),
        }
    }

    #[test]
    fn unknown_watched_event_is_rejected() {
        let implementation = impl_sys(false);
        let abs = abstraction();
        let obligation = RefinementObligation {
            implementation: &implementation,
            abstraction: &abs,
            watched: vec!["nope".to_owned()],
        };
        assert!(matches!(
            check_refinement(&obligation, &VerifyOptions::default()),
            Err(ContainError::UnknownWatchedEvent(_))
        ));
    }

    #[test]
    fn monitor_carries_delays_and_marks() {
        let implementation = impl_sys(true);
        let abs = abstraction();
        let obligation = RefinementObligation {
            implementation: &implementation,
            abstraction: &abs,
            watched: vec!["ack".to_owned()],
        };
        let monitor = build_containment_monitor(&obligation).unwrap();
        assert_eq!(monitor.delay_by_name("req"), d(1, 2));
        assert!(monitor.underlying().has_marked_states());
    }
}
