//! The relative-timing verification engine (refinement loop of Fig. 3).
//!
//! Starting from the untimed state space, the engine searches for a failure
//! trace (a marked state, a deadlock, or a persistency violation). If the
//! trace is *timing consistent* with the absolute delay bounds it is a real
//! counterexample; otherwise a causal event structure is extracted from it,
//! the max-separation analysis derives event orderings implied by the delays,
//! and the resulting relative-timing constraints are used to prune the state
//! space (laziness: the constrained event's firing is delayed, its enabling
//! is untouched). The loop repeats until no failure remains or a consistent
//! counterexample is found. The accumulated constraints are the
//! back-annotation reported to the designer (Fig. 13 of the paper).
//!
//! Constraints are applied with the *global* relative-timing semantics of
//! Stevens et al. [16]: whenever both events are pending, the constrained
//! event does not fire first. Each constraint carries the separation that
//! justifies it in the context it was discovered in; the final verdict is
//! therefore "correct under the reported constraints", which is exactly the
//! deliverable of the paper's methodology. The zone-based explorer of the
//! `dbm` crate provides an independent exact check on small models.

use std::collections::BTreeSet;
use std::convert::Infallible;
use std::fmt;

use ces::{check_consistency, extract_ces, RelativeTimingConstraint, SeparationAnalysis};
use explore::{
    ExploreOptions, ExploreOutcome, ExploreSpec, ProgressEvent, SearchSpace, TraceOptions,
};
use tts::{EnablingTrace, EventId, StateId, TimedTransitionSystem, TransitionSystem};

use crate::property::SafetyProperty;

/// Options for [`verify`].
///
/// The shared exploration knobs live in the embedded [`ExploreSpec`]:
/// `threads` drives every exploration pass of the refinement loop; when the
/// `cancel` token fires, the current pass stops at its next batch boundary
/// and the verdict is [`Verdict::Inconclusive`] with reason
/// `"verification cancelled"`; the `progress` sink receives a
/// [`ProgressEvent::Refinement`] per pass plus the exploration's batch/level
/// events. The untimed failure search deduplicates exactly, so the spec's
/// `subsumption`, `limit` and `extrapolation` fields are carried inert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// The shared exploration knobs.
    pub spec: ExploreSpec,
    /// Maximum number of refinement iterations before giving up.
    pub max_refinements: usize,
    /// Relative-timing constraints assumed up front (e.g. documented
    /// environment requirements).
    pub assumed_constraints: Vec<RelativeTimingConstraint>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            spec: ExploreSpec::default(),
            max_refinements: 200,
            assumed_constraints: Vec::new(),
        }
    }
}

/// Why a failure trace is a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The trace reaches a state carrying the given violation mark.
    MarkedState {
        /// The violation message of the reached state.
        message: String,
    },
    /// The trace reaches a state with no outgoing transitions.
    Deadlock,
    /// Firing `by` disabled the pending event `disabled`, which must be
    /// persistent.
    PersistencyViolation {
        /// The event that lost its enabling.
        disabled: String,
        /// The event whose firing disabled it.
        by: String,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::MarkedState { message } => write!(f, "reaches violating state: {message}"),
            FailureKind::Deadlock => write!(f, "reaches a deadlock state"),
            FailureKind::PersistencyViolation { disabled, by } => {
                write!(f, "firing {by} disables pending event {disabled}")
            }
        }
    }
}

/// A timing-consistent failure trace: a real counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The kind of failure reached.
    pub kind: FailureKind,
    /// The event names fired along the trace, in order.
    pub events: Vec<String>,
    /// The witness run itself: the fired transitions ending at the violating
    /// (or deadlocked, or persistency-breaking) state, replayable against the
    /// underlying transition system.
    pub trace: FailureTrace,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after [{}]", self.kind, self.events.join(", "))
    }
}

/// The run of fired transitions leading from an initial state to a failure —
/// the witness the engine reports alongside a [`Verdict::Failed`].
///
/// The trace is reconstructed from the parent links the shared exploration
/// engine records, so it is identical for every [`ExploreSpec::threads`]
/// value and every step is a genuine transition of the verified system.
///
/// # Examples
///
/// ```
/// use transyt::{verify, SafetyProperty, Verdict, VerifyOptions};
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // `slow` can overtake `fast`: the failure is timing consistent.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let ok = b.add_state("ok");
/// let bad = b.add_state("bad");
/// b.add_transition(s0, "fast", ok);
/// b.add_transition(s0, "slow", bad);
/// b.mark_violation(bad, "slow fired before fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(4))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(2), Time::new(9))?);
///
/// let property = SafetyProperty::new("order").forbid_marked_states();
/// let verdict = verify(&timed, &property, &VerifyOptions::default());
/// let Verdict::Failed { counterexample, .. } = verdict else {
///     panic!("expected a counterexample");
/// };
/// // The trace replays step-by-step to the reported violating state.
/// let end = counterexample.trace.replay(timed.underlying()).unwrap();
/// assert_eq!(end, bad);
/// assert_eq!(counterexample.trace.end_state(), bad);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureTrace {
    start: StateId,
    steps: Vec<(EventId, StateId)>,
}

impl FailureTrace {
    /// Builds a trace from a start state and `(event, target)` steps.
    pub fn new(start: StateId, steps: Vec<(EventId, StateId)>) -> Self {
        FailureTrace { start, steps }
    }

    /// The initial state the trace starts from.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The fired `(event, target)` transitions, in order.
    pub fn steps(&self) -> &[(EventId, StateId)] {
        &self.steps
    }

    /// Number of fired transitions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the failure holds in the start state itself.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The failing state the trace ends at.
    pub fn end_state(&self) -> StateId {
        self.steps.last().map_or(self.start, |&(_, state)| state)
    }

    /// Replays the trace against `ts`, checking every step is an existing
    /// transition. Returns the end state on success, `None` if some step
    /// does not exist in the system.
    pub fn replay(&self, ts: &TransitionSystem) -> Option<StateId> {
        let mut state = self.start;
        for &(event, target) in &self.steps {
            if !ts.successors(state, event).contains(&target) {
                return None;
            }
            state = target;
        }
        Some(state)
    }

    /// Renders the trace with state and event names from `ts`.
    pub fn display<'a>(&'a self, ts: &'a TransitionSystem) -> FailureTraceDisplay<'a> {
        FailureTraceDisplay { trace: self, ts }
    }
}

/// Helper returned by [`FailureTrace::display`].
pub struct FailureTraceDisplay<'a> {
    trace: &'a FailureTrace,
    ts: &'a TransitionSystem,
}

impl fmt::Display for FailureTraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ts.state_name(self.trace.start))?;
        for &(event, target) in &self.trace.steps {
            write!(
                f,
                " --{}--> {}",
                self.ts.alphabet().name(event),
                self.ts.state_name(target)
            )?;
        }
        Ok(())
    }
}

/// Statistics and back-annotation of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// Name of the verified property.
    pub property: String,
    /// Number of refinement iterations performed.
    pub refinements: usize,
    /// Relative-timing constraints accumulated (assumed + derived).
    pub constraints: Vec<RelativeTimingConstraint>,
    /// Number of states reachable in the final (refined) state space.
    pub explored_states: usize,
}

impl VerificationReport {
    /// Renders the back-annotated constraints, one per line, in the style of
    /// Fig. 13 of the paper.
    pub fn constraint_listing(&self) -> String {
        if self.constraints.is_empty() {
            return "(no relative-timing constraints required)".to_owned();
        }
        self.constraints
            .iter()
            .map(|c| format!("  {c}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds under the reported relative-timing constraints.
    Verified(VerificationReport),
    /// A timing-consistent failure trace exists.
    Failed {
        /// The counterexample.
        counterexample: Counterexample,
        /// Statistics of the run.
        report: VerificationReport,
    },
    /// The engine could neither prove nor refute the property (refinement
    /// stuck or iteration limit reached).
    Inconclusive {
        /// Why the run stopped.
        reason: String,
        /// Statistics of the run.
        report: VerificationReport,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified(_))
    }

    /// The report of the run, whatever the outcome.
    pub fn report(&self) -> &VerificationReport {
        match self {
            Verdict::Verified(r) => r,
            Verdict::Failed { report, .. } => report,
            Verdict::Inconclusive { report, .. } => report,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified(r) => write!(
                f,
                "VERIFIED ({} refinements, {} constraints, {} states)",
                r.refinements,
                r.constraints.len(),
                r.explored_states
            ),
            Verdict::Failed {
                counterexample,
                report,
            } => write!(
                f,
                "FAILED after {} refinements: {counterexample}",
                report.refinements
            ),
            Verdict::Inconclusive { reason, report } => write!(
                f,
                "INCONCLUSIVE after {} refinements: {reason}",
                report.refinements
            ),
        }
    }
}

/// A failure discovered during one exploration pass.
struct Failure {
    kind: FailureKind,
    run: Vec<(EventId, StateId)>,
    start: StateId,
}

/// The constraint-pruned untimed state space of one refinement iteration:
/// configurations are discrete states, successors the transitions whose
/// firing is not blocked by an active relative-timing constraint (the lazy
/// semantics: enabling is untouched, only the firing is delayed). The space
/// halts the shared exploration engine at the first failure in breadth-first
/// order.
struct PrunedSpace<'a> {
    ts: &'a TransitionSystem,
    property: &'a SafetyProperty,
    resolved: Vec<(EventId, EventId)>,
}

impl PrunedSpace<'_> {
    fn blocked(&self, state: StateId, event: EventId) -> bool {
        self.resolved.iter().any(|&(before, after)| {
            after == event && before != event && self.ts.is_enabled(state, before)
        })
    }

    /// The first persistency violation triggered by the allowed firings from
    /// `state`, if any: the pending event disabled and the index of the
    /// violating successor.
    fn persistency_violation(
        &self,
        state: StateId,
        successors: &[(EventId, StateId)],
    ) -> Option<(EventId, usize)> {
        if self.property.persistent_events().is_empty() {
            return None;
        }
        let alphabet = self.ts.alphabet();
        for (k, &(event, target)) in successors.iter().enumerate() {
            for &pending in &self.ts.enabled(state) {
                if pending == event || !self.ts.is_enabled(state, pending) {
                    continue;
                }
                let name = alphabet.name(pending);
                if self.property.persistent_events().contains(name)
                    && !self.ts.is_enabled(target, pending)
                {
                    return Some((pending, k));
                }
            }
        }
        None
    }
}

impl SearchSpace for PrunedSpace<'_> {
    type Config = StateId;
    type Key = StateId;
    type Edge = EventId;
    type Error = Infallible;

    fn initial(&self) -> Result<Vec<StateId>, Infallible> {
        Ok(self.ts.initial_states().to_vec())
    }

    fn key(&self, config: &StateId) -> StateId {
        *config
    }

    fn expand(&self, &state: &StateId) -> Result<Vec<(EventId, StateId)>, Infallible> {
        Ok(self
            .ts
            .transitions_from(state)
            .iter()
            .copied()
            .filter(|&(event, _)| !self.blocked(state, event))
            .collect())
    }

    fn should_halt(&self, &state: &StateId, successors: &[(EventId, StateId)]) -> bool {
        if self.property.checks_marked_states() && !self.ts.violations(state).is_empty() {
            return true;
        }
        if self.ts.transitions_from(state).is_empty() {
            return self.property.checks_deadlock();
        }
        self.persistency_violation(state, successors).is_some()
    }
}

/// Verifies `property` on the timed system using the iterative
/// relative-timing refinement flow.
///
/// # Examples
///
/// ```
/// use transyt::{verify, SafetyProperty, VerifyOptions};
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
///
/// // `slow` must never overtake `fast`; the delays guarantee it.
/// let mut b = TsBuilder::new("race");
/// let s0 = b.add_state("s0");
/// let ok = b.add_state("ok");
/// let bad = b.add_state("bad");
/// let done = b.add_state("done");
/// let fast = b.add_transition(s0, "fast", ok);
/// let slow = b.add_transition(s0, "slow", bad);
/// b.add_transition_by_id(ok, slow, done);
/// b.add_transition_by_id(bad, fast, done);
/// b.mark_violation(bad, "slow fired before fast");
/// b.set_initial(s0);
/// let mut timed = TimedTransitionSystem::new(b.build()?);
/// timed.set_delay_by_name("fast", DelayInterval::new(Time::new(1), Time::new(2))?);
/// timed.set_delay_by_name("slow", DelayInterval::new(Time::new(5), Time::new(9))?);
///
/// let property = SafetyProperty::new("fast wins").forbid_marked_states();
/// let verdict = verify(&timed, &property, &VerifyOptions::default());
/// assert!(verdict.is_verified());
/// assert_eq!(verdict.report().constraints.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify(
    timed: &TimedTransitionSystem,
    property: &SafetyProperty,
    options: &VerifyOptions,
) -> Verdict {
    let ts = timed.underlying();
    let alphabet = ts.alphabet();

    // Active constraints, resolved to event ids of this system (constraints
    // naming unknown events are kept for reporting but cannot prune).
    let mut constraints: Vec<RelativeTimingConstraint> = options.assumed_constraints.clone();
    let resolve = |constraints: &[RelativeTimingConstraint]| -> Vec<(EventId, EventId)> {
        constraints
            .iter()
            .filter_map(|c| {
                let before = alphabet.lookup(c.before_name())?;
                let after = alphabet.lookup(c.after_name())?;
                Some((before, after))
            })
            .collect()
    };

    let make_report = |refinements: usize,
                       constraints: &[RelativeTimingConstraint],
                       explored_states: usize| VerificationReport {
        property: property.name().to_owned(),
        refinements,
        constraints: constraints.to_vec(),
        explored_states,
    };

    let mut refinements = 0usize;

    loop {
        // Breadth-first exploration of the pruned (lazy) state space on the
        // shared exploration engine. The engine halts at the first failure in
        // breadth-first order; the recorded nodes are then replayed to
        // rebuild predecessor links and classify the failure exactly as the
        // historical in-line search did.
        let space = PrunedSpace {
            ts,
            property,
            resolved: resolve(&constraints),
        };
        options.spec.progress.emit(&ProgressEvent::Refinement {
            iteration: refinements,
        });
        let search = match explore::explore(
            &space,
            &ExploreOptions {
                threads: options.spec.threads,
                record_edges: true,
                trace: TraceOptions::parents(),
                cancel: options.spec.cancel.clone(),
                progress: options.spec.progress.clone(),
                budget: options.spec.budget.clone(),
                ..ExploreOptions::default()
            },
        ) {
            Ok(ExploreOutcome::Completed(report)) => report,
            Ok(ExploreOutcome::LimitExceeded { .. }) => {
                unreachable!("the pruned search configures no limits")
            }
            Ok(ExploreOutcome::Cancelled { expanded, .. }) => {
                return Verdict::Inconclusive {
                    reason: "verification cancelled".to_owned(),
                    report: make_report(refinements, &constraints, expanded),
                }
            }
            Err(infallible) => match infallible {},
        };

        let mut visited: BTreeSet<StateId> = BTreeSet::new();
        for &s in ts.initial_states() {
            visited.insert(s);
        }
        let mut failure: Option<Failure> = None;
        let mut stuck_state: Option<StateId> = None;

        // Reconstruct the run to a node from the parent links the driver
        // recorded: the breadth-first discovery tree, identical for every
        // thread count.
        let reconstruct = |node: usize| {
            let (root, steps) = search
                .path_to(node)
                .expect("the engine search records parents");
            let run: Vec<(EventId, StateId)> = steps
                .into_iter()
                .map(|(event, target)| (event, search.nodes[target].config))
                .collect();
            (search.nodes[root].config, run)
        };

        // The driver halts at the *first* node whose halt condition fires,
        // so when `search.halted` is set the failure is exactly the last
        // recorded node; every earlier node only contributes state counts.
        // The failure is classified with the same predicates the search
        // space's halt condition uses, so halt and replay cannot drift
        // apart.
        for (index, node) in search.nodes.iter().enumerate() {
            let state = node.config;
            let is_failure_node = search.halted && index + 1 == search.nodes.len();
            if is_failure_node {
                if property.checks_marked_states() && !ts.violations(state).is_empty() {
                    let (start, run) = reconstruct(index);
                    failure = Some(Failure {
                        kind: FailureKind::MarkedState {
                            message: ts.violations(state)[0].clone(),
                        },
                        run,
                        start,
                    });
                } else if ts.transitions_from(state).is_empty() {
                    let (start, run) = reconstruct(index);
                    failure = Some(Failure {
                        kind: FailureKind::Deadlock,
                        run,
                        start,
                    });
                } else if let Some((pending, k)) =
                    space.persistency_violation(state, &node.successors)
                {
                    // Targets of the firings preceding the violating one
                    // were discovered before the search broke off.
                    for &(_, target) in &node.successors[..k] {
                        visited.insert(target);
                    }
                    let (event, target) = node.successors[k];
                    let (start, mut run) = reconstruct(index);
                    run.push((event, target));
                    failure = Some(Failure {
                        kind: FailureKind::PersistencyViolation {
                            disabled: alphabet.name(pending).to_owned(),
                            by: alphabet.name(event).to_owned(),
                        },
                        run,
                        start,
                    });
                }
                debug_assert!(failure.is_some(), "halted search without a failure node");
                break;
            }
            for &(_, target) in &node.successors {
                visited.insert(target);
            }
            if node.successors.is_empty()
                && !ts.transitions_from(state).is_empty()
                && stuck_state.is_none()
            {
                stuck_state = Some(state);
            }
        }

        let explored_states = visited.len();

        let Some(failure) = failure else {
            // A state whose enabled events are all blocked by constraints is
            // an over-constraining artefact: behaviours beyond it would be
            // hidden, so refuse to claim success.
            if let Some(state) = stuck_state {
                return Verdict::Inconclusive {
                    reason: format!(
                        "the relative-timing constraints block every enabled event in state {} \
                         (over-constrained refinement)",
                        ts.state_name(state)
                    ),
                    report: make_report(refinements, &constraints, explored_states),
                };
            }
            return Verdict::Verified(make_report(refinements, &constraints, explored_states));
        };

        // Build the enabling trace of the failure and test timing
        // consistency.
        let trace = match EnablingTrace::from_run(ts, failure.start, &failure.run) {
            Ok(trace) => trace,
            Err(e) => {
                return Verdict::Inconclusive {
                    reason: format!("internal error reconstructing the failure trace: {e}"),
                    report: make_report(refinements, &constraints, explored_states),
                }
            }
        };
        let events: Vec<String> = trace
            .events()
            .iter()
            .map(|&e| alphabet.name(e).to_owned())
            .collect();
        if check_consistency(&trace, timed).is_consistent() {
            return Verdict::Failed {
                counterexample: Counterexample {
                    kind: failure.kind,
                    events,
                    trace: FailureTrace::new(failure.start, failure.run),
                },
                report: make_report(refinements, &constraints, explored_states),
            };
        }

        // The failure trace is timing inconsistent: derive new constraints.
        let mut new_constraints = derive_constraints(&trace, timed, &constraints);
        if matches!(failure.kind, FailureKind::PersistencyViolation { .. }) && !trace.is_empty() {
            // Also analyse the trace without its final (disabling) step so the
            // disabled occurrence appears as a pending node.
            let truncated_run = &failure.run[..failure.run.len() - 1];
            if let Ok(truncated) = EnablingTrace::from_run(ts, failure.start, truncated_run) {
                let extra = derive_constraints(&truncated, timed, &constraints);
                for c in extra {
                    if !duplicate(&new_constraints, &c) {
                        new_constraints.push(c);
                    }
                }
            }
        }
        new_constraints.retain(|c| !duplicate(&constraints, c));
        if new_constraints.is_empty() {
            return Verdict::Inconclusive {
                reason: format!(
                    "failure trace [{}] ({}) is timing inconsistent but no relative-timing \
                     constraint could be derived to prune it",
                    events.join(", "),
                    failure.kind
                ),
                report: make_report(refinements, &constraints, explored_states),
            };
        }
        constraints.extend(new_constraints);
        refinements += 1;
        if refinements >= options.max_refinements {
            return Verdict::Inconclusive {
                reason: format!(
                    "refinement limit of {} iterations reached",
                    options.max_refinements
                ),
                report: make_report(refinements, &constraints, explored_states),
            };
        }
    }
}

fn duplicate(existing: &[RelativeTimingConstraint], candidate: &RelativeTimingConstraint) -> bool {
    existing.iter().any(|c| {
        c.before_name() == candidate.before_name() && c.after_name() == candidate.after_name()
    })
}

/// Derives relative-timing constraints that prune the given timing
/// inconsistent trace: for every step, if a pending event provably always
/// fires before the event that fired, order them.
fn derive_constraints(
    trace: &EnablingTrace,
    timed: &TimedTransitionSystem,
    existing: &[RelativeTimingConstraint],
) -> Vec<RelativeTimingConstraint> {
    let alphabet = timed.underlying().alphabet();
    let Ok(extracted) = extract_ces(trace, timed) else {
        return Vec::new();
    };
    let analysis = SeparationAnalysis::new(extracted.ces());
    let mut found: Vec<RelativeTimingConstraint> = Vec::new();
    let consider = |before: EventId,
                    before_node: ces::NodeId,
                    after: EventId,
                    after_node: ces::NodeId,
                    found: &mut Vec<RelativeTimingConstraint>| {
        let separation = analysis.max_separation(before_node, after_node);
        if let Some(constraint) = RelativeTimingConstraint::from_separation(
            before,
            alphabet.name(before),
            after,
            alphabet.name(after),
            separation,
        ) {
            if !duplicate(existing, &constraint) && !duplicate(found, &constraint) {
                found.push(constraint);
            }
        }
    };

    // For every step: can any event pending in the source state be proven to
    // always fire before the event that fired? If so, the firing was a
    // timing-inconsistent overtaking and the ordering prunes it.
    for (k, step) in trace.steps().iter().enumerate() {
        let Some(fired_node) = extracted.fired_node(k) else {
            continue;
        };
        for &pending in &step.enabled {
            if pending == step.event {
                continue;
            }
            let Some(pending_node) = extracted.node_active_at(k, pending) else {
                continue;
            };
            consider(pending, pending_node, step.event, fired_node, &mut found);
        }
    }

    // Orderings among the events still pending at the end of the trace (used
    // by persistency analyses where the disabling event has not fired in the
    // truncated trace).
    let pending_at_end = extracted.pending_nodes();
    for (i, &(a, a_node)) in pending_at_end.iter().enumerate() {
        for &(b, b_node) in pending_at_end.iter().skip(i + 1) {
            consider(a, a_node, b, b_node, &mut found);
            consider(b, b_node, a, a_node, &mut found);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use tts::{DelayInterval, Time, TsBuilder};

    fn d(l: i64, u: i64) -> DelayInterval {
        DelayInterval::new(Time::new(l), Time::new(u)).unwrap()
    }

    /// fast [1,2] and slow [5,9] race from s0; reaching `bad` (slow first) is
    /// a violation.
    fn race(fast_delay: DelayInterval, slow_delay: DelayInterval) -> TimedTransitionSystem {
        let mut b = TsBuilder::new("race");
        let s0 = b.add_state("s0");
        let ok = b.add_state("ok");
        let bad = b.add_state("bad");
        let done = b.add_state("done");
        let fast = b.add_transition(s0, "fast", ok);
        let slow = b.add_transition(s0, "slow", bad);
        b.add_transition_by_id(ok, slow, done);
        b.add_transition_by_id(bad, fast, done);
        b.mark_violation(bad, "slow fired before fast");
        b.set_initial(s0);
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("fast", fast_delay);
        timed.set_delay_by_name("slow", slow_delay);
        timed
    }

    #[test]
    fn timing_saves_the_race() {
        let timed = race(d(1, 2), d(5, 9));
        let property = SafetyProperty::new("order").forbid_marked_states();
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        match &verdict {
            Verdict::Verified(report) => {
                assert_eq!(report.refinements, 1);
                assert_eq!(report.constraints.len(), 1);
                assert_eq!(report.constraints[0].before_name(), "fast");
                assert_eq!(report.constraints[0].after_name(), "slow");
                assert!(report.constraint_listing().contains("fast < slow"));
            }
            other => panic!("expected verified, got {other}"),
        }
    }

    #[test]
    fn overlapping_delays_yield_a_counterexample() {
        let timed = race(d(1, 4), d(2, 9));
        let property = SafetyProperty::new("order").forbid_marked_states();
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        match verdict {
            Verdict::Failed { counterexample, .. } => {
                assert_eq!(counterexample.events, vec!["slow".to_owned()]);
                assert!(matches!(
                    counterexample.kind,
                    FailureKind::MarkedState { .. }
                ));
                // The witness trace replays to the reported violating state.
                let ts = timed.underlying();
                let end = counterexample.trace.replay(ts).expect("valid trace");
                assert_eq!(end, counterexample.trace.end_state());
                assert!(!ts.violations(end).is_empty());
                assert!(counterexample
                    .trace
                    .display(ts)
                    .to_string()
                    .contains("--slow--> bad"));
            }
            other => panic!("expected failure, got {other}"),
        }
    }

    #[test]
    fn counterexample_traces_are_identical_across_thread_counts() {
        let timed = race(d(1, 4), d(2, 9));
        let property = SafetyProperty::new("order").forbid_marked_states();
        let sequential = verify(&timed, &property, &VerifyOptions::default());
        let parallel = verify(
            &timed,
            &property,
            &VerifyOptions {
                spec: ExploreSpec::threaded(4),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(sequential, parallel);
        let Verdict::Failed { counterexample, .. } = sequential else {
            panic!("expected failure");
        };
        assert!(!counterexample.trace.is_empty());
        assert_eq!(counterexample.trace.len(), counterexample.events.len());
    }

    #[test]
    fn deadlock_counterexample_trace_ends_at_the_deadlock() {
        let mut b = TsBuilder::new("dead");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("stuck");
        b.add_transition(s0, "go", s1);
        b.set_initial(s0);
        let timed = TimedTransitionSystem::new(b.build().unwrap());
        let property = SafetyProperty::new("live").require_deadlock_freedom();
        let Verdict::Failed { counterexample, .. } =
            verify(&timed, &property, &VerifyOptions::default())
        else {
            panic!("expected deadlock failure");
        };
        let end = counterexample.trace.replay(timed.underlying()).unwrap();
        assert_eq!(end, s1);
        assert!(timed.underlying().transitions_from(end).is_empty());
        assert_eq!(counterexample.trace.start(), s0);
    }

    #[test]
    fn untimed_events_cannot_be_ordered() {
        // Both events unbounded: the failure cannot be pruned, and it is
        // timing consistent, so it is reported as a counterexample.
        let timed = race(DelayInterval::unbounded(), DelayInterval::unbounded());
        let property = SafetyProperty::new("order").forbid_marked_states();
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        assert!(matches!(verdict, Verdict::Failed { .. }));
    }

    #[test]
    fn trivial_property_verifies_without_refinement() {
        let timed = race(d(1, 2), d(5, 9));
        let property = SafetyProperty::new("nothing");
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        assert!(verdict.is_verified());
        assert_eq!(verdict.report().refinements, 0);
    }

    #[test]
    fn deadlock_detection() {
        let mut b = TsBuilder::new("dead");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("stuck");
        b.add_transition(s0, "go", s1);
        b.set_initial(s0);
        let timed = TimedTransitionSystem::new(b.build().unwrap());
        let property = SafetyProperty::new("live").require_deadlock_freedom();
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        match verdict {
            Verdict::Failed { counterexample, .. } => {
                assert_eq!(counterexample.kind, FailureKind::Deadlock);
            }
            other => panic!("expected deadlock failure, got {other}"),
        }
    }

    #[test]
    fn persistency_violation_is_found_and_pruned_by_timing() {
        // `victim` is enabled together with `killer`; firing `killer` disables
        // `victim`. With delays killer [5,9] and victim [1,2] the victim
        // always fires first, so the circuit is persistent under timing.
        let mut b = TsBuilder::new("persistency");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        let victim = b.add_transition(s0, "victim", s1);
        let killer = b.add_transition(s0, "killer", s2);
        b.add_transition_by_id(s1, killer, s3);
        // In s2 the victim is no longer enabled: persistency violation.
        b.set_initial(s0);
        let _ = victim;
        let mut timed = TimedTransitionSystem::new(b.build().unwrap());
        timed.set_delay_by_name("victim", d(1, 2));
        timed.set_delay_by_name("killer", d(5, 9));
        let property = SafetyProperty::new("persistent").require_persistency(["victim"]);
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        match &verdict {
            Verdict::Verified(report) => {
                assert!(report
                    .constraints
                    .iter()
                    .any(|c| c.before_name() == "victim" && c.after_name() == "killer"));
            }
            other => panic!("expected verified, got {other}"),
        }
        // With comparable delays the violation is real.
        let mut timed = race(d(1, 4), d(2, 9));
        let _ = &mut timed;
    }

    #[test]
    fn assumed_constraints_are_reported_and_used() {
        let timed = race(DelayInterval::unbounded(), DelayInterval::unbounded());
        let property = SafetyProperty::new("order").forbid_marked_states();
        let fast = timed.underlying().alphabet().lookup("fast").unwrap();
        let slow = timed.underlying().alphabet().lookup("slow").unwrap();
        let options = VerifyOptions {
            assumed_constraints: vec![RelativeTimingConstraint::assumed(
                fast, "fast", slow, "slow",
            )],
            ..VerifyOptions::default()
        };
        let verdict = verify(&timed, &property, &options);
        assert!(verdict.is_verified());
        assert_eq!(verdict.report().refinements, 0);
        assert_eq!(verdict.report().constraints.len(), 1);
    }

    #[test]
    fn cancelled_verification_is_inconclusive() {
        let token = explore::CancelToken::new();
        token.cancel();
        let timed = race(d(1, 2), d(5, 9));
        let property = SafetyProperty::new("order").forbid_marked_states();
        let verdict = verify(
            &timed,
            &property,
            &VerifyOptions {
                spec: ExploreSpec {
                    cancel: token,
                    ..ExploreSpec::default()
                },
                ..VerifyOptions::default()
            },
        );
        match verdict {
            Verdict::Inconclusive { reason, report } => {
                assert_eq!(reason, "verification cancelled");
                assert_eq!(report.explored_states, 0);
            }
            other => panic!("expected inconclusive, got {other}"),
        }
    }

    #[test]
    fn verdict_display() {
        let timed = race(d(1, 2), d(5, 9));
        let property = SafetyProperty::new("order").forbid_marked_states();
        let verdict = verify(&timed, &property, &VerifyOptions::default());
        assert!(verdict.to_string().starts_with("VERIFIED"));
    }
}
