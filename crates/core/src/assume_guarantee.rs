//! Assume–guarantee proof bookkeeping.
//!
//! The paper's pipeline proof (§4.2) is a sequence of five obligations:
//! an *assume* step (the abstractions satisfy the specification), three
//! *guarantee* steps discharging the abstractions against implementations
//! (one of which is the behavioural-fixed-point/induction step) and the
//! 1-stage transistor-level verification. [`ProofReport`] collects the
//! verdicts, timings and refinement counts of such a sequence — it is the
//! in-memory form of Table 1 of the paper.

use std::fmt;
use std::time::Duration;

use crate::engine::Verdict;

/// One discharged (or failed) obligation.
#[derive(Debug, Clone)]
pub struct ProofStep {
    /// Short name of the obligation (e.g. "A_in || A_out |= S").
    pub name: String,
    /// The engine's verdict.
    pub verdict: Verdict,
    /// Wall-clock time spent on the obligation.
    pub elapsed: Duration,
}

impl ProofStep {
    /// Creates a step record.
    pub fn new(name: impl Into<String>, verdict: Verdict, elapsed: Duration) -> Self {
        ProofStep {
            name: name.into(),
            verdict,
            elapsed,
        }
    }
}

/// A sequence of proof steps, typically the five obligations of §4.2.
#[derive(Debug, Clone, Default)]
pub struct ProofReport {
    steps: Vec<ProofStep>,
}

impl ProofReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        ProofReport::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Returns `true` if every step was verified.
    pub fn all_verified(&self) -> bool {
        self.steps.iter().all(|s| s.verdict.is_verified())
    }

    /// Total number of refinement iterations across all steps.
    pub fn total_refinements(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.verdict.report().refinements)
            .sum()
    }

    /// Renders the report as a table in the format of Table 1 of the paper:
    /// experiment, CPU time, number of refinements.
    pub fn summary_table(&self) -> String {
        let mut out = String::from(
            "experiment                                          time        refinements  verdict\n",
        );
        for (i, step) in self.steps.iter().enumerate() {
            let refinements = step.verdict.report().refinements;
            let refinement_text = if refinements == 0 {
                "-".to_owned()
            } else {
                refinements.to_string()
            };
            let verdict = match &step.verdict {
                Verdict::Verified(_) => "verified",
                Verdict::Failed { .. } => "FAILED",
                Verdict::Inconclusive { .. } => "inconclusive",
            };
            out.push_str(&format!(
                "{}. {:<48} {:>10.2?}  {:>11}  {}\n",
                i + 1,
                step.name,
                step.elapsed,
                refinement_text,
                verdict
            ));
        }
        out
    }
}

impl fmt::Display for ProofReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VerificationReport;

    fn verified(refinements: usize) -> Verdict {
        Verdict::Verified(VerificationReport {
            property: "p".into(),
            refinements,
            constraints: Vec::new(),
            explored_states: 10,
        })
    }

    #[test]
    fn report_accumulates_steps() {
        let mut report = ProofReport::new();
        report.push(ProofStep::new(
            "A_in || A_out |= S",
            verified(0),
            Duration::from_millis(5),
        ));
        report.push(ProofStep::new(
            "A_in || I || OUT <= A_in || A_out",
            verified(7),
            Duration::from_millis(120),
        ));
        assert!(report.all_verified());
        assert_eq!(report.total_refinements(), 7);
        assert_eq!(report.steps().len(), 2);
        let table = report.summary_table();
        assert!(table.contains("1. A_in || A_out |= S"));
        assert!(table.contains("verified"));
        assert!(table.contains('7'));
        assert_eq!(report.to_string(), table);
    }

    #[test]
    fn failed_steps_are_visible() {
        let mut report = ProofReport::new();
        report.push(ProofStep::new(
            "broken",
            Verdict::Inconclusive {
                reason: "limit".into(),
                report: VerificationReport {
                    property: "p".into(),
                    refinements: 3,
                    constraints: Vec::new(),
                    explored_states: 1,
                },
            },
            Duration::from_millis(1),
        ));
        assert!(!report.all_verified());
        assert!(report.summary_table().contains("inconclusive"));
    }
}
