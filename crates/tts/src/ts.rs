//! Explicit-state labelled transition systems.
//!
//! The *underlying transition system* of the paper (§2.1) is a tuple
//! `⟨S, Σ, T, s_in⟩`. States carry a human-readable name and an optional list
//! of *violation marks* (e.g. "short-circuit: Z∧ACK") placed by the model
//! generators; the verification engine searches for traces reaching marked
//! states. Events are classified as inputs, outputs or internal events of the
//! component, which is what the assume–guarantee containment check needs.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use crate::event::{Alphabet, EventId};

/// Index of a state within a [`TransitionSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index.
    pub fn from_index(index: usize) -> Self {
        StateId(index as u32)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Interface role of an event with respect to a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventRole {
    /// The component observes the event; the environment produces it.
    Input,
    /// The component produces the event.
    Output,
    /// The event is internal to the component.
    Internal,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct StateData {
    name: String,
    violations: Vec<String>,
}

/// An explicit-state labelled transition system.
///
/// Construct instances with [`TsBuilder`].
///
/// # Examples
///
/// ```
/// use tts::TsBuilder;
/// let mut b = TsBuilder::new("toggle");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// b.add_transition(s0, "a+", s1);
/// b.add_transition(s1, "a-", s0);
/// b.set_initial(s0);
/// let ts = b.build()?;
/// assert_eq!(ts.state_count(), 2);
/// assert_eq!(ts.enabled(s0).len(), 1);
/// # Ok::<(), tts::BuildTsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionSystem {
    name: String,
    alphabet: Alphabet,
    states: Vec<StateData>,
    /// Outgoing transitions indexed by source state.
    outgoing: Vec<Vec<(EventId, StateId)>>,
    initial: Vec<StateId>,
    inputs: BTreeSet<EventId>,
    outputs: BTreeSet<EventId>,
}

/// Error returned by [`TsBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTsError {
    /// The system has no states.
    NoStates,
    /// No initial state was declared.
    NoInitialState,
    /// An event was declared both input and output.
    ConflictingRole(String),
}

impl fmt::Display for BuildTsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTsError::NoStates => write!(f, "transition system has no states"),
            BuildTsError::NoInitialState => write!(f, "no initial state declared"),
            BuildTsError::ConflictingRole(e) => {
                write!(f, "event `{e}` declared both input and output")
            }
        }
    }
}

impl std::error::Error for BuildTsError {}

/// Builder for [`TransitionSystem`].
#[derive(Debug, Clone, Default)]
pub struct TsBuilder {
    name: String,
    alphabet: Alphabet,
    states: Vec<StateData>,
    outgoing: Vec<Vec<(EventId, StateId)>>,
    initial: Vec<StateId>,
    inputs: BTreeSet<EventId>,
    outputs: BTreeSet<EventId>,
}

impl TsBuilder {
    /// Creates an empty builder for a system called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TsBuilder {
            name: name.into(),
            ..TsBuilder::default()
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(StateData {
            name: name.into(),
            violations: Vec::new(),
        });
        self.outgoing.push(Vec::new());
        id
    }

    /// Adds a transition labelled with event `event` (interned by name).
    pub fn add_transition(
        &mut self,
        from: StateId,
        event: impl AsRef<str>,
        to: StateId,
    ) -> EventId {
        let e = self.alphabet.intern(event);
        self.add_transition_by_id(from, e, to);
        e
    }

    /// Adds a transition using an already interned event id.
    pub fn add_transition_by_id(&mut self, from: StateId, event: EventId, to: StateId) {
        let entry = (event, to);
        let row = &mut self.outgoing[from.index()];
        if !row.contains(&entry) {
            row.push(entry);
        }
    }

    /// Interns an event name without adding a transition (useful to declare
    /// alphabet membership of events that never fire).
    pub fn intern_event(&mut self, event: impl AsRef<str>) -> EventId {
        self.alphabet.intern(event)
    }

    /// Declares a state as initial (may be called multiple times).
    pub fn set_initial(&mut self, state: StateId) {
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
    }

    /// Marks a state with a violation message (e.g. a short-circuit
    /// condition that holds in that state).
    pub fn mark_violation(&mut self, state: StateId, message: impl Into<String>) {
        self.states[state.index()].violations.push(message.into());
    }

    /// Declares an event as an input of the component.
    pub fn declare_input(&mut self, event: impl AsRef<str>) -> EventId {
        let e = self.alphabet.intern(event);
        self.inputs.insert(e);
        e
    }

    /// Declares an event as an output of the component.
    pub fn declare_output(&mut self, event: impl AsRef<str>) -> EventId {
        let e = self.alphabet.intern(event);
        self.outputs.insert(e);
        e
    }

    /// Number of states added so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Finalises the builder.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTsError`] if the system has no states, no initial state,
    /// or an event is declared both input and output.
    pub fn build(self) -> Result<TransitionSystem, BuildTsError> {
        if self.states.is_empty() {
            return Err(BuildTsError::NoStates);
        }
        if self.initial.is_empty() {
            return Err(BuildTsError::NoInitialState);
        }
        if let Some(&e) = self.inputs.intersection(&self.outputs).next() {
            return Err(BuildTsError::ConflictingRole(
                self.alphabet.name(e).to_owned(),
            ));
        }
        Ok(TransitionSystem {
            name: self.name,
            alphabet: self.alphabet,
            states: self.states,
            outgoing: self.outgoing,
            initial: self.initial,
            inputs: self.inputs,
            outputs: self.outputs,
        })
    }
}

impl TransitionSystem {
    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The event alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.outgoing.iter().map(Vec::len).sum()
    }

    /// All state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len()).map(|i| StateId(i as u32))
    }

    /// Initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this system.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.states[state.index()].name
    }

    /// Violation marks attached to a state.
    pub fn violations(&self, state: StateId) -> &[String] {
        &self.states[state.index()].violations
    }

    /// Returns `true` if any reachable or unreachable state carries a
    /// violation mark.
    pub fn has_marked_states(&self) -> bool {
        self.states.iter().any(|s| !s.violations.is_empty())
    }

    /// Outgoing transitions of a state as `(event, target)` pairs.
    pub fn transitions_from(&self, state: StateId) -> &[(EventId, StateId)] {
        &self.outgoing[state.index()]
    }

    /// All transitions as `(source, event, target)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, EventId, StateId)> + '_ {
        self.outgoing
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&(e, to)| (StateId(i as u32), e, to)))
    }

    /// The set of events enabled in `state` (events with at least one
    /// outgoing transition).
    pub fn enabled(&self, state: StateId) -> BTreeSet<EventId> {
        self.outgoing[state.index()]
            .iter()
            .map(|&(e, _)| e)
            .collect()
    }

    /// Returns `true` if `event` is enabled in `state`.
    pub fn is_enabled(&self, state: StateId, event: EventId) -> bool {
        self.outgoing[state.index()]
            .iter()
            .any(|&(e, _)| e == event)
    }

    /// Successor states reached from `state` by `event`.
    pub fn successors(&self, state: StateId, event: EventId) -> Vec<StateId> {
        self.outgoing[state.index()]
            .iter()
            .filter(|&&(e, _)| e == event)
            .map(|&(_, to)| to)
            .collect()
    }

    /// Role of an event for this component.
    pub fn role(&self, event: EventId) -> EventRole {
        if self.inputs.contains(&event) {
            EventRole::Input
        } else if self.outputs.contains(&event) {
            EventRole::Output
        } else {
            EventRole::Internal
        }
    }

    /// Input events of the component.
    pub fn inputs(&self) -> &BTreeSet<EventId> {
        &self.inputs
    }

    /// Output events of the component.
    pub fn outputs(&self) -> &BTreeSet<EventId> {
        &self.outputs
    }

    /// States reachable from the initial states (breadth-first order).
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        for &s in &self.initial {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for &(_, to) in &self.outgoing[s.index()] {
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    queue.push_back(to);
                }
            }
        }
        order
    }

    /// Reachable states with no outgoing transitions.
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.reachable_states()
            .into_iter()
            .filter(|s| self.outgoing[s.index()].is_empty())
            .collect()
    }

    /// Reachable states carrying at least one violation mark.
    pub fn marked_reachable_states(&self) -> Vec<StateId> {
        self.reachable_states()
            .into_iter()
            .filter(|s| !self.states[s.index()].violations.is_empty())
            .collect()
    }

    /// Shortest run (sequence of `(event, target)` steps) from an initial
    /// state to a state satisfying `goal`, if one exists.
    pub fn shortest_run_to<F>(&self, goal: F) -> Option<(StateId, Vec<(EventId, StateId)>)>
    where
        F: Fn(StateId) -> bool,
    {
        let mut pred: Vec<Option<(StateId, EventId)>> = vec![None; self.states.len()];
        let mut seen = vec![false; self.states.len()];
        let mut queue = VecDeque::new();
        for &s in &self.initial {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
        let mut target = None;
        'search: while let Some(s) = queue.pop_front() {
            if goal(s) {
                target = Some(s);
                break 'search;
            }
            for &(e, to) in &self.outgoing[s.index()] {
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    pred[to.index()] = Some((s, e));
                    queue.push_back(to);
                }
            }
        }
        let target = target?;
        // Reconstruct the path back to an initial state.
        let mut steps = Vec::new();
        let mut cur = target;
        while let Some((prev, event)) = pred[cur.index()] {
            steps.push((event, cur));
            cur = prev;
        }
        steps.reverse();
        Some((cur, steps))
    }

    /// Returns a copy of the system with every event renamed through `f`.
    ///
    /// Renaming is used to instantiate several copies of the same component
    /// with per-instance signal names (e.g. `ACK` of stage 1 vs. stage 2).
    /// Input/output declarations and violation marks are preserved.
    #[must_use]
    pub fn rename_events<F>(&self, f: F) -> TransitionSystem
    where
        F: Fn(&str) -> String,
    {
        let mut builder = TsBuilder::new(self.name.clone());
        for s in &self.states {
            let id = builder.add_state(s.name.clone());
            for v in &s.violations {
                builder.mark_violation(id, v.clone());
            }
        }
        for &s in &self.initial {
            builder.set_initial(s);
        }
        for (from, e, to) in self.transitions() {
            builder.add_transition(from, f(self.alphabet.name(e)), to);
        }
        for &e in &self.inputs {
            builder.declare_input(f(self.alphabet.name(e)));
        }
        for &e in &self.outputs {
            builder.declare_output(f(self.alphabet.name(e)));
        }
        builder.build().expect("renaming preserves well-formedness")
    }

    /// Returns a copy with a different name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> TransitionSystem {
        self.name = name.into();
        self
    }

    /// Map from event name to role, useful for diagnostics.
    pub fn interface(&self) -> HashMap<String, EventRole> {
        self.alphabet
            .iter()
            .map(|(id, name)| (name.to_owned(), self.role(id)))
            .collect()
    }
}

impl fmt::Display for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states, {} transitions, {} events)",
            self.name,
            self.state_count(),
            self.transition_count(),
            self.alphabet.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_cycle() -> TransitionSystem {
        let mut b = TsBuilder::new("cycle");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s2);
        b.add_transition(s2, "c", s0);
        b.set_initial(s0);
        b.build().unwrap()
    }

    #[test]
    fn build_validation() {
        assert_eq!(
            TsBuilder::new("empty").build().unwrap_err(),
            BuildTsError::NoStates
        );
        let mut b = TsBuilder::new("no-init");
        b.add_state("s0");
        assert_eq!(b.build().unwrap_err(), BuildTsError::NoInitialState);
        let mut b = TsBuilder::new("conflict");
        let s0 = b.add_state("s0");
        b.set_initial(s0);
        b.declare_input("x");
        b.declare_output("x");
        assert!(matches!(
            b.build().unwrap_err(),
            BuildTsError::ConflictingRole(_)
        ));
    }

    #[test]
    fn reachability_and_enabling() {
        let ts = simple_cycle();
        assert_eq!(ts.state_count(), 3);
        assert_eq!(ts.transition_count(), 3);
        assert_eq!(ts.reachable_states().len(), 3);
        assert!(ts.deadlock_states().is_empty());
        let s0 = StateId(0);
        let a = ts.alphabet().lookup("a").unwrap();
        assert!(ts.is_enabled(s0, a));
        assert_eq!(ts.successors(s0, a), vec![StateId(1)]);
        assert_eq!(ts.enabled(s0).len(), 1);
    }

    #[test]
    fn unreachable_states_are_excluded() {
        let mut b = TsBuilder::new("island");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let orphan = b.add_state("orphan");
        b.add_transition(s0, "a", s1);
        b.add_transition(orphan, "z", orphan);
        b.set_initial(s0);
        let ts = b.build().unwrap();
        assert_eq!(ts.reachable_states(), vec![s0, s1]);
        assert_eq!(ts.deadlock_states(), vec![s1]);
    }

    #[test]
    fn shortest_run_reaches_marked_state() {
        let mut b = TsBuilder::new("marked");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("bad");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s2);
        b.add_transition(s0, "c", s0);
        b.mark_violation(s2, "boom");
        b.set_initial(s0);
        let ts = b.build().unwrap();
        assert!(ts.has_marked_states());
        assert_eq!(ts.marked_reachable_states(), vec![s2]);
        let (start, run) = ts
            .shortest_run_to(|s| !ts.violations(s).is_empty())
            .unwrap();
        assert_eq!(start, s0);
        assert_eq!(run.len(), 2);
        assert_eq!(ts.alphabet().name(run[0].0), "a");
        assert_eq!(ts.alphabet().name(run[1].0), "b");
    }

    #[test]
    fn roles_and_interface() {
        let mut b = TsBuilder::new("roles");
        let s0 = b.add_state("s0");
        b.set_initial(s0);
        b.add_transition(s0, "in", s0);
        b.add_transition(s0, "out", s0);
        b.add_transition(s0, "tau", s0);
        b.declare_input("in");
        b.declare_output("out");
        let ts = b.build().unwrap();
        let i = ts.alphabet().lookup("in").unwrap();
        let o = ts.alphabet().lookup("out").unwrap();
        let t = ts.alphabet().lookup("tau").unwrap();
        assert_eq!(ts.role(i), EventRole::Input);
        assert_eq!(ts.role(o), EventRole::Output);
        assert_eq!(ts.role(t), EventRole::Internal);
        assert_eq!(ts.interface().len(), 3);
    }

    #[test]
    fn rename_preserves_structure() {
        let ts = simple_cycle();
        let renamed = ts.rename_events(|n| format!("{n}_1"));
        assert_eq!(renamed.state_count(), ts.state_count());
        assert_eq!(renamed.transition_count(), ts.transition_count());
        assert!(renamed.alphabet().lookup("a_1").is_some());
        assert!(renamed.alphabet().lookup("a").is_none());
    }

    #[test]
    fn duplicate_transitions_are_ignored() {
        let mut b = TsBuilder::new("dup");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s0, "a", s1);
        b.set_initial(s0);
        let ts = b.build().unwrap();
        assert_eq!(ts.transition_count(), 1);
    }

    #[test]
    fn display_summarises() {
        let ts = simple_cycle();
        let text = ts.to_string();
        assert!(text.contains("cycle"));
        assert!(text.contains("3 states"));
    }
}
