//! Discrete time values, upper bounds and delay intervals.
//!
//! The paper annotates every event of a timed transition system with a delay
//! interval `[δl, δu]` where `δu` may be infinite (the default interval is
//! `[0, ∞)`). Delays in the IPCMOS models are small integers (e.g. `[1,2]`
//! gate delays, `[8,11]` environment response). The introductory example of
//! Fig. 1 uses half-integer delays; callers scale those by two (documented in
//! the example itself), so a plain integer time base is sufficient and keeps
//! the difference-bound arithmetic exact.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub};

/// A point in (relative) time, measured in integer time units.
///
/// `Time` is a thin newtype over `i64` so that delays, separations and time
/// stamps cannot be accidentally mixed with unrelated integers.
///
/// # Examples
///
/// ```
/// use tts::Time;
/// let t = Time::new(3) + Time::new(4);
/// assert_eq!(t, Time::new(7));
/// assert_eq!(t.as_i64(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The zero time value.
    pub const ZERO: Time = Time(0);

    /// Creates a time value from a raw number of time units.
    pub const fn new(units: i64) -> Self {
        Time(units)
    }

    /// Returns the raw number of time units.
    pub const fn as_i64(self) -> i64 {
        self.0
    }

    /// Saturating addition, useful when accumulating path lengths.
    #[must_use]
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Time {
    fn from(units: i64) -> Self {
        Time(units)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

/// An upper bound on a delay: either a finite time or `∞`.
///
/// # Examples
///
/// ```
/// use tts::{Bound, Time};
/// assert!(Bound::Finite(Time::new(5)) < Bound::Infinite);
/// assert!(Bound::Finite(Time::new(5)) >= Bound::Finite(Time::new(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// A finite bound.
    Finite(Time),
    /// No upper bound (`∞`).
    Infinite,
}

impl Bound {
    /// Returns the finite value, if any.
    pub fn finite(self) -> Option<Time> {
        match self {
            Bound::Finite(t) => Some(t),
            Bound::Infinite => None,
        }
    }

    /// Returns `true` if the bound is infinite.
    pub fn is_infinite(self) -> bool {
        matches!(self, Bound::Infinite)
    }

    /// Adds a finite time to the bound (`∞ + t = ∞`).
    #[must_use]
    pub fn plus(self, t: Time) -> Bound {
        match self {
            Bound::Finite(b) => Bound::Finite(b + t),
            Bound::Infinite => Bound::Infinite,
        }
    }

    /// The smaller of two bounds.
    #[must_use]
    pub fn min(self, other: Bound) -> Bound {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two bounds.
    #[must_use]
    pub fn max(self, other: Bound) -> Bound {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Bound::*;
        match (self, other) {
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(t) => write!(f, "{t}"),
            Bound::Infinite => write!(f, "inf"),
        }
    }
}

impl From<Time> for Bound {
    fn from(t: Time) -> Self {
        Bound::Finite(t)
    }
}

/// A delay interval `[lower, upper]` attached to an event of a timed
/// transition system.
///
/// `lower` is always finite and non-negative; `upper` may be [`Bound::Infinite`]
/// which corresponds to the paper's default `[0, ∞)` interval.
///
/// # Examples
///
/// ```
/// use tts::{DelayInterval, Time};
/// let d = DelayInterval::new(Time::new(1), Time::new(2))?;
/// assert_eq!(d.lower(), Time::new(1));
/// assert!(!d.upper().is_infinite());
/// let any = DelayInterval::unbounded();
/// assert!(any.upper().is_infinite());
/// # Ok::<(), tts::InvalidIntervalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayInterval {
    lower: Time,
    upper: Bound,
}

/// Error returned when constructing an empty or negative delay interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidIntervalError {
    lower: Time,
    upper: Bound,
}

impl fmt::Display for InvalidIntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid delay interval [{}, {}]: bounds must satisfy 0 <= lower <= upper",
            self.lower, self.upper
        )
    }
}

impl std::error::Error for InvalidIntervalError {}

impl DelayInterval {
    /// Creates a closed interval `[lower, upper]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] if `lower` is negative or greater than
    /// `upper`.
    pub fn new(lower: Time, upper: Time) -> Result<Self, InvalidIntervalError> {
        Self::with_bound(lower, Bound::Finite(upper))
    }

    /// Creates an interval `[lower, upper]` where `upper` may be infinite.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] if `lower` is negative or greater than
    /// a finite `upper`.
    pub fn with_bound(lower: Time, upper: Bound) -> Result<Self, InvalidIntervalError> {
        let valid = lower >= Time::ZERO
            && match upper {
                Bound::Finite(u) => lower <= u,
                Bound::Infinite => true,
            };
        if valid {
            Ok(DelayInterval { lower, upper })
        } else {
            Err(InvalidIntervalError { lower, upper })
        }
    }

    /// The default interval `[0, ∞)` used for events without timing
    /// information.
    pub fn unbounded() -> Self {
        DelayInterval {
            lower: Time::ZERO,
            upper: Bound::Infinite,
        }
    }

    /// Creates an interval `[lower, ∞)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] if `lower` is negative.
    pub fn at_least(lower: Time) -> Result<Self, InvalidIntervalError> {
        Self::with_bound(lower, Bound::Infinite)
    }

    /// Creates the degenerate interval `[t, t]` (a fixed delay).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] if `t` is negative.
    pub fn exactly(t: Time) -> Result<Self, InvalidIntervalError> {
        Self::new(t, t)
    }

    /// Lower delay bound `δl`.
    pub fn lower(&self) -> Time {
        self.lower
    }

    /// Upper delay bound `δu`.
    pub fn upper(&self) -> Bound {
        self.upper
    }

    /// Returns `true` if this is the uninformative `[0, ∞)` interval.
    pub fn is_unbounded(&self) -> bool {
        self.lower == Time::ZERO && self.upper.is_infinite()
    }

    /// Intersection of two intervals, used when composing systems that both
    /// constrain the same event.
    ///
    /// Returns `None` if the intervals are disjoint.
    pub fn intersect(&self, other: &DelayInterval) -> Option<DelayInterval> {
        let lower = self.lower.max(other.lower);
        let upper = self.upper.min(other.upper);
        DelayInterval::with_bound(lower, upper).ok()
    }
}

impl Default for DelayInterval {
    fn default() -> Self {
        DelayInterval::unbounded()
    }
}

impl fmt::Display for DelayInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.upper {
            Bound::Finite(u) => write!(f, "[{},{}]", self.lower, u),
            Bound::Infinite => write!(f, "[{},inf)", self.lower),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let a = Time::new(5);
        let b = Time::new(3);
        assert_eq!(a + b, Time::new(8));
        assert_eq!(a - b, Time::new(2));
        assert_eq!(-a, Time::new(-5));
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn bound_ordering() {
        assert!(Bound::Finite(Time::new(100)) < Bound::Infinite);
        assert!(Bound::Infinite <= Bound::Infinite);
        assert_eq!(
            Bound::Finite(Time::new(2)).min(Bound::Finite(Time::new(5))),
            Bound::Finite(Time::new(2))
        );
        assert_eq!(
            Bound::Infinite.max(Bound::Finite(Time::new(5))),
            Bound::Infinite
        );
        assert_eq!(Bound::Infinite.plus(Time::new(3)), Bound::Infinite);
        assert_eq!(
            Bound::Finite(Time::new(2)).plus(Time::new(3)),
            Bound::Finite(Time::new(5))
        );
    }

    #[test]
    fn interval_construction() {
        assert!(DelayInterval::new(Time::new(2), Time::new(1)).is_err());
        assert!(DelayInterval::new(Time::new(-1), Time::new(1)).is_err());
        let d = DelayInterval::new(Time::new(1), Time::new(2)).unwrap();
        assert_eq!(d.lower(), Time::new(1));
        assert_eq!(d.upper(), Bound::Finite(Time::new(2)));
        assert!(!d.is_unbounded());
        assert!(DelayInterval::unbounded().is_unbounded());
        assert_eq!(format!("{d}"), "[1,2]");
        assert_eq!(format!("{}", DelayInterval::unbounded()), "[0,inf)");
    }

    #[test]
    fn interval_intersection() {
        let a = DelayInterval::new(Time::new(1), Time::new(4)).unwrap();
        let b = DelayInterval::new(Time::new(3), Time::new(6)).unwrap();
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, DelayInterval::new(Time::new(3), Time::new(4)).unwrap());
        let d = DelayInterval::new(Time::new(5), Time::new(6)).unwrap();
        assert!(a.intersect(&d).is_none());
        let any = DelayInterval::unbounded();
        assert_eq!(a.intersect(&any), Some(a));
    }

    #[test]
    fn error_display_mentions_bounds() {
        let err = DelayInterval::new(Time::new(2), Time::new(1)).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("invalid delay interval"));
    }
}
