//! Runs and traces with enabling information.
//!
//! A *trace with enabling information* (§2.1 of the paper) is a sequence
//! `E_1 →e_1 E_2 →e_2 …` where `E_i` is the set of events enabled when `e_i`
//! fires. In addition to the enabled sets, the timing analysis needs to know
//! *when* each fired event became enabled (its enabling point), because the
//! firing time of an event is constrained relative to its enabling time, not
//! to the previous firing.

use std::collections::BTreeSet;
use std::fmt;

use crate::event::EventId;
use crate::ts::{StateId, TransitionSystem};

/// One step of an [`EnablingTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// State the event fires from.
    pub from: StateId,
    /// The fired event.
    pub event: EventId,
    /// State reached by the firing.
    pub to: StateId,
    /// Events enabled in `from` (the set `E_i` of the paper).
    pub enabled: BTreeSet<EventId>,
    /// Index of the trace state at which `event` became (continuously)
    /// enabled. `0` refers to the start state.
    pub enabled_since: usize,
}

/// A finite run annotated with enabling information.
///
/// # Examples
///
/// ```
/// use tts::{EnablingTrace, TsBuilder};
/// let mut b = TsBuilder::new("t");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let s2 = b.add_state("s2");
/// let a = b.add_transition(s0, "a", s1);
/// let c = b.add_transition(s1, "b", s2);
/// b.set_initial(s0);
/// let ts = b.build()?;
/// let trace = EnablingTrace::from_run(&ts, s0, &[(a, s1), (c, s2)])?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.steps()[1].enabled_since, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnablingTrace {
    start: StateId,
    steps: Vec<TraceStep>,
}

/// Error returned by [`EnablingTrace::from_run`] when the run does not exist
/// in the transition system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidRunError {
    position: usize,
    event: EventId,
}

impl InvalidRunError {
    /// Position in the run at which the step is not a transition of the
    /// system.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for InvalidRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run step {} (event {}) is not a transition of the system",
            self.position, self.event
        )
    }
}

impl std::error::Error for InvalidRunError {}

impl EnablingTrace {
    /// Builds a trace from a start state and a sequence of `(event, target)`
    /// steps, computing the enabled sets and enabling points from `ts`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRunError`] if some step is not an existing transition.
    pub fn from_run(
        ts: &TransitionSystem,
        start: StateId,
        run: &[(EventId, StateId)],
    ) -> Result<Self, InvalidRunError> {
        let mut states = Vec::with_capacity(run.len() + 1);
        states.push(start);
        let mut current = start;
        for (position, &(event, to)) in run.iter().enumerate() {
            if !ts.successors(current, event).contains(&to) {
                return Err(InvalidRunError { position, event });
            }
            states.push(to);
            current = to;
        }
        let enabled_sets: Vec<BTreeSet<EventId>> = states.iter().map(|&s| ts.enabled(s)).collect();
        let mut steps = Vec::with_capacity(run.len());
        for (i, &(event, to)) in run.iter().enumerate() {
            // Walk backwards to find the enabling point: the earliest state
            // index j such that `event` stays enabled in [j, i] and is not
            // "reset" by its own firing at step j-1.
            let mut since = i;
            while since > 0 {
                let prev_state_enables = enabled_sets[since - 1].contains(&event);
                let prev_step_fired_same = run[since - 1].0 == event;
                if prev_state_enables && !prev_step_fired_same {
                    since -= 1;
                } else {
                    break;
                }
            }
            steps.push(TraceStep {
                from: states[i],
                event,
                to,
                enabled: enabled_sets[i].clone(),
                enabled_since: since,
            });
        }
        Ok(EnablingTrace { start, steps })
    }

    /// The state the trace starts from.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The steps of the trace.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of fired events.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if no event fires in the trace.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The sequence of visited states, starting with [`start`](Self::start).
    pub fn states(&self) -> Vec<StateId> {
        let mut states = Vec::with_capacity(self.steps.len() + 1);
        states.push(self.start);
        states.extend(self.steps.iter().map(|s| s.to));
        states
    }

    /// The sequence of fired events.
    pub fn events(&self) -> Vec<EventId> {
        self.steps.iter().map(|s| s.event).collect()
    }

    /// The final state of the trace.
    pub fn last_state(&self) -> StateId {
        self.steps.last().map_or(self.start, |s| s.to)
    }

    /// Renders the trace using event names from `ts`, for diagnostics.
    pub fn display<'a>(&'a self, ts: &'a TransitionSystem) -> TraceDisplay<'a> {
        TraceDisplay { trace: self, ts }
    }
}

/// Helper returned by [`EnablingTrace::display`].
pub struct TraceDisplay<'a> {
    trace: &'a EnablingTrace,
    ts: &'a TransitionSystem,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ts.state_name(self.trace.start))?;
        for step in &self.trace.steps {
            write!(
                f,
                " --{}--> {}",
                self.ts.alphabet().name(step.event),
                self.ts.state_name(step.to)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::TsBuilder;

    /// Builds a small diamond where `b` stays enabled across the firing of
    /// `a`, to exercise the enabling-point computation.
    fn diamond() -> (TransitionSystem, Vec<(EventId, StateId)>, StateId) {
        let mut builder = TsBuilder::new("diamond");
        let s0 = builder.add_state("s0");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        let s3 = builder.add_state("s3");
        let a = builder.add_transition(s0, "a", s1);
        let b = builder.add_transition(s0, "b", s2);
        builder.add_transition_by_id(s1, b, s3);
        builder.add_transition_by_id(s2, a, s3);
        builder.set_initial(s0);
        let ts = builder.build().unwrap();
        (ts, vec![(a, s1), (b, s3)], s0)
    }

    #[test]
    fn enabling_points_track_concurrent_enabling() {
        let (ts, run, s0) = diamond();
        let trace = EnablingTrace::from_run(&ts, s0, &run).unwrap();
        assert_eq!(trace.len(), 2);
        // `a` fires first and was enabled from the start.
        assert_eq!(trace.steps()[0].enabled_since, 0);
        // `b` was already enabled in s0 and stayed enabled through a's firing,
        // so its enabling point is also the start state.
        assert_eq!(trace.steps()[1].enabled_since, 0);
        assert_eq!(trace.steps()[0].enabled.len(), 2);
    }

    #[test]
    fn freshly_enabled_event_has_late_enabling_point() {
        let mut builder = TsBuilder::new("seq");
        let s0 = builder.add_state("s0");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        let a = builder.add_transition(s0, "a", s1);
        let b = builder.add_transition(s1, "b", s2);
        builder.set_initial(s0);
        let ts = builder.build().unwrap();
        let trace = EnablingTrace::from_run(&ts, s0, &[(a, s1), (b, s2)]).unwrap();
        assert_eq!(trace.steps()[1].enabled_since, 1);
        assert_eq!(trace.states(), vec![s0, s1, s2]);
        assert_eq!(trace.last_state(), s2);
    }

    #[test]
    fn same_event_twice_resets_enabling_point() {
        let mut builder = TsBuilder::new("selfloop");
        let s0 = builder.add_state("s0");
        let a = builder.add_transition(s0, "a", s0);
        builder.set_initial(s0);
        let ts = builder.build().unwrap();
        let trace = EnablingTrace::from_run(&ts, s0, &[(a, s0), (a, s0)]).unwrap();
        // The second occurrence of `a` is only enabled after the first fires.
        assert_eq!(trace.steps()[0].enabled_since, 0);
        assert_eq!(trace.steps()[1].enabled_since, 1);
    }

    #[test]
    fn invalid_run_is_rejected() {
        let (ts, _, s0) = diamond();
        let bogus_event = EventId::from_index(0);
        let bogus_target = StateId::from_index(3);
        let err = EnablingTrace::from_run(&ts, s0, &[(bogus_event, bogus_target)]).unwrap_err();
        assert_eq!(err.position(), 0);
        assert!(err.to_string().contains("not a transition"));
    }

    #[test]
    fn empty_trace() {
        let (ts, _, s0) = diamond();
        let trace = EnablingTrace::from_run(&ts, s0, &[]).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.last_state(), s0);
        assert_eq!(trace.events(), vec![]);
    }

    #[test]
    fn display_shows_event_names() {
        let (ts, run, s0) = diamond();
        let trace = EnablingTrace::from_run(&ts, s0, &run).unwrap();
        let text = trace.display(&ts).to_string();
        assert!(text.contains("--a-->"));
        assert!(text.contains("--b-->"));
    }
}
