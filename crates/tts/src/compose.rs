//! Parallel composition of transition systems.
//!
//! Components synchronise on events with the same name (CSP-style
//! multi-way synchronisation) and interleave on the rest. Composition is used
//! to close a circuit with its environment (`IN ∥ I ∥ OUT`), to put a stage
//! between abstractions (`A_in ∥ I ∥ A_out`) and to build the systems of the
//! guarantee proofs of §4.2.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::event::EventId;
use crate::timed::{IncompatibleDelaysError, TimedTransitionSystem};
use crate::ts::{BuildTsError, EventRole, StateId, TransitionSystem, TsBuilder};

/// Error returned by the composition operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// The composed system would be structurally invalid.
    Build(BuildTsError),
    /// Two components constrain the same event with disjoint delay intervals.
    IncompatibleDelays(IncompatibleDelaysError),
    /// The composition exceeded the configured state limit.
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Build(e) => write!(f, "composition failed: {e}"),
            ComposeError::IncompatibleDelays(e) => write!(f, "composition failed: {e}"),
            ComposeError::StateLimitExceeded { limit } => {
                write!(f, "composition exceeded the state limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ComposeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComposeError::Build(e) => Some(e),
            ComposeError::IncompatibleDelays(e) => Some(e),
            ComposeError::StateLimitExceeded { .. } => None,
        }
    }
}

impl From<BuildTsError> for ComposeError {
    fn from(e: BuildTsError) -> Self {
        ComposeError::Build(e)
    }
}

impl From<IncompatibleDelaysError> for ComposeError {
    fn from(e: IncompatibleDelaysError) -> Self {
        ComposeError::IncompatibleDelays(e)
    }
}

/// Options controlling composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComposeOptions {
    /// Maximum number of product states to explore before giving up.
    pub state_limit: usize,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            state_limit: 2_000_000,
        }
    }
}

/// Composes two transition systems with default options.
///
/// Shared events (same name in both alphabets) synchronise; the rest
/// interleave. Only reachable product states are constructed. Violation marks
/// of the component states are carried over (prefixed with the component
/// name). An event is an output of the composition if it is an output of any
/// component, an input if some component declares it an input and none
/// declares it an output, and internal otherwise.
///
/// # Errors
///
/// Returns [`ComposeError`] if the composed system would be invalid or the
/// state limit is exceeded.
///
/// # Examples
///
/// ```
/// use tts::{compose, TsBuilder};
/// let mut p = TsBuilder::new("producer");
/// let p0 = p.add_state("p0");
/// let p1 = p.add_state("p1");
/// p.add_transition(p0, "req", p1);
/// p.add_transition(p1, "ack", p0);
/// p.set_initial(p0);
/// let producer = p.build()?;
///
/// let mut c = TsBuilder::new("consumer");
/// let c0 = c.add_state("c0");
/// let c1 = c.add_state("c1");
/// c.add_transition(c0, "req", c1);
/// c.add_transition(c1, "ack", c0);
/// c.set_initial(c0);
/// let consumer = c.build()?;
///
/// let system = compose(&producer, &consumer)?;
/// assert_eq!(system.state_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compose(
    left: &TransitionSystem,
    right: &TransitionSystem,
) -> Result<TransitionSystem, ComposeError> {
    compose_with(left, right, ComposeOptions::default())
}

/// Composes two transition systems with explicit [`ComposeOptions`].
///
/// # Errors
///
/// See [`compose`].
pub fn compose_with(
    left: &TransitionSystem,
    right: &TransitionSystem,
    options: ComposeOptions,
) -> Result<TransitionSystem, ComposeError> {
    let mut builder = TsBuilder::new(format!("{} || {}", left.name(), right.name()));

    // Precompute which event names are shared.
    let left_names: HashMap<&str, EventId> =
        left.alphabet().iter().map(|(id, n)| (n, id)).collect();
    let right_names: HashMap<&str, EventId> =
        right.alphabet().iter().map(|(id, n)| (n, id)).collect();

    let mut product_states: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    let add_state = |builder: &mut TsBuilder,
                     queue: &mut VecDeque<(StateId, StateId)>,
                     product_states: &mut HashMap<(StateId, StateId), StateId>,
                     l: StateId,
                     r: StateId|
     -> StateId {
        if let Some(&id) = product_states.get(&(l, r)) {
            return id;
        }
        let id = builder.add_state(format!("{}|{}", left.state_name(l), right.state_name(r)));
        for v in left.violations(l) {
            builder.mark_violation(id, format!("{}: {}", left.name(), v));
        }
        for v in right.violations(r) {
            builder.mark_violation(id, format!("{}: {}", right.name(), v));
        }
        product_states.insert((l, r), id);
        queue.push_back((l, r));
        id
    };

    for &l in left.initial_states() {
        for &r in right.initial_states() {
            let id = add_state(&mut builder, &mut queue, &mut product_states, l, r);
            builder.set_initial(id);
        }
    }

    while let Some((l, r)) = queue.pop_front() {
        if builder.state_count() > options.state_limit {
            return Err(ComposeError::StateLimitExceeded {
                limit: options.state_limit,
            });
        }
        let from = product_states[&(l, r)];
        // Left moves (synchronising when the event is shared).
        for &(le, lto) in left.transitions_from(l) {
            let name = left.alphabet().name(le);
            match right_names.get(name) {
                Some(&re) => {
                    for rto in right.successors(r, re) {
                        let to = add_state(&mut builder, &mut queue, &mut product_states, lto, rto);
                        builder.add_transition(from, name, to);
                    }
                }
                None => {
                    let to = add_state(&mut builder, &mut queue, &mut product_states, lto, r);
                    builder.add_transition(from, name, to);
                }
            }
        }
        // Right-only moves (shared events were handled above).
        for &(re, rto) in right.transitions_from(r) {
            let name = right.alphabet().name(re);
            if left_names.contains_key(name) {
                continue;
            }
            let to = add_state(&mut builder, &mut queue, &mut product_states, l, rto);
            builder.add_transition(from, name, to);
        }
    }

    // Interface roles.
    for (name, role) in interface_union(left, right) {
        match role {
            EventRole::Output => {
                builder.declare_output(&name);
            }
            EventRole::Input => {
                builder.declare_input(&name);
            }
            EventRole::Internal => {}
        }
    }

    Ok(builder.build()?)
}

fn interface_union(left: &TransitionSystem, right: &TransitionSystem) -> Vec<(String, EventRole)> {
    let mut roles: HashMap<String, EventRole> = HashMap::new();
    for ts in [left, right] {
        for (id, name) in ts.alphabet().iter() {
            let role = ts.role(id);
            let entry = roles.entry(name.to_owned()).or_insert(EventRole::Internal);
            *entry = match (*entry, role) {
                (EventRole::Output, _) | (_, EventRole::Output) => EventRole::Output,
                (EventRole::Input, _) | (_, EventRole::Input) => EventRole::Input,
                _ => EventRole::Internal,
            };
        }
    }
    roles.into_iter().collect()
}

/// Composes a non-empty list of transition systems left to right.
///
/// # Errors
///
/// Returns [`ComposeError`] if any pairwise composition fails.
///
/// # Panics
///
/// Panics if `systems` is empty.
pub fn compose_all(systems: &[&TransitionSystem]) -> Result<TransitionSystem, ComposeError> {
    assert!(
        !systems.is_empty(),
        "compose_all requires at least one system"
    );
    let mut acc = systems[0].clone();
    for ts in &systems[1..] {
        acc = compose(&acc, ts)?;
    }
    Ok(acc)
}

/// Composes two timed transition systems.
///
/// The underlying systems are composed with [`compose`]; the delay interval of
/// each event in the result is the intersection of the component intervals
/// (the default `[0, ∞)` interval is neutral).
///
/// # Errors
///
/// Returns [`ComposeError::IncompatibleDelays`] if both components constrain
/// the same event with disjoint intervals, or any error of [`compose`].
pub fn compose_timed(
    left: &TimedTransitionSystem,
    right: &TimedTransitionSystem,
) -> Result<TimedTransitionSystem, ComposeError> {
    let ts = compose(left.underlying(), right.underlying())?;
    let mut timed = TimedTransitionSystem::new(ts);
    let mut set = |name: &str, interval| {
        if let Some(id) = timed.underlying().alphabet().lookup(name) {
            timed.set_delay(id, interval);
        }
    };
    // Start from the left delays, then merge the right ones.
    let mut merged: HashMap<String, crate::time::DelayInterval> = HashMap::new();
    for (e, d) in left.delays() {
        merged.insert(left.underlying().alphabet().name(e).to_owned(), d);
    }
    for (e, d) in right.delays() {
        let name = right.underlying().alphabet().name(e).to_owned();
        let entry = merged.entry(name.clone()).or_insert(d);
        match entry.intersect(&d) {
            Some(i) => *entry = i,
            None => {
                return Err(IncompatibleDelaysError::new(name, *entry, d).into());
            }
        }
    }
    for (name, interval) in merged {
        set(&name, interval);
    }
    Ok(timed)
}

/// Composes a non-empty list of timed transition systems left to right.
///
/// # Errors
///
/// Returns [`ComposeError`] if any pairwise composition fails.
///
/// # Panics
///
/// Panics if `systems` is empty.
pub fn compose_timed_all(
    systems: &[&TimedTransitionSystem],
) -> Result<TimedTransitionSystem, ComposeError> {
    assert!(
        !systems.is_empty(),
        "compose_timed_all requires at least one system"
    );
    let mut acc = systems[0].clone();
    for ts in &systems[1..] {
        acc = compose_timed(&acc, ts)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DelayInterval, Time};
    use crate::ts::TsBuilder;

    fn handshake(name: &str, active: bool) -> TransitionSystem {
        let mut b = TsBuilder::new(name);
        let s0 = b.add_state("idle");
        let s1 = b.add_state("busy");
        b.add_transition(s0, "req", s1);
        b.add_transition(s1, "ack", s0);
        b.set_initial(s0);
        if active {
            b.declare_output("req");
            b.declare_input("ack");
        } else {
            b.declare_input("req");
            b.declare_output("ack");
        }
        b.build().unwrap()
    }

    #[test]
    fn synchronised_composition_stays_small() {
        let system = compose(&handshake("p", true), &handshake("c", false)).unwrap();
        assert_eq!(system.state_count(), 2);
        assert_eq!(system.transition_count(), 2);
        // Both req and ack are outputs of some component.
        let req = system.alphabet().lookup("req").unwrap();
        let ack = system.alphabet().lookup("ack").unwrap();
        assert_eq!(system.role(req), EventRole::Output);
        assert_eq!(system.role(ack), EventRole::Output);
    }

    #[test]
    fn interleaving_of_private_events() {
        let mut a = TsBuilder::new("a");
        let a0 = a.add_state("a0");
        let a1 = a.add_state("a1");
        a.add_transition(a0, "x", a1);
        a.set_initial(a0);
        let a = a.build().unwrap();

        let mut b = TsBuilder::new("b");
        let b0 = b.add_state("b0");
        let b1 = b.add_state("b1");
        b.add_transition(b0, "y", b1);
        b.set_initial(b0);
        let b = b.build().unwrap();

        let p = compose(&a, &b).unwrap();
        assert_eq!(p.state_count(), 4);
        assert_eq!(p.transition_count(), 4);
        assert!(p.deadlock_states().len() == 1);
    }

    #[test]
    fn violations_propagate_with_component_prefix() {
        let mut a = TsBuilder::new("left");
        let a0 = a.add_state("ok");
        let a1 = a.add_state("bad");
        a.add_transition(a0, "x", a1);
        a.mark_violation(a1, "short-circuit");
        a.set_initial(a0);
        let a = a.build().unwrap();
        let b = handshake("right", false);
        let p = compose(&a, &b).unwrap();
        // The `bad` left state pairs with both right states reachable by the
        // interleaved handshake, so two marked product states exist.
        let bad: Vec<_> = p.marked_reachable_states();
        assert_eq!(bad.len(), 2);
        for s in bad {
            assert!(p.violations(s)[0].contains("left"));
        }
    }

    #[test]
    fn sync_requires_both_ready() {
        // The consumer never offers "req" from its initial state, so the
        // producer can never fire it.
        let producer = handshake("p", true);
        let mut c = TsBuilder::new("stuck");
        let c0 = c.add_state("c0");
        c.set_initial(c0);
        c.intern_event("req");
        let consumer = c.build().unwrap();
        let p = compose(&producer, &consumer).unwrap();
        assert_eq!(p.state_count(), 1);
        assert_eq!(p.transition_count(), 0);
        assert_eq!(p.deadlock_states().len(), 1);
    }

    #[test]
    fn compose_all_folds() {
        let a = handshake("a", true);
        let b = handshake("b", false);
        let c = {
            let mut b = TsBuilder::new("obs");
            let s = b.add_state("s");
            b.add_transition(s, "req", s);
            b.add_transition(s, "ack", s);
            b.set_initial(s);
            b.build().unwrap()
        };
        let p = compose_all(&[&a, &b, &c]).unwrap();
        assert_eq!(p.state_count(), 2);
    }

    #[test]
    fn timed_composition_intersects_delays() {
        let mut left = TimedTransitionSystem::new(handshake("p", true));
        left.set_delay_by_name(
            "req",
            DelayInterval::new(Time::new(1), Time::new(5)).unwrap(),
        );
        let mut right = TimedTransitionSystem::new(handshake("c", false));
        right.set_delay_by_name(
            "req",
            DelayInterval::new(Time::new(3), Time::new(8)).unwrap(),
        );
        right.set_delay_by_name(
            "ack",
            DelayInterval::new(Time::new(2), Time::new(2)).unwrap(),
        );
        let composed = compose_timed(&left, &right).unwrap();
        assert_eq!(
            composed.delay_by_name("req"),
            DelayInterval::new(Time::new(3), Time::new(5)).unwrap()
        );
        assert_eq!(
            composed.delay_by_name("ack"),
            DelayInterval::new(Time::new(2), Time::new(2)).unwrap()
        );
    }

    #[test]
    fn timed_composition_rejects_disjoint_delays() {
        let mut left = TimedTransitionSystem::new(handshake("p", true));
        left.set_delay_by_name(
            "req",
            DelayInterval::new(Time::new(1), Time::new(2)).unwrap(),
        );
        let mut right = TimedTransitionSystem::new(handshake("c", false));
        right.set_delay_by_name(
            "req",
            DelayInterval::new(Time::new(5), Time::new(8)).unwrap(),
        );
        let err = compose_timed(&left, &right).unwrap_err();
        assert!(matches!(err, ComposeError::IncompatibleDelays(_)));
        assert!(err.to_string().contains("req"));
    }

    #[test]
    fn state_limit_is_enforced() {
        let a = handshake("a", true);
        let b = handshake("b", false);
        let err = compose_with(&a, &b, ComposeOptions { state_limit: 0 }).unwrap_err();
        assert!(matches!(err, ComposeError::StateLimitExceeded { .. }));
    }
}
