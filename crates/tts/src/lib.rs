//! Explicit-state transition systems and timed transition systems.
//!
//! This crate provides the base modelling layer used throughout the IPCMOS
//! verification case study (Peña et al., DATE 2002):
//!
//! * [`TransitionSystem`] — the *underlying* (untimed) transition system
//!   `⟨S, Σ, T, s_in⟩` of §2.1, with violation marks on states, input/output
//!   event roles and reachability queries.
//! * [`TimedTransitionSystem`] — a transition system whose events carry delay
//!   intervals `[δl, δu]` ([`DelayInterval`]).
//! * [`EnablingTrace`] — traces with enabling information `E_1 →e_1 E_2 …`,
//!   the raw material for causal-event-structure extraction.
//! * [`compose`]/[`compose_timed`] — CSP-style parallel composition used to
//!   close circuits with their environments and abstractions.
//!
//! The relative-timing verification engine itself lives in the `transyt`
//! crate; the max-separation timing analysis in `ces`; circuit- and
//! STG-level front ends in `cmos-circuit`, `stg` and `ipcmos`.
//!
//! # Example
//!
//! ```
//! use tts::{compose, DelayInterval, Time, TimedTransitionSystem, TsBuilder};
//!
//! // A producer that issues `req` and waits for `ack`.
//! let mut b = TsBuilder::new("producer");
//! let idle = b.add_state("idle");
//! let wait = b.add_state("wait");
//! b.add_transition(idle, "req", wait);
//! b.add_transition(wait, "ack", idle);
//! b.set_initial(idle);
//! b.declare_output("req");
//! b.declare_input("ack");
//! let producer = b.build()?;
//!
//! // Attach a delay to `req` and inspect the timed system.
//! let mut timed = TimedTransitionSystem::new(producer.clone());
//! timed.set_delay_by_name("req", DelayInterval::new(Time::new(1), Time::new(2))?);
//! assert_eq!(timed.delay_by_name("req").lower(), Time::new(1));
//!
//! // Compose with a mirrored consumer: the closed system has two states.
//! let consumer = producer.rename_events(|n| n.to_owned()).with_name("consumer");
//! let closed = compose(&producer, &consumer)?;
//! assert_eq!(closed.state_count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod event;
mod time;
mod timed;
mod trace;
mod ts;

pub use compose::{
    compose, compose_all, compose_timed, compose_timed_all, compose_with, ComposeError,
    ComposeOptions,
};
pub use event::{Alphabet, EventId, Polarity, SignalEdge};
pub use time::{Bound, DelayInterval, InvalidIntervalError, Time};
pub use timed::{IncompatibleDelaysError, TimedTransitionSystem};
pub use trace::{EnablingTrace, InvalidRunError, TraceDisplay, TraceStep};
pub use ts::{BuildTsError, EventRole, StateId, TransitionSystem, TsBuilder};
