//! Timed transition systems: an underlying transition system plus a delay
//! interval per event.
//!
//! The timed semantics follows §2.1 of the paper: an event `e` that becomes
//! enabled at time `t_enab` fires at some time `t ∈ [t_enab + δl(e),
//! t_enab + δu(e)]`, unless it is disabled first. Events without an explicit
//! interval default to `[0, ∞)`.

use std::collections::HashMap;
use std::fmt;

use crate::event::EventId;
use crate::time::DelayInterval;
use crate::ts::TransitionSystem;

/// Error returned when two composed systems constrain the same event with
/// disjoint delay intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompatibleDelaysError {
    event: String,
    left: DelayInterval,
    right: DelayInterval,
}

impl IncompatibleDelaysError {
    pub(crate) fn new(event: String, left: DelayInterval, right: DelayInterval) -> Self {
        IncompatibleDelaysError { event, left, right }
    }

    /// Name of the offending event.
    pub fn event(&self) -> &str {
        &self.event
    }
}

impl fmt::Display for IncompatibleDelaysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event `{}` has disjoint delay intervals {} and {} in the composed systems",
            self.event, self.left, self.right
        )
    }
}

impl std::error::Error for IncompatibleDelaysError {}

/// A timed transition system (TTS): a [`TransitionSystem`] together with a
/// delay interval per event.
///
/// # Examples
///
/// ```
/// use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};
/// let mut b = TsBuilder::new("pulse");
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// b.add_transition(s0, "x+", s1);
/// b.set_initial(s0);
/// let ts = b.build()?;
/// let mut timed = TimedTransitionSystem::new(ts);
/// timed.set_delay_by_name("x+", DelayInterval::new(Time::new(1), Time::new(2))?);
/// assert_eq!(timed.delay_by_name("x+").lower(), Time::new(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTransitionSystem {
    ts: TransitionSystem,
    delays: HashMap<EventId, DelayInterval>,
}

impl TimedTransitionSystem {
    /// Wraps an untimed transition system; every event gets the default
    /// `[0, ∞)` interval until [`set_delay`](Self::set_delay) is called.
    pub fn new(ts: TransitionSystem) -> Self {
        TimedTransitionSystem {
            ts,
            delays: HashMap::new(),
        }
    }

    /// The underlying untimed transition system.
    pub fn underlying(&self) -> &TransitionSystem {
        &self.ts
    }

    /// Consumes the wrapper and returns the underlying transition system and
    /// the delay map.
    pub fn into_parts(self) -> (TransitionSystem, HashMap<EventId, DelayInterval>) {
        (self.ts, self.delays)
    }

    /// Sets the delay interval of an event.
    pub fn set_delay(&mut self, event: EventId, delay: DelayInterval) {
        self.delays.insert(event, delay);
    }

    /// Sets the delay interval of an event by name.
    ///
    /// # Panics
    ///
    /// Panics if the event name is not part of the underlying alphabet; delays
    /// for unknown events would silently be ignored otherwise.
    pub fn set_delay_by_name(&mut self, event: &str, delay: DelayInterval) {
        let id = self
            .ts
            .alphabet()
            .lookup(event)
            .unwrap_or_else(|| panic!("unknown event `{event}`"));
        self.set_delay(id, delay);
    }

    /// Delay interval of an event (`[0, ∞)` if never set).
    pub fn delay(&self, event: EventId) -> DelayInterval {
        self.delays
            .get(&event)
            .copied()
            .unwrap_or_else(DelayInterval::unbounded)
    }

    /// Delay interval of an event looked up by name (`[0, ∞)` if the event is
    /// unknown or has no explicit interval).
    pub fn delay_by_name(&self, event: &str) -> DelayInterval {
        self.ts
            .alphabet()
            .lookup(event)
            .map(|id| self.delay(id))
            .unwrap_or_else(DelayInterval::unbounded)
    }

    /// All explicitly set delays as `(event, interval)` pairs.
    pub fn delays(&self) -> impl Iterator<Item = (EventId, DelayInterval)> + '_ {
        self.delays.iter().map(|(&e, &d)| (e, d))
    }

    /// Number of events that carry a non-default delay interval.
    pub fn timed_event_count(&self) -> usize {
        self.delays.values().filter(|d| !d.is_unbounded()).count()
    }

    /// Returns a copy of the system with every event renamed through `f`,
    /// carrying over the delay intervals.
    #[must_use]
    pub fn rename_events<F>(&self, f: F) -> TimedTransitionSystem
    where
        F: Fn(&str) -> String,
    {
        let renamed = self.ts.rename_events(&f);
        let mut delays = HashMap::new();
        for (&event, &interval) in &self.delays {
            let old_name = self.ts.alphabet().name(event);
            if let Some(new_id) = renamed.alphabet().lookup(&f(old_name)) {
                delays.insert(new_id, interval);
            }
        }
        TimedTransitionSystem {
            ts: renamed,
            delays,
        }
    }
}

impl From<TransitionSystem> for TimedTransitionSystem {
    fn from(ts: TransitionSystem) -> Self {
        TimedTransitionSystem::new(ts)
    }
}

impl fmt::Display for TimedTransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [timed: {} events]",
            self.ts,
            self.timed_event_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::ts::TsBuilder;

    fn base() -> TransitionSystem {
        let mut b = TsBuilder::new("base");
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        b.set_initial(s0);
        b.build().unwrap()
    }

    #[test]
    fn default_delay_is_unbounded() {
        let timed = TimedTransitionSystem::new(base());
        let a = timed.underlying().alphabet().lookup("a").unwrap();
        assert!(timed.delay(a).is_unbounded());
        assert_eq!(timed.timed_event_count(), 0);
    }

    #[test]
    fn set_and_get_delay() {
        let mut timed = TimedTransitionSystem::new(base());
        let d = DelayInterval::new(Time::new(1), Time::new(2)).unwrap();
        timed.set_delay_by_name("a", d);
        assert_eq!(timed.delay_by_name("a"), d);
        assert_eq!(timed.timed_event_count(), 1);
        assert!(timed.delay_by_name("b").is_unbounded());
        assert!(timed.delay_by_name("nonexistent").is_unbounded());
    }

    #[test]
    #[should_panic(expected = "unknown event")]
    fn set_delay_unknown_event_panics() {
        let mut timed = TimedTransitionSystem::new(base());
        timed.set_delay_by_name("zzz", DelayInterval::unbounded());
    }

    #[test]
    fn rename_carries_delays() {
        let mut timed = TimedTransitionSystem::new(base());
        let d = DelayInterval::new(Time::new(3), Time::new(4)).unwrap();
        timed.set_delay_by_name("a", d);
        let renamed = timed.rename_events(|n| format!("{n}@1"));
        assert_eq!(renamed.delay_by_name("a@1"), d);
        assert!(renamed.delay_by_name("b@1").is_unbounded());
    }

    #[test]
    fn display_mentions_timed_events() {
        let mut timed = TimedTransitionSystem::new(base());
        timed.set_delay_by_name("a", DelayInterval::exactly(Time::new(1)).unwrap());
        assert!(timed.to_string().contains("timed: 1 events"));
    }
}
