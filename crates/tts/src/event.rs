//! Events, signal edges and alphabets.
//!
//! Events in this crate are named. In circuit-level models an event is a
//! *signal transition* such as `ACK+` (rising edge of `ACK`) or `CLKE-`
//! (falling edge); in abstract models (e.g. the introductory example of the
//! paper, Fig. 1) events are plain letters. [`Alphabet`] interns event names
//! so that transition systems can store compact [`EventId`]s.

use std::collections::HashMap;
use std::fmt;

/// Index of an event within an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index.
    ///
    /// Intended for serialisation/test helpers; using an id with the wrong
    /// alphabet yields `None`/panics on lookup rather than undefined
    /// behaviour.
    pub fn from_index(index: usize) -> Self {
        EventId(index as u32)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// A rising edge (`+`), the signal switches to logic 1.
    Rise,
    /// A falling edge (`-`), the signal switches to logic 0.
    Fall,
}

impl Polarity {
    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        }
    }

    /// The boolean value the signal holds *after* a transition of this
    /// polarity.
    pub fn target_value(self) -> bool {
        matches!(self, Polarity::Rise)
    }

    /// The suffix used in event names (`+` or `-`).
    pub fn suffix(self) -> char {
        match self {
            Polarity::Rise => '+',
            Polarity::Fall => '-',
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// A signal edge: a signal name plus a [`Polarity`].
///
/// # Examples
///
/// ```
/// use tts::{Polarity, SignalEdge};
/// let e = SignalEdge::rise("ACK");
/// assert_eq!(e.to_string(), "ACK+");
/// assert_eq!(SignalEdge::parse("CLKE-"), Some(SignalEdge::fall("CLKE")));
/// assert_eq!(e.opposite().polarity(), Polarity::Fall);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalEdge {
    signal: String,
    polarity: Polarity,
}

impl SignalEdge {
    /// Creates a new signal edge.
    pub fn new(signal: impl Into<String>, polarity: Polarity) -> Self {
        SignalEdge {
            signal: signal.into(),
            polarity,
        }
    }

    /// Rising edge of `signal`.
    pub fn rise(signal: impl Into<String>) -> Self {
        SignalEdge::new(signal, Polarity::Rise)
    }

    /// Falling edge of `signal`.
    pub fn fall(signal: impl Into<String>) -> Self {
        SignalEdge::new(signal, Polarity::Fall)
    }

    /// Parses an event name of the form `SIG+` or `SIG-`.
    ///
    /// Returns `None` for names without a trailing polarity marker.
    pub fn parse(name: &str) -> Option<Self> {
        let (signal, last) = name.split_at(name.len().checked_sub(1)?);
        if signal.is_empty() {
            return None;
        }
        match last {
            "+" => Some(SignalEdge::rise(signal)),
            "-" => Some(SignalEdge::fall(signal)),
            _ => None,
        }
    }

    /// The signal name.
    pub fn signal(&self) -> &str {
        &self.signal
    }

    /// The edge direction.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The edge of the same signal with the opposite direction.
    #[must_use]
    pub fn opposite(&self) -> SignalEdge {
        SignalEdge::new(self.signal.clone(), self.polarity.opposite())
    }
}

impl fmt::Display for SignalEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.signal, self.polarity)
    }
}

/// An interned set of event names shared by the states and transitions of a
/// transition system.
///
/// # Examples
///
/// ```
/// use tts::Alphabet;
/// let mut alphabet = Alphabet::new();
/// let a = alphabet.intern("ACK+");
/// let b = alphabet.intern("VALID-");
/// assert_ne!(a, b);
/// assert_eq!(alphabet.intern("ACK+"), a);
/// assert_eq!(alphabet.name(a), "ACK+");
/// assert_eq!(alphabet.lookup("VALID-"), Some(b));
/// assert_eq!(alphabet.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, EventId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: impl AsRef<str>) -> EventId {
        let name = name.as_ref();
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = EventId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Returns the id of `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.index.get(name).copied()
    }

    /// Returns the name of an event id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this alphabet.
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the name of an event id, or `None` if it is out of range.
    pub fn get(&self, id: EventId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned events.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no events have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventId(i as u32), n.as_str()))
    }

    /// All event ids of the alphabet.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.names.len()).map(|i| EventId(i as u32))
    }

    /// Interprets an event name as a signal edge, if it has the `SIG+`/`SIG-`
    /// form.
    pub fn signal_edge(&self, id: EventId) -> Option<SignalEdge> {
        SignalEdge::parse(self.name(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_helpers() {
        assert_eq!(Polarity::Rise.opposite(), Polarity::Fall);
        assert!(Polarity::Rise.target_value());
        assert!(!Polarity::Fall.target_value());
        assert_eq!(Polarity::Fall.to_string(), "-");
    }

    #[test]
    fn signal_edge_parse_roundtrip() {
        for name in ["ACK+", "VALID-", "Vint+", "CLKE-"] {
            let edge = SignalEdge::parse(name).unwrap();
            assert_eq!(edge.to_string(), name);
        }
        assert_eq!(SignalEdge::parse("a"), None);
        assert_eq!(SignalEdge::parse("+"), None);
        assert_eq!(SignalEdge::parse(""), None);
    }

    #[test]
    fn alphabet_interning() {
        let mut alpha = Alphabet::new();
        assert!(alpha.is_empty());
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        assert_eq!(alpha.intern("a"), a);
        assert_eq!(alpha.len(), 2);
        assert_eq!(alpha.name(a), "a");
        assert_eq!(alpha.lookup("b"), Some(b));
        assert_eq!(alpha.lookup("c"), None);
        assert_eq!(alpha.get(EventId(99)), None);
        let names: Vec<_> = alpha.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn alphabet_signal_edges() {
        let mut alpha = Alphabet::new();
        let ack = alpha.intern("ACK+");
        let plain = alpha.intern("x");
        assert_eq!(alpha.signal_edge(ack), Some(SignalEdge::rise("ACK")));
        assert_eq!(alpha.signal_edge(plain), None);
    }
}
